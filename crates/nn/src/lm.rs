//! The path language model `Mρ`: embedding layer + LSTM + softmax.
//!
//! Trained unsupervised on random-walk label sentences with the perplexity
//! (cross-entropy) loss, as in Section III-A ("we train Mρ on the corpus
//! driven by the perplexity loss"). It serves two roles downstream:
//!
//! 1. **Path selection**: a stateful [`LmSession`] is fed the labels seen
//!    so far and returns the next-token distribution, from which path
//!    selection picks the most probable incident edge label (or stops on
//!    `<eos>`).
//! 2. **Path embedding**: [`LanguageModel::embed_sequence`] runs a label
//!    sequence through the LSTM and returns the last hidden state — the
//!    `xρ` sequence embedding of step (2) of pattern discovery.

use crate::lstm::LstmCell;
use crate::tensor::{AdamConfig, Param};
use gsj_common::{FxHashMap, Symbol, SymbolTable};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::RwLock;

/// Normalize a label for LM tokenization: lower-case and strip digits, so
/// instance labels of one class (`Author12`, `Author7`, blank nodes
/// `n123`) pool into a single class token whose continuation statistics
/// are learnable. Labels that normalize to nothing become `"#"`.
pub fn normalize_label(s: &str) -> String {
    let out: String = s
        .chars()
        .filter(|c| !c.is_ascii_digit())
        .flat_map(|c| c.to_lowercase())
        .collect();
    let trimmed = out.trim();
    if trimmed.is_empty() {
        "#".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Index into the LM vocabulary.
pub type TokenId = usize;

/// Out-of-vocabulary token.
pub const UNK: TokenId = 0;
/// End-of-sentence token (the paper's `<eos>` stop signal).
pub const EOS: TokenId = 1;
const SPECIALS: usize = 2;

/// Language-model hyper-parameters.
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Token embedding width.
    pub embed_dim: usize,
    /// LSTM hidden width (100 in the paper; 50 for `RExtShortSeq`).
    pub hidden: usize,
    /// Vocabulary cap: the most frequent tokens are kept, the rest map to
    /// `<unk>`.
    pub max_vocab: usize,
    /// Minimum corpus frequency for a token to enter the vocabulary.
    pub min_count: usize,
    /// Training epochs over the (possibly sampled) corpus.
    pub epochs: usize,
    /// Cap on the number of training sentences (sampled uniformly);
    /// `0` = use all.
    pub max_sentences: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            embed_dim: 32,
            hidden: 100,
            max_vocab: 2000,
            min_count: 1,
            epochs: 5,
            max_sentences: 4000,
            adam: AdamConfig::default(),
            seed: 42,
        }
    }
}

impl LmConfig {
    /// The narrower 50-wide hidden layer used by the `RExtShortSeq`
    /// baseline.
    pub fn short() -> Self {
        LmConfig {
            hidden: 50,
            ..LmConfig::default()
        }
    }
}

/// Anything that embeds a label sequence into a fixed vector — the LSTM LM
/// by default, the attention encoder for the `RExtBertSeq` baseline.
pub trait SequenceEmbedder: Send + Sync {
    /// Output dimensionality.
    fn dim(&self) -> usize;
    /// Embed an (edge-)label sequence.
    fn embed_symbols(&self, syms: &[Symbol]) -> Vec<f32>;
}

/// The trained language model.
#[derive(Debug)]
pub struct LanguageModel {
    cfg: LmConfig,
    symbols: SymbolTable,
    by_norm: FxHashMap<String, TokenId>,
    sym_cache: RwLock<FxHashMap<Symbol, TokenId>>,
    embed: Param,
    cell: LstmCell,
    why: Param,
    by: Param,
    adam_t: usize,
}

impl Clone for LanguageModel {
    fn clone(&self) -> Self {
        LanguageModel {
            cfg: self.cfg.clone(),
            symbols: self.symbols.clone(),
            by_norm: self.by_norm.clone(),
            sym_cache: RwLock::new(self.sym_cache.read().expect("cache lock").clone()),
            embed: self.embed.clone(),
            cell: self.cell.clone(),
            why: self.why.clone(),
            by: self.by.clone(),
            adam_t: self.adam_t,
        }
    }
}

impl LanguageModel {
    /// Build the vocabulary from `corpus` and train by truncated BPTT.
    ///
    /// The corpus is the random-walk sentence set from
    /// `gsj_graph::random_walk::build_corpus`; `symbols` is the graph's
    /// symbol table (labels are normalized through [`normalize_label`]
    /// before tokenization). Training is unsupervised.
    pub fn train(corpus: &[Vec<Symbol>], symbols: &SymbolTable, cfg: LmConfig) -> Self {
        let mut span = gsj_obs::span("nn.lm_train");
        let mut model = Self::untrained(corpus, symbols, cfg);
        model.fit(corpus);
        span.field("sentences", corpus.len())
            .field("vocab", model.vocab_size());
        model
    }

    /// Build vocabulary and random weights without fitting (useful for
    /// perplexity baselines and tests).
    pub fn untrained(corpus: &[Vec<Symbol>], symbols: &SymbolTable, cfg: LmConfig) -> Self {
        // Frequency-ranked vocabulary over normalized labels, with
        // <unk>/<eos> reserved.
        let mut counts: FxHashMap<String, usize> = FxHashMap::default();
        for s in corpus {
            for &sym in s {
                let norm = normalize_label(&symbols.resolve(sym));
                *counts.entry(norm).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= cfg.min_count)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(cfg.max_vocab.saturating_sub(SPECIALS));
        let by_norm: FxHashMap<String, TokenId> = ranked
            .into_iter()
            .enumerate()
            .map(|(i, (s, _))| (s, i + SPECIALS))
            .collect();
        let v = by_norm.len() + SPECIALS;

        use crate::matrix::Matrix;
        let embed = Param::new(
            Matrix::xavier(v, cfg.embed_dim, cfg.seed ^ 0x11)
                .data()
                .to_vec(),
        );
        let cell = LstmCell::new(cfg.embed_dim, cfg.hidden, cfg.seed ^ 0x22);
        let why = Param::new(
            Matrix::xavier(v, cfg.hidden, cfg.seed ^ 0x33)
                .data()
                .to_vec(),
        );
        let by = Param::new(vec![0.0; v]);
        LanguageModel {
            cfg,
            symbols: symbols.clone(),
            by_norm,
            sym_cache: RwLock::new(FxHashMap::default()),
            embed,
            cell,
            why,
            by,
            adam_t: 0,
        }
    }

    /// Run the training loop (callable again for fine-tuning).
    pub fn fit(&mut self, corpus: &[Vec<Symbol>]) {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x44);
        let mut indices: Vec<usize> = (0..corpus.len()).collect();
        indices.shuffle(&mut rng);
        if self.cfg.max_sentences > 0 {
            indices.truncate(self.cfg.max_sentences);
        }
        let adam = self.cfg.adam;
        for _ in 0..self.cfg.epochs {
            indices.shuffle(&mut rng);
            for &i in &indices {
                let tokens = self.tokenize(&corpus[i]);
                if tokens.is_empty() {
                    continue;
                }
                self.train_sentence(&tokens, &adam);
            }
        }
    }

    fn tokenize(&self, sentence: &[Symbol]) -> Vec<TokenId> {
        sentence.iter().map(|s| self.token_of(*s)).collect()
    }

    /// Map a symbol to its token id (`<unk>` when out of vocabulary).
    /// Normalization results are memoized per symbol.
    pub fn token_of(&self, sym: Symbol) -> TokenId {
        if let Some(&t) = self.sym_cache.read().expect("cache lock").get(&sym) {
            return t;
        }
        let norm = normalize_label(&self.symbols.resolve(sym));
        let t = self.by_norm.get(&norm).copied().unwrap_or(UNK);
        self.sym_cache.write().expect("cache lock").insert(sym, t);
        t
    }

    /// Vocabulary size including `<unk>`/`<eos>`.
    pub fn vocab_size(&self) -> usize {
        self.by_norm.len() + SPECIALS
    }

    /// LSTM hidden width (= the path-embedding dimensionality).
    pub fn hidden_dim(&self) -> usize {
        self.cfg.hidden
    }

    fn embed_row(&self, tok: TokenId) -> &[f32] {
        let e = self.cfg.embed_dim;
        &self.embed.w[tok * e..(tok + 1) * e]
    }

    fn logits(&self, h: &[f32], out: &mut [f32]) {
        let hid = self.cfg.hidden;
        for (r, o) in out.iter_mut().enumerate() {
            *o = crate::vector::dot(&self.why.w[r * hid..(r + 1) * hid], h) + self.by.w[r];
        }
    }

    /// One SGD step on one sentence: predict token `t+1` from tokens
    /// `..=t`, final target `<eos>`; cross-entropy loss. Returns the mean
    /// per-token loss.
    fn train_sentence(&mut self, tokens: &[TokenId], adam: &AdamConfig) -> f32 {
        let v = self.vocab_size();
        let hid = self.cfg.hidden;
        let e = self.cfg.embed_dim;
        let t_len = tokens.len();
        // Forward.
        let mut caches = Vec::with_capacity(t_len);
        let mut probs_all = Vec::with_capacity(t_len);
        let mut h = vec![0.0f32; hid];
        let mut c = vec![0.0f32; hid];
        let mut loss = 0.0f32;
        for (t, &tok) in tokens.iter().enumerate() {
            let x = self.embed_row(tok).to_vec();
            let cache = self.cell.forward(&x, &h, &c);
            h = cache.h.clone();
            c = cache_c(&cache);
            let mut p = vec![0.0f32; v];
            self.logits(&h, &mut p);
            crate::vector::softmax(&mut p);
            let target = if t + 1 < t_len { tokens[t + 1] } else { EOS };
            loss -= p[target].max(1e-12).ln();
            probs_all.push(p);
            caches.push(cache);
        }
        // Backward (full BPTT over the sentence — sentences are short).
        // Gradients are summed per token, NOT averaged per sentence:
        // averaging would weight tokens of short sentences more, and since
        // short sentences are exactly the <eos>-heavy ones, it skews the
        // model toward premature stops (miscalibrating path selection).
        let mut dh_next = vec![0.0f32; hid];
        let mut dc_next = vec![0.0f32; hid];
        for t in (0..t_len).rev() {
            let target = if t + 1 < t_len { tokens[t + 1] } else { EOS };
            let mut dlogits = probs_all[t].clone();
            dlogits[target] -= 1.0;
            // dWhy += dlogits ⊗ h ; dh = Whyᵀ dlogits (+ carry).
            let h_t = &caches[t].h;
            for (r, &dl) in dlogits.iter().enumerate() {
                crate::vector::add_scaled(&mut self.why.g[r * hid..(r + 1) * hid], dl, h_t);
                self.by.g[r] += dl;
            }
            let mut dh = dh_next.clone();
            for (r, &dl) in dlogits.iter().enumerate() {
                crate::vector::add_scaled(&mut dh, dl, &self.why.w[r * hid..(r + 1) * hid]);
            }
            let (dx, dh_prev, dc_prev) = self.cell.backward(&caches[t], &dh, &dc_next);
            // Embedding gradient.
            let tok = tokens[t];
            crate::vector::add_assign(&mut self.embed.g[tok * e..(tok + 1) * e], &dx);
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        self.adam_t += 1;
        let t = self.adam_t;
        let inv_t = 1.0 / t_len as f32;
        self.embed.adam_step(adam, t);
        self.why.adam_step(adam, t);
        self.by.adam_step(adam, t);
        self.cell.wx.adam_step(adam, t);
        self.cell.wh.adam_step(adam, t);
        self.cell.b.adam_step(adam, t);
        loss * inv_t
    }

    /// Corpus perplexity `exp(mean CE)` — the training loss the paper
    /// optimizes.
    pub fn perplexity(&self, corpus: &[Vec<Symbol>]) -> f32 {
        let v = self.vocab_size();
        let hid = self.cfg.hidden;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for s in corpus {
            let tokens = self.tokenize(s);
            if tokens.is_empty() {
                continue;
            }
            let mut h = vec![0.0f32; hid];
            let mut c = vec![0.0f32; hid];
            for (t, &tok) in tokens.iter().enumerate() {
                let cache = self.cell.forward(self.embed_row(tok), &h, &c);
                h = cache.h.clone();
                c = cache_c(&cache);
                let mut p = vec![0.0f32; v];
                self.logits(&h, &mut p);
                crate::vector::softmax(&mut p);
                let target = if t + 1 < tokens.len() {
                    tokens[t + 1]
                } else {
                    EOS
                };
                total -= (p[target].max(1e-12) as f64).ln();
                count += 1;
            }
        }
        if count == 0 {
            f32::INFINITY
        } else {
            ((total / count as f64).exp()) as f32
        }
    }

    /// Start a stateful prediction session (used by path selection).
    pub fn session(&self) -> LmSession<'_> {
        LmSession {
            model: self,
            h: vec![0.0; self.cfg.hidden],
            c: vec![0.0; self.cfg.hidden],
        }
    }
}

/// Clone a step's cell state (kept behind an accessor so the cache stays
/// opaque elsewhere).
fn cache_c(cache: &crate::lstm::StepCache) -> Vec<f32> {
    cache.cell_state().to_vec()
}

impl LanguageModel {
    /// Embed a label sequence: run it through the LSTM and return the last
    /// hidden state (`xρ` of pattern discovery step 2). The empty sequence
    /// embeds to the zero vector.
    pub fn embed_sequence(&self, syms: &[Symbol]) -> Vec<f32> {
        let hid = self.cfg.hidden;
        let mut h = vec![0.0f32; hid];
        let mut c = vec![0.0f32; hid];
        for &sym in syms {
            let tok = self.token_of(sym);
            let cache = self.cell.forward(self.embed_row(tok), &h, &c);
            h = cache.h.clone();
            c = cache_c(&cache);
        }
        h
    }
}

impl SequenceEmbedder for LanguageModel {
    fn dim(&self) -> usize {
        self.cfg.hidden
    }

    fn embed_symbols(&self, syms: &[Symbol]) -> Vec<f32> {
        self.embed_sequence(syms)
    }
}

/// A stateful next-token prediction session over the LM.
///
/// Path selection feeds the labels it traverses (vertex label, chosen edge
/// label, next vertex label, ...) and reads the distribution after each
/// vertex label to rank candidate edges — mirroring "feeds the vertex label
/// `L(v')` to `Mρ` and obtains a list `L1` of edge labels along with their
/// possibility".
pub struct LmSession<'a> {
    model: &'a LanguageModel,
    h: Vec<f32>,
    c: Vec<f32>,
}

impl<'a> LmSession<'a> {
    /// Feed one label and return the next-token probability distribution
    /// over the vocabulary (index = [`TokenId`]).
    pub fn feed(&mut self, sym: Symbol) -> Vec<f32> {
        let tok = self.model.token_of(sym);
        self.feed_token(tok)
    }

    /// Feed a raw token id.
    pub fn feed_token(&mut self, tok: TokenId) -> Vec<f32> {
        let cache = self
            .model
            .cell
            .forward(self.model.embed_row(tok), &self.h, &self.c);
        self.h = cache.h.clone();
        self.c = cache_c(&cache);
        let mut p = vec![0.0f32; self.model.vocab_size()];
        self.model.logits(&self.h, &mut p);
        crate::vector::softmax(&mut p);
        p
    }

    /// Probability assigned to a symbol by the given distribution.
    pub fn prob_of(&self, dist: &[f32], sym: Symbol) -> f32 {
        dist[self.model.token_of(sym)]
    }

    /// Probability of the `<eos>` stop signal.
    pub fn eos_prob(&self, dist: &[f32]) -> f32 {
        dist[EOS]
    }

    /// Fork the session (so alternative continuations can be explored
    /// without re-feeding the prefix).
    pub fn fork(&self) -> LmSession<'a> {
        LmSession {
            model: self.model,
            h: self.h.clone(),
            c: self.c.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::SymbolTable;

    /// A deterministic toy corpus: A always followed by x, B by y.
    fn toy_corpus(table: &SymbolTable) -> Vec<Vec<Symbol>> {
        let a = table.intern("A");
        let b = table.intern("B");
        let x = table.intern("x");
        let y = table.intern("y");
        let c = table.intern("C");
        let mut corpus = Vec::new();
        for _ in 0..40 {
            corpus.push(vec![a, x, c]);
            corpus.push(vec![b, y, c]);
        }
        corpus
    }

    fn tiny_cfg() -> LmConfig {
        LmConfig {
            embed_dim: 8,
            hidden: 12,
            epochs: 14,
            max_sentences: 0,
            seed: 7,
            ..LmConfig::default()
        }
    }

    #[test]
    fn training_reduces_perplexity() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let untrained = LanguageModel::untrained(&corpus, &table, tiny_cfg());
        let ppl0 = untrained.perplexity(&corpus);
        let trained = LanguageModel::train(&corpus, &table, tiny_cfg());
        let ppl1 = trained.perplexity(&corpus);
        assert!(
            ppl1 < ppl0 * 0.8,
            "perplexity did not improve: {ppl0} -> {ppl1}"
        );
    }

    #[test]
    fn learns_deterministic_bigram() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::train(&corpus, &table, tiny_cfg());
        let a = table.intern("A");
        let x = table.intern("x");
        let y = table.intern("y");
        let mut sess = model.session();
        let dist = sess.feed(a);
        assert!(
            sess.prob_of(&dist, x) > sess.prob_of(&dist, y),
            "P(x|A) = {} should beat P(y|A) = {}",
            sess.prob_of(&dist, x),
            sess.prob_of(&dist, y)
        );
    }

    #[test]
    fn eos_is_predicted_at_sentence_end() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::train(&corpus, &table, tiny_cfg());
        let a = table.intern("A");
        let x = table.intern("x");
        let c = table.intern("C");
        let mut sess = model.session();
        sess.feed(a);
        sess.feed(x);
        let dist = sess.feed(c);
        // After the full sentence the most likely continuation is <eos>.
        let argmax = dist
            .iter()
            .enumerate()
            .max_by(|p, q| p.1.partial_cmp(q.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, EOS, "eos prob = {}", sess.eos_prob(&dist));
    }

    #[test]
    fn unknown_symbols_map_to_unk() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::untrained(&corpus, &table, tiny_cfg());
        let never_seen = table.intern("zzz-not-in-corpus");
        assert_eq!(model.token_of(never_seen), UNK);
    }

    #[test]
    fn sequence_embedding_is_order_sensitive() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::train(&corpus, &table, tiny_cfg());
        let a = table.intern("A");
        let b = table.intern("B");
        let ab = model.embed_sequence(&[a, b]);
        let ba = model.embed_sequence(&[b, a]);
        assert_eq!(ab.len(), model.hidden_dim());
        let diff: f32 = ab.iter().zip(&ba).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "order must matter, diff = {diff}");
    }

    #[test]
    fn empty_sequence_embeds_to_zero() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::untrained(&corpus, &table, tiny_cfg());
        assert!(model.embed_sequence(&[]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn vocab_cap_is_respected() {
        let table = SymbolTable::new();
        let mut corpus = Vec::new();
        for i in 0..50u8 {
            // Letter-distinct tokens (digits are stripped by label
            // normalization).
            let tok = format!("{}{}", (b'a' + i / 26) as char, (b'a' + i % 26) as char);
            corpus.push(vec![table.intern(&tok); 3]);
        }
        let cfg = LmConfig {
            max_vocab: 10,
            ..tiny_cfg()
        };
        let model = LanguageModel::untrained(&corpus, &table, cfg);
        assert_eq!(model.vocab_size(), 10);
    }

    #[test]
    fn fork_preserves_state() {
        let table = SymbolTable::new();
        let corpus = toy_corpus(&table);
        let model = LanguageModel::train(&corpus, &table, tiny_cfg());
        let a = table.intern("A");
        let x = table.intern("x");
        let mut sess = model.session();
        sess.feed(a);
        let mut forked = sess.fork();
        assert_eq!(sess.feed(x), forked.feed(x));
    }
}
