//! A small self-attention encoder: the workspace's "BERT" stand-in.
//!
//! The ablation baselines `RExtBertEmb` and `RExtBertSeq` (Section V,
//! Exp-2(b)) swap GloVe / the LSTM for BERT. Shipping a real pretrained
//! BERT is out of scope, so this module provides a deterministic
//! random-feature transformer encoder: token hash embeddings + sinusoidal
//! positions, two blocks of single-head self-attention with residuals and a
//! ReLU feed-forward, mean-pooled. Two properties matter for the
//! reproduction and both hold by construction:
//!
//! 1. it is *far more compute per label* than the hash embedder / LSTM
//!    (quadratic attention + 4·d² projections per block), so the cost
//!    relations of Exp-3(III) (Bert variants ~2–3× slower) are preserved;
//! 2. it is a reasonable random-feature encoder: similar token multisets in
//!    similar orders map to nearby outputs, so accuracy stays in the same
//!    band as the defaults, as the paper reports.

use crate::embedding::{HashEmbedder, WordEmbedder};
use crate::lm::SequenceEmbedder;
use crate::matrix::Matrix;
use gsj_common::{Symbol, SymbolTable};

/// Weight of the attention/FFN contributions relative to the residual
/// stream (see the residual-dominant note in [`AttnEncoder`]'s encode
/// loop).
const MIX: f32 = 0.25;

/// One transformer block's parameters.
#[derive(Debug, Clone)]
struct Block {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w1: Matrix,
    w2: Matrix,
}

impl Block {
    fn new(d: usize, ff: usize, seed: u64) -> Self {
        Block {
            wq: Matrix::xavier(d, d, seed ^ 0x1),
            wk: Matrix::xavier(d, d, seed ^ 0x2),
            wv: Matrix::xavier(d, d, seed ^ 0x3),
            wo: Matrix::xavier(d, d, seed ^ 0x4),
            w1: Matrix::xavier(ff, d, seed ^ 0x5),
            w2: Matrix::xavier(d, ff, seed ^ 0x6),
        }
    }
}

/// The encoder. Construct with [`AttnEncoder::for_words`] (label → vector,
/// a [`WordEmbedder`]) or [`AttnEncoder::for_sequences`] (label sequence →
/// vector, a [`SequenceEmbedder`]).
#[derive(Debug, Clone)]
pub struct AttnEncoder {
    d: usize,
    ff: usize,
    blocks: Vec<Block>,
    base: HashEmbedder,
    /// Needed only by the sequence flavour to resolve symbols to strings.
    symbols: Option<SymbolTable>,
}

impl AttnEncoder {
    fn new(dim: usize, symbols: Option<SymbolTable>) -> Self {
        let ff = 2 * dim;
        let blocks = (0..2).map(|i| Block::new(dim, ff, 0xbe27 + i)).collect();
        AttnEncoder {
            d: dim,
            ff,
            blocks,
            base: HashEmbedder::new(dim),
            symbols,
        }
    }

    /// Word-embedding flavour (`RExtBertEmb`'s `Me`).
    pub fn for_words(dim: usize) -> Self {
        Self::new(dim, None)
    }

    /// Sequence-embedding flavour (`RExtBertSeq`'s `Mρ` replacement).
    pub fn for_sequences(dim: usize, symbols: SymbolTable) -> Self {
        Self::new(dim, Some(symbols))
    }

    fn positional(&self, pos: usize) -> Vec<f32> {
        let d = self.d;
        (0..d)
            .map(|i| {
                let rate = 1.0 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
                let angle = pos as f32 * rate;
                if i % 2 == 0 {
                    angle.sin()
                } else {
                    angle.cos()
                }
            })
            .collect()
    }

    /// Encode a token-vector sequence: attention blocks then mean pooling.
    fn encode(&self, mut xs: Vec<Vec<f32>>) -> Vec<f32> {
        if xs.is_empty() {
            return vec![0.0; self.d];
        }
        let d = self.d;
        for (pos, x) in xs.iter_mut().enumerate() {
            crate::vector::add_scaled(x, 0.15, &self.positional(pos));
        }
        let scale = 1.0 / (d as f32).sqrt();
        for block in &self.blocks {
            let n = xs.len();
            let mut qs = vec![vec![0.0f32; d]; n];
            let mut ks = vec![vec![0.0f32; d]; n];
            let mut vs = vec![vec![0.0f32; d]; n];
            for (i, x) in xs.iter().enumerate() {
                block.wq.matvec(x, &mut qs[i]);
                block.wk.matvec(x, &mut ks[i]);
                block.wv.matvec(x, &mut vs[i]);
            }
            let mut attended = vec![vec![0.0f32; d]; n];
            for i in 0..n {
                let mut scores: Vec<f32> = (0..n)
                    .map(|j| crate::vector::dot(&qs[i], &ks[j]) * scale)
                    .collect();
                crate::vector::softmax(&mut scores);
                for (j, &s) in scores.iter().enumerate() {
                    crate::vector::add_scaled(&mut attended[i], s, &vs[j]);
                }
            }
            for i in 0..xs.len() {
                // Residual-dominant mixing: a pretrained BERT keeps
                // lexically/semantically similar inputs close in its
                // output space; with random weights that property only
                // survives if the residual dominates the (random)
                // attention and FFN contributions.
                let mut proj = vec![0.0f32; d];
                block.wo.matvec(&attended[i], &mut proj);
                crate::vector::add_scaled(&mut xs[i], MIX, &proj);
                crate::vector::l2_normalize(&mut xs[i]);
                // Feed-forward with residual.
                let mut hidden = vec![0.0f32; self.ff];
                block.w1.matvec(&xs[i], &mut hidden);
                for v in &mut hidden {
                    *v = v.max(0.0);
                }
                let mut out = vec![0.0f32; d];
                block.w2.matvec(&hidden, &mut out);
                crate::vector::add_scaled(&mut xs[i], MIX, &out);
                crate::vector::l2_normalize(&mut xs[i]);
            }
        }
        // Mean pool.
        let mut pooled = vec![0.0f32; d];
        for x in &xs {
            crate::vector::add_assign(&mut pooled, x);
        }
        crate::vector::scale(&mut pooled, 1.0 / xs.len() as f32);
        crate::vector::l2_normalize(&mut pooled);
        pooled
    }

    fn word_tokens(label: &str) -> Vec<String> {
        label
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .collect()
    }
}

impl WordEmbedder for AttnEncoder {
    fn dim(&self) -> usize {
        self.d
    }

    fn embed(&self, label: &str) -> Vec<f32> {
        let tokens = Self::word_tokens(label);
        if tokens.is_empty() {
            return vec![0.0; self.d];
        }
        let xs: Vec<Vec<f32>> = tokens.iter().map(|t| self.base.embed(t)).collect();
        self.encode(xs)
    }
}

impl SequenceEmbedder for AttnEncoder {
    fn dim(&self) -> usize {
        self.d
    }

    fn embed_symbols(&self, syms: &[Symbol]) -> Vec<f32> {
        let table = self
            .symbols
            .as_ref()
            .expect("sequence flavour requires a symbol table");
        let xs: Vec<Vec<f32>> = syms
            .iter()
            .map(|&s| self.base.embed(&table.resolve(s)))
            .collect();
        self.encode(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    #[test]
    fn word_embedding_is_deterministic_and_unit() {
        let e = AttnEncoder::for_words(32);
        let a = e.embed("risk profile");
        assert_eq!(a, e.embed("risk profile"));
        assert!((crate::vector::l2_norm(&a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn related_labels_stay_closer_than_unrelated() {
        let e = AttnEncoder::for_words(64);
        let a = e.embed("company location");
        let b = e.embed("company");
        let c = e.embed("volume");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn sequence_flavour_is_order_sensitive() {
        let table = SymbolTable::new();
        let x = table.intern("issue");
        let y = table.intern("regloc");
        let e = AttnEncoder::for_sequences(32, table);
        let xy = e.embed_symbols(&[x, y]);
        let yx = e.embed_symbols(&[y, x]);
        let diff: f32 = xy.iter().zip(&yx).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn empty_inputs_embed_to_zero() {
        let table = SymbolTable::new();
        let e = AttnEncoder::for_sequences(16, table);
        assert!(e.embed_symbols(&[]).iter().all(|&v| v == 0.0));
        let w = AttnEncoder::for_words(16);
        assert!(w.embed("").iter().all(|&v| v == 0.0));
    }
}
