//! Row-major dense matrices for the LSTM and attention layers.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization, deterministic for a seed.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Build from raw row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `out = self · x` (matrix-vector product).
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            *o = crate::vector::dot(self.row(r), x);
        }
    }

    /// `out += selfᵀ · y` — used for input-gradient accumulation in
    /// backprop (`dx += Wᵀ dy`).
    pub fn matvec_transpose_add(&self, y: &[f32], out: &mut [f32]) {
        debug_assert_eq!(y.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        for (r, &yr) in y.iter().enumerate() {
            crate::vector::add_scaled(out, yr, self.row(r));
        }
    }

    /// Rank-1 update `self += y ⊗ x` — the weight-gradient accumulation
    /// (`dW += dy xᵀ`).
    pub fn add_outer(&mut self, y: &[f32], x: &[f32]) {
        debug_assert_eq!(y.len(), self.rows);
        debug_assert_eq!(x.len(), self.cols);
        let cols = self.cols;
        for (r, &yr) in y.iter().enumerate() {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            crate::vector::add_scaled(row, yr, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut out);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_matvec_accumulates() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![10.0, 10.0];
        m.matvec_transpose_add(&[1.0, 1.0], &mut out);
        // Mᵀ·[1,1] = [4, 6], added to [10,10].
        assert_eq!(out, vec![14.0, 16.0]);
    }

    #[test]
    fn outer_product_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(4, 4, 9);
        let b = Matrix::xavier(4, 4, 9);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f32).sqrt();
        assert!(a.data().iter().all(|x| x.abs() <= bound));
        assert!(a.data().iter().any(|x| *x != 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
