//! A single-layer LSTM cell with manual forward/backward passes.
//!
//! The paper adopts LSTM for `Mρ` because it is "effective and efficient in
//! modeling the semantics of labels on paths in knowledge graphs" while
//! BERT-class models cost more for little gain (Section III). This is a
//! textbook LSTM: gates `i, f, g, o` packed in that order into one `4h`
//! pre-activation vector.

use crate::tensor::Param;

/// `out = W · x` for a flat row-major `rows × cols` weight slice.
fn matvec(w: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        out[r] = crate::vector::dot(&w[r * cols..(r + 1) * cols], x);
    }
}

/// `out += Wᵀ · y`.
fn matvec_t_add(w: &[f32], rows: usize, cols: usize, y: &[f32], out: &mut [f32]) {
    debug_assert_eq!(y.len(), rows);
    debug_assert_eq!(out.len(), cols);
    for (r, &yr) in y.iter().enumerate() {
        crate::vector::add_scaled(out, yr, &w[r * cols..(r + 1) * cols]);
    }
}

/// `W += y ⊗ x` into a flat gradient slice.
fn outer_add(w: &mut [f32], rows: usize, cols: usize, y: &[f32], x: &[f32]) {
    debug_assert_eq!(y.len(), rows);
    debug_assert_eq!(x.len(), cols);
    for (r, &yr) in y.iter().enumerate() {
        crate::vector::add_scaled(&mut w[r * cols..(r + 1) * cols], yr, x);
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The LSTM parameters: `Wx (4h × in)`, `Wh (4h × h)`, bias `b (4h)`.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input_dim: usize,
    hidden: usize,
    /// Input weights.
    pub wx: Param,
    /// Recurrent weights.
    pub wh: Param,
    /// Gate bias. The forget-gate quarter is initialized to 1.0 (the
    /// standard trick to keep memory open early in training).
    pub b: Param,
}

/// Everything the backward pass needs from one forward step.
#[derive(Debug, Clone)]
pub struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    /// Post-activation gates `[i | f | g | o]`.
    gates: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
    /// The step's hidden output.
    pub h: Vec<f32>,
}

impl StepCache {
    /// The step's cell state (needed to continue a recurrence).
    pub fn cell_state(&self) -> &[f32] {
        &self.c
    }
}

impl LstmCell {
    /// Create a cell with Xavier-initialized weights (deterministic per
    /// seed).
    pub fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        use crate::matrix::Matrix;
        let wx = Matrix::xavier(4 * hidden, input_dim, seed ^ 0xa1);
        let wh = Matrix::xavier(4 * hidden, hidden, seed ^ 0xb2);
        let mut b = vec![0.0f32; 4 * hidden];
        // Forget gate bias = 1.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmCell {
            input_dim,
            hidden,
            wx: Param::new(wx.data().to_vec()),
            wh: Param::new(wh.data().to_vec()),
            b: Param::new(b),
        }
    }

    /// Hidden size `h`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One forward step.
    pub fn forward(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> StepCache {
        let h = self.hidden;
        let mut gates = vec![0.0f32; 4 * h];
        matvec(&self.wx.w, 4 * h, self.input_dim, x, &mut gates);
        let mut rec = vec![0.0f32; 4 * h];
        matvec(&self.wh.w, 4 * h, h, h_prev, &mut rec);
        crate::vector::add_assign(&mut gates, &rec);
        crate::vector::add_assign(&mut gates, &self.b.w);
        for j in 0..h {
            gates[j] = sigmoid(gates[j]); // i
            gates[h + j] = sigmoid(gates[h + j]); // f
            gates[2 * h + j] = gates[2 * h + j].tanh(); // g
            gates[3 * h + j] = sigmoid(gates[3 * h + j]); // o
        }
        let mut c = vec![0.0f32; h];
        let mut hh = vec![0.0f32; h];
        let mut tanh_c = vec![0.0f32; h];
        for j in 0..h {
            c[j] = gates[h + j] * c_prev[j] + gates[j] * gates[2 * h + j];
            tanh_c[j] = c[j].tanh();
            hh[j] = gates[3 * h + j] * tanh_c[j];
        }
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            gates,
            c,
            tanh_c,
            h: hh,
        }
    }

    /// One backward step. `dh`/`dc` are gradients w.r.t. this step's
    /// outputs; returns `(dx, dh_prev, dc_prev)` and accumulates weight
    /// gradients into the cell's `Param`s.
    pub fn backward(
        &mut self,
        cache: &StepCache,
        dh: &[f32],
        dc_in: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let g = &cache.gates;
        let mut dgates = vec![0.0f32; 4 * h];
        let mut dc_prev = vec![0.0f32; h];
        for j in 0..h {
            let (i_g, f_g, g_g, o_g) = (g[j], g[h + j], g[2 * h + j], g[3 * h + j]);
            let do_ = dh[j] * cache.tanh_c[j];
            let dc = dc_in[j] + dh[j] * o_g * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
            let di = dc * g_g;
            let dg = dc * i_g;
            let df = dc * cache.c_prev[j];
            dc_prev[j] = dc * f_g;
            dgates[j] = di * i_g * (1.0 - i_g);
            dgates[h + j] = df * f_g * (1.0 - f_g);
            dgates[2 * h + j] = dg * (1.0 - g_g * g_g);
            dgates[3 * h + j] = do_ * o_g * (1.0 - o_g);
        }
        outer_add(&mut self.wx.g, 4 * h, self.input_dim, &dgates, &cache.x);
        outer_add(&mut self.wh.g, 4 * h, h, &dgates, &cache.h_prev);
        crate::vector::add_assign(&mut self.b.g, &dgates);
        let mut dx = vec![0.0f32; self.input_dim];
        matvec_t_add(&self.wx.w, 4 * h, self.input_dim, &dgates, &mut dx);
        let mut dh_prev = vec![0.0f32; h];
        matvec_t_add(&self.wh.w, 4 * h, h, &dgates, &mut dh_prev);
        (dx, dh_prev, dc_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_bounds() {
        let cell = LstmCell::new(3, 4, 1);
        let cache = cell.forward(&[0.5, -0.5, 1.0], &[0.0; 4], &[0.0; 4]);
        assert_eq!(cache.h.len(), 4);
        // h = o * tanh(c) is in (-1, 1).
        assert!(cache.h.iter().all(|x| x.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_state_gives_small_output() {
        let cell = LstmCell::new(2, 3, 2);
        let cache = cell.forward(&[0.0, 0.0], &[0.0; 3], &[0.0; 3]);
        assert!(cache.h.iter().all(|x| x.abs() < 0.5));
    }

    /// Numerical gradient check: the analytic dx must match finite
    /// differences of a scalar loss L = Σ h.
    #[test]
    fn gradient_check_input() {
        let mut cell = LstmCell::new(3, 2, 3);
        let x = vec![0.3, -0.2, 0.7];
        let h0 = vec![0.1, -0.1];
        let c0 = vec![0.05, 0.2];
        let loss = |cell: &LstmCell, x: &[f32]| -> f32 { cell.forward(x, &h0, &c0).h.iter().sum() };
        let cache = cell.forward(&x, &h0, &c0);
        let dh = vec![1.0; 2];
        let dc = vec![0.0; 2];
        let (dx, _, _) = cell.backward(&cache, &dh, &dc);
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&cell, &xp) - loss(&cell, &xm)) / (2.0 * eps);
            assert!(
                (num - dx[i]).abs() < 1e-2,
                "dx[{i}]: analytic {} vs numeric {num}",
                dx[i]
            );
        }
    }

    /// Numerical gradient check on the recurrent weights.
    #[test]
    fn gradient_check_weights() {
        let mut cell = LstmCell::new(2, 2, 4);
        let x = vec![0.5, -0.3];
        let h0 = vec![0.2, 0.1];
        let c0 = vec![-0.1, 0.3];
        let cache = cell.forward(&x, &h0, &c0);
        let dh = vec![1.0, 1.0];
        let dc = vec![0.0, 0.0];
        cell.backward(&cache, &dh, &dc);
        let analytic = cell.wh.g.clone();
        let eps = 1e-3;
        for idx in [0usize, 3, 5, 7] {
            let orig = cell.wh.w[idx];
            cell.wh.w[idx] = orig + eps;
            let lp: f32 = cell.forward(&x, &h0, &c0).h.iter().sum();
            cell.wh.w[idx] = orig - eps;
            let lm: f32 = cell.forward(&x, &h0, &c0).h.iter().sum();
            cell.wh.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic[idx]).abs() < 1e-2,
                "wh[{idx}]: analytic {} vs numeric {num}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn forget_bias_defaults_to_one() {
        let cell = LstmCell::new(2, 3, 5);
        assert!(cell.b.w[3..6].iter().all(|&v| v == 1.0));
        assert!(cell.b.w[0..3].iter().all(|&v| v == 0.0));
    }
}
