//! # gsj-nn
//!
//! The machine-learning substrate of RExt (Section III-A), implemented from
//! scratch in pure Rust:
//!
//! - [`vector`] / [`matrix`]: dense `f32` linear algebra primitives.
//! - [`tensor`]: parameter tensors with gradients and an Adam optimizer.
//! - [`embedding`]: [`embedding::HashEmbedder`] — the workspace's stand-in
//!   for pretrained GloVe word vectors (`Me`). It hashes word tokens and
//!   character trigrams into a fixed-dimensional space, so semantically
//!   overlapping labels (`regloc` vs `loc`) land near each other — the
//!   property RExt needs from `Me` (see DESIGN.md §2 for the substitution
//!   rationale).
//! - [`lstm`] / [`lm`]: a single-layer LSTM language model `Mρ` trained by
//!   truncated BPTT with the perplexity (cross-entropy) loss on
//!   random-walk label sentences, used both to *guide path selection* and
//!   to *embed paths* (the last hidden state).
//! - [`attention`]: a small self-attention encoder standing in for BERT in
//!   the `RExtBertEmb`/`RExtBertSeq` ablation baselines — deliberately
//!   heavier per call, as BERT is relative to GloVe/LSTM.

pub mod attention;
pub mod embedding;
pub mod lm;
pub mod lstm;
pub mod matrix;
pub mod tensor;
pub mod vector;

pub use attention::AttnEncoder;
pub use embedding::{HashEmbedder, WordEmbedder};
pub use lm::{LanguageModel, LmConfig, LmSession, SequenceEmbedder, TokenId, EOS, UNK};
pub use lstm::LstmCell;
pub use matrix::Matrix;
pub use tensor::{AdamConfig, Param};
pub use vector::{add_assign, cosine, dot, l2_norm, l2_normalize, scale};
