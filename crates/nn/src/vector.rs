//! Dense `f32` vector primitives.
//!
//! Everything in RExt that touches similarity — the ranking function's
//! cosine terms, K-means distances, value selection in Algorithm 1 — funnels
//! through these few functions, so they are written to auto-vectorize
//! (slice iteration, no bounds-checked indexing in the hot loops).

/// Dot product. Panics if lengths differ (debug builds); in release the
/// zip simply truncates, so callers must pass equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let (na, nb) = (l2_norm(a), l2_norm(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Squared Euclidean distance (K-means' objective avoids the sqrt).
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// `a += b`.
#[inline]
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a += s * b` (axpy).
#[inline]
pub fn add_scaled(a: &mut [f32], s: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// `a *= s`.
#[inline]
pub fn scale(a: &mut [f32], s: f32) {
    for x in a {
        *x *= s;
    }
}

/// Normalize `a` to unit L2 norm in place; leaves zero vectors untouched.
///
/// The paper performs "L2 normalization before vector concatenation" so
/// neither half of the 200-dim vertex-path feature dominates clustering.
#[inline]
pub fn l2_normalize(a: &mut [f32]) {
    let n = l2_norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Numerically-stable softmax in place.
pub fn softmax(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in a.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        scale(a, 1.0 / sum);
    }
}

/// Concatenate two vectors.
pub fn concat(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_bounds_and_degenerates() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut a = vec![1.0, 2.0, 3.0];
        softmax(&mut a);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut a = vec![1000.0, 1000.0];
        softmax(&mut a);
        assert!((a[0] - 0.5).abs() < 1e-5);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut a = vec![3.0, 4.0];
        l2_normalize(&mut a);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_and_concat() {
        let mut a = vec![1.0, 1.0];
        add_scaled(&mut a, 2.0, &[1.0, 2.0]);
        assert_eq!(a, vec![3.0, 5.0]);
        assert_eq!(concat(&[1.0], &[2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn cosine_is_symmetric(
            a in prop::collection::vec(-10.0f32..10.0, 4),
            b in prop::collection::vec(-10.0f32..10.0, 4),
        ) {
            prop_assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-5);
        }

        #[test]
        fn cosine_is_scale_invariant(
            a in prop::collection::vec(0.1f32..10.0, 4),
            s in 0.1f32..5.0,
        ) {
            let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
            prop_assert!((cosine(&a, &scaled) - 1.0).abs() < 1e-4);
        }

        #[test]
        fn sq_dist_zero_iff_equal(a in prop::collection::vec(-5.0f32..5.0, 3)) {
            prop_assert!(sq_dist(&a, &a) < 1e-10);
        }
    }
}
