//! Parameter tensors with gradient buffers and an Adam optimizer.
//!
//! The LSTM language model has five parameter tensors (embedding, Wx, Wh,
//! gate bias, output projection + bias). Each is a [`Param`] that owns its
//! gradient and Adam moment buffers; [`Param::adam_step`] applies one
//! update and zeroes the gradient.

/// A learnable parameter tensor (flat storage; shape is the owner's
/// concern) with its gradient and Adam state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub w: Vec<f32>,
    /// Gradient accumulator (same layout as `w`).
    pub g: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Gradient-norm clip applied per tensor (0 disables).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
        }
    }
}

impl Param {
    /// Wrap existing weights.
    pub fn new(w: Vec<f32>) -> Self {
        let n = w.len();
        Param {
            w,
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Zero the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|x| *x = 0.0);
    }

    /// One Adam update with bias correction at timestep `t` (1-based),
    /// then clears the gradient.
    pub fn adam_step(&mut self, cfg: &AdamConfig, t: usize) {
        if cfg.clip > 0.0 {
            let norm = crate::vector::l2_norm(&self.g);
            if norm > cfg.clip {
                crate::vector::scale(&mut self.g, cfg.clip / norm);
            }
        }
        let t = t.max(1) as i32;
        let bc1 = 1.0 - cfg.beta1.powi(t);
        let bc2 = 1.0 - cfg.beta2.powi(t);
        for i in 0..self.w.len() {
            let g = self.g[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
        self.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam on f(w) = w² should converge to 0.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(vec![5.0]);
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        for t in 1..=500 {
            p.g[0] = 2.0 * p.w[0];
            p.adam_step(&cfg, t);
        }
        assert!(p.w[0].abs() < 0.05, "w = {}", p.w[0]);
    }

    #[test]
    fn step_clears_gradient() {
        let mut p = Param::new(vec![1.0, 2.0]);
        p.g = vec![0.5, -0.5];
        p.adam_step(&AdamConfig::default(), 1);
        assert_eq!(p.g, vec![0.0, 0.0]);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut p = Param::new(vec![0.0]);
        p.g = vec![1e6];
        let cfg = AdamConfig {
            lr: 0.1,
            clip: 1.0,
            ..AdamConfig::default()
        };
        p.adam_step(&cfg, 1);
        // With clip the effective gradient is 1.0 → first-step Adam update
        // is ≈ lr (bias-corrected), never the unclipped magnitude.
        assert!(p.w[0].abs() < 0.2, "w = {}", p.w[0]);
    }
}
