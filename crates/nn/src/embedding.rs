//! Word-label embeddings: the workspace's `Me`.
//!
//! The paper uses "the mean of GloVe embeddings" for natural-language vertex
//! labels and "the mean of character GloVe embeddings" for meaningless
//! labels (Section III-A step 2). Pretrained GloVe vectors are an external
//! artifact we cannot ship, so [`HashEmbedder`] substitutes deterministic
//! *feature hashing*: each word token and each character trigram of a label
//! is hashed to a pseudo-random unit vector, and the label embedding is the
//! normalized mean. Two labels then have high cosine similarity iff they
//! share word tokens or character n-grams — precisely the "semantically
//! close strings are close in vector space" property RExt needs from `Me`
//! (e.g. keyword `loc` vs edge label `regloc`). DESIGN.md §2 records the
//! substitution.

use gsj_common::FxHasher;
use std::hash::Hasher;

/// Anything that can embed a label string into a fixed-dimensional vector.
pub trait WordEmbedder: Send + Sync {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Embed a label; the result is L2-normalized (or all-zero for an
    /// empty label).
    fn embed(&self, label: &str) -> Vec<f32>;
}

/// Deterministic hashing embedder (GloVe stand-in).
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    /// Weight of word-token features relative to char-trigram features.
    word_weight: f32,
    seed: u64,
}

impl HashEmbedder {
    /// Standard 100-dimensional embedder (paper default).
    pub fn new(dim: usize) -> Self {
        HashEmbedder {
            dim,
            word_weight: 1.5,
            seed: 0x9e37_79b9,
        }
    }

    /// The 50-dimensional variant backing `RExtShortEmb`.
    pub fn short() -> Self {
        Self::new(50)
    }

    fn feature_vector(&self, feature: &str, weight: f32, out: &mut [f32]) {
        // Hash the feature string to seed a tiny xorshift stream, then fill
        // a pseudo-random ±1 pattern. Same feature → same pattern, so
        // shared features add constructively across labels.
        let mut h = FxHasher::default();
        h.write(feature.as_bytes());
        h.write_u64(self.seed);
        let mut state = h.finish() | 1;
        for slot in out.iter_mut() {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let sign = if r & 1 == 0 { 1.0 } else { -1.0 };
            *slot += weight * sign;
        }
    }

    fn tokens(label: &str) -> Vec<String> {
        label
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .collect()
    }

    fn trigrams(token: &str) -> Vec<String> {
        let padded: Vec<char> = std::iter::once('^')
            .chain(token.chars())
            .chain(std::iter::once('$'))
            .collect();
        if padded.len() < 3 {
            return vec![padded.iter().collect()];
        }
        padded.windows(3).map(|w| w.iter().collect()).collect()
    }
}

impl WordEmbedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, label: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let tokens = Self::tokens(label);
        if tokens.is_empty() {
            return out;
        }
        for token in &tokens {
            self.feature_vector(token, self.word_weight, &mut out);
            for tri in Self::trigrams(token) {
                self.feature_vector(&tri, 1.0, &mut out);
            }
        }
        crate::vector::l2_normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    #[test]
    fn deterministic() {
        let e = HashEmbedder::new(64);
        assert_eq!(e.embed("regloc"), e.embed("regloc"));
    }

    #[test]
    fn output_is_unit_norm() {
        let e = HashEmbedder::new(100);
        let v = e.embed("based_on");
        assert!((crate::vector::l2_norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_label_embeds_to_zero() {
        let e = HashEmbedder::new(32);
        assert!(e.embed("").iter().all(|&x| x == 0.0));
        assert!(e.embed("--- ---").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shared_substring_is_closer_than_unrelated() {
        // The motivating example from the paper's introduction: to fetch
        // `UK` as the country, RExt must find `regloc` semantically close
        // to the keyword `loc` even though `country` is not a label in G.
        let e = HashEmbedder::new(100);
        let regloc = e.embed("regloc");
        let loc = e.embed("loc");
        let price = e.embed("price");
        assert!(
            cosine(&regloc, &loc) > cosine(&regloc, &price),
            "regloc~loc = {}, regloc~price = {}",
            cosine(&regloc, &loc),
            cosine(&regloc, &price)
        );
    }

    #[test]
    fn shared_word_token_dominates() {
        let e = HashEmbedder::new(100);
        let a = e.embed("company name");
        let b = e.embed("company");
        let c = e.embed("volume");
        assert!(cosine(&a, &b) > 0.4);
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn case_and_punctuation_insensitive_tokens() {
        let e = HashEmbedder::new(100);
        let a = e.embed("Based_On");
        let b = e.embed("based on");
        assert!(cosine(&a, &b) > 0.99);
    }

    #[test]
    fn short_variant_has_50_dims() {
        assert_eq!(HashEmbedder::short().dim(), 50);
        assert_eq!(HashEmbedder::short().embed("x").len(), 50);
    }
}
