//! End-to-end serving tests: a real server on an ephemeral loopback
//! port, real sockets, the blocking client. The engine fixture is built
//! once and shared — every server started here serves the same
//! `Arc<GsqlEngine>`, which is exactly the production sharing model.

use gsj_common::GsjError;
use gsj_core::gsql::exec::{GsqlEngine, Strategy};
use gsj_datagen::queries::workload;
use gsj_datagen::{Collection, Scale};
use gsj_server::{
    engine_for_collection, http_get, read_frame, write_frame, Client, FrameRead, MetricsServer,
    QueryOpts, Request, Response, Server, ServerConfig, ServerHandle,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static (Collection, Arc<GsqlEngine>) {
    static F: OnceLock<(Collection, Arc<GsqlEngine>)> = OnceLock::new();
    F.get_or_init(|| {
        let col = gsj_datagen::collections::build("Celebrity", Scale::tiny(), 42)
            .expect("known collection");
        let engine = Arc::new(engine_for_collection(&col).expect("fixture engine"));
        (col, engine)
    })
}

fn start(sessions: usize, queue: usize) -> ServerHandle {
    let (_, engine) = fixture();
    Server::start(
        engine.clone(),
        ServerConfig {
            sessions,
            queue,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// Sorted CSV lines — row order is an implementation detail of the
/// operator pipeline, cell content is the contract.
fn canon(csv: &str) -> Vec<String> {
    let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

#[test]
fn ping_round_trips() {
    let handle = start(1, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    handle.shutdown();
}

/// The acceptance bar: eight concurrent clients, every reply identical
/// to what a single-threaded `GsqlEngine::run` produces for the same
/// query. The workload runs through semantic joins, the link cache and
/// aggregation, so this exercises the shared state under real
/// contention.
#[test]
fn concurrent_clients_match_single_threaded_results() {
    let (col, engine) = fixture();
    let queries: Vec<String> = workload(col).into_iter().map(|q| q.text).collect();
    let expected: Vec<Vec<String>> = queries
        .iter()
        .map(|q| canon(&engine.run(q, Strategy::Optimized).unwrap().to_csv()))
        .collect();

    let handle = start(4, 8);
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                // Stagger starting offsets so different clients hit
                // different queries at the same instant.
                for j in 0..queries.len() {
                    let k = (i + j) % queries.len();
                    let reply = c
                        .query(&queries[k])
                        .unwrap_or_else(|e| panic!("client {i} query {k}: {e}"));
                    assert_eq!(
                        canon(&reply.body),
                        expected[k],
                        "client {i} query {k} diverged from single-threaded result"
                    );
                    assert_eq!(reply.rows, Some(expected[k].len() as u64 - 1));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }
    handle.shutdown();
}

#[test]
fn zero_deadline_returns_typed_deadline_exceeded() {
    let (col, _) = fixture();
    let handle = start(1, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    let q = &workload(col)[0].text;
    let opts = QueryOpts {
        deadline: Some(Duration::ZERO),
        ..QueryOpts::default()
    };
    match c.query_with(q, &opts) {
        Err(e @ GsjError::DeadlineExceeded(_)) => assert!(e.is_governance()),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The session survives a governance rejection: same connection, a
    // query without limits succeeds.
    assert!(c.query(q).is_ok());
    handle.shutdown();
}

#[test]
fn tiny_row_budget_returns_resource_exhausted() {
    let (col, _) = fixture();
    let handle = start(1, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    let q = &workload(col)[0].text;
    let opts = QueryOpts {
        row_budget: Some(1),
        ..QueryOpts::default()
    };
    match c.query_with(q, &opts) {
        Err(e @ GsjError::ResourceExhausted(_)) => assert!(e.retryable()),
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn bad_header_values_and_strategies_are_config_errors() {
    let handle = start(1, 2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let req = Request::query("select x from y")
        .with_header("deadline-ms", "soon")
        .encode();
    write_frame(&mut stream, &req).unwrap();
    let resp = read_payload(&mut stream);
    assert!(matches!(
        resp.into_result(),
        Err(GsjError::Config(m)) if m.contains("deadline-ms")
    ));

    let req = Request::query("select x from y")
        .with_header("strategy", "quantum")
        .encode();
    write_frame(&mut stream, &req).unwrap();
    let resp = read_payload(&mut stream);
    assert!(matches!(
        resp.into_result(),
        Err(GsjError::Config(m)) if m.contains("quantum")
    ));
    handle.shutdown();
}

#[test]
fn explicit_strategies_answer_over_the_wire() {
    let (col, _) = fixture();
    let handle = start(2, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    let q = &workload(col)[0].text;
    for strategy in [Strategy::Baseline, Strategy::Optimized, Strategy::Heuristic] {
        let opts = QueryOpts {
            strategy: Some(strategy),
            ..QueryOpts::default()
        };
        let reply = c.query_with(q, &opts).unwrap_or_else(|e| {
            panic!("{strategy:?}: {e}");
        });
        assert!(reply.rows.is_some(), "{strategy:?}: missing rows header");
    }
    handle.shutdown();
}

#[test]
fn gsql_parse_error_keeps_the_session_alive() {
    let (col, _) = fixture();
    let handle = start(1, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.query("select ((( nonsense") {
        Err(GsjError::Parse(_)) => {}
        other => panic!("expected Parse error, got {other:?}"),
    }
    // Same connection still serves.
    assert!(c.query(&workload(col)[0].text).is_ok());
    handle.shutdown();
}

fn read_payload(stream: &mut TcpStream) -> Response {
    match read_frame(stream, gsj_server::DEFAULT_MAX_FRAME).unwrap() {
        FrameRead::Payload(p) => Response::parse(&p).unwrap(),
        other => panic!("expected a payload frame, got {other:?}"),
    }
}

#[test]
fn malformed_payload_gets_error_frame_and_session_continues() {
    let handle = start(1, 2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // A well-framed payload that is not GSJ/1 at all.
    write_frame(&mut stream, "GET /metrics HTTP/1.1\r\n\r\n").unwrap();
    let resp = read_payload(&mut stream);
    assert!(!resp.ok);
    assert!(matches!(resp.into_result(), Err(GsjError::Parse(_))));
    // The connection was not dropped: a valid PING on the same socket.
    write_frame(
        &mut stream,
        &Request::new(gsj_server::Verb::Ping, "hi").encode(),
    )
    .unwrap();
    let resp = read_payload(&mut stream);
    assert!(resp.ok);
    assert_eq!(resp.body, "hi");
    handle.shutdown();
}

#[test]
fn oversized_frame_is_refused_and_connection_closed() {
    let handle = start(1, 2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Announce a payload far over the cap; send nothing further.
    let len = (gsj_server::DEFAULT_MAX_FRAME as u32) + 1;
    stream.write_all(&len.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let resp = read_payload(&mut stream);
    assert!(matches!(
        resp.into_result(),
        Err(GsjError::ResourceExhausted(m)) if m.contains("exceeds")
    ));
    // The server closed the unsyncable connection.
    assert!(matches!(
        read_frame(&mut stream, gsj_server::DEFAULT_MAX_FRAME).unwrap(),
        FrameRead::Eof
    ));
    handle.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_does_not_wedge_the_server() {
    let handle = start(1, 2);
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Promise 100 bytes, deliver 10, hang up.
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"0123456789").unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // The server reports the truncation before closing (best-effort;
        // the read side of our socket is still open).
        let resp = read_payload(&mut stream);
        assert!(matches!(
            resp.into_result(),
            Err(GsjError::Parse(m)) if m.contains("truncated")
        ));
    }
    // The worker is free again: a fresh client gets served.
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    handle.shutdown();
}

/// Disconnecting mid-query must cancel the governor: the watcher sees
/// the EOF, raises the cancel flag, and the engine stops at its next
/// check instead of running the query to completion for nobody.
#[test]
fn client_disconnect_mid_query_cancels_the_governor() {
    let _guard = gsj_faults::exclusive();
    let (col, _) = fixture();
    let handle = start(1, 2);
    let before = gsj_server::server_stats().disconnect_cancels;
    // Slow the query down inside the relational pipeline so the
    // disconnect lands while it is executing.
    gsj_faults::set_spec(Some("relational.filter:delay=400ms")).unwrap();
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let q = workload(col)
            .iter()
            .find(|q| q.text.contains("where"))
            .expect("a filtered query")
            .text
            .clone();
        write_frame(&mut stream, &Request::query(q).encode()).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // let execution start
    } // drop: close the socket mid-query
      // The watcher polls every 25ms; the delayed operator re-checks the
      // governor afterwards. Give the chain a moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if gsj_server::server_stats().disconnect_cancels > before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect was never observed as a cancellation"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    gsj_faults::set_spec(None).unwrap();
    // The session worker survived the abandoned query.
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    handle.shutdown();
}

#[test]
fn saturated_server_sheds_with_resource_exhausted() {
    let handle = start(1, 1);
    let before = gsj_server::server_stats().shed;
    // One idle connection occupies the only session; one more fills the
    // queue; the third must be shed.
    let _hold_worker = Client::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let _hold_queue = Client::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let mut extra = Client::connect(handle.addr()).unwrap();
    match extra.query("select 1") {
        Err(e @ GsjError::ResourceExhausted(_)) => assert!(e.retryable()),
        other => panic!("expected shed, got {other:?}"),
    }
    assert!(gsj_server::server_stats().shed > before);
    handle.shutdown();
}

#[test]
fn explain_analyze_returns_the_unified_trace() {
    let (col, _) = fixture();
    let handle = start(1, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    let opts = QueryOpts {
        explain_analyze: true,
        ..QueryOpts::default()
    };
    let reply = c.query_with(&workload(col)[0].text, &opts).unwrap();
    assert!(reply.rows.is_none(), "a plan has no rows header");
    assert!(
        reply.body.contains("gsql.query"),
        "trace tree missing from analyze body:\n{}",
        reply.body
    );
    handle.shutdown();
}

#[test]
fn metrics_endpoint_serves_parseable_prometheus_text() {
    let (col, _) = fixture();
    let handle = start(1, 2);
    let metrics = MetricsServer::start("127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.query(&workload(col)[0].text).unwrap();

    let text = http_get(metrics.addr(), "/metrics").unwrap();
    let snap = gsj_obs::parse_prometheus_text(&text)
        .unwrap_or_else(|e| panic!("metrics must parse: {e}\n{text}"));
    assert!(
        snap.get("gsj_server_requests_total", &[])
            .is_some_and(|v| v >= 1.0),
        "serving counters missing from /metrics"
    );
    assert!(
        snap.samples
            .iter()
            .any(|s| s.name.starts_with("gsj_server_query_latency_ns")),
        "latency histogram missing from /metrics"
    );
    assert_eq!(http_get(metrics.addr(), "/healthz").unwrap(), "ok\n");
    assert!(http_get(metrics.addr(), "/unknown").is_err());
    metrics.shutdown();
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let (col, _) = fixture();
    let handle = start(2, 2);
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();
    c.query(&workload(col)[0].text).unwrap();

    handle.begin_shutdown();
    assert!(handle.is_shutting_down());
    // In-flight sessions drain, threads join. This returning at all is
    // the assertion — a stuck worker would hang the test.
    handle.shutdown();

    // The listener is gone: new clients cannot be served.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(refused, "a shut-down server must not serve new clients");
}

#[test]
fn shutdown_verb_stops_the_server() {
    let handle = start(2, 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.shutdown_server().unwrap();
    // The flag is observable server-side; joining completes.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !handle.is_shutting_down() {
        assert!(Instant::now() < deadline, "SHUTDOWN verb never took effect");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}
