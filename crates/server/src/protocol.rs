//! The GSJ/1 wire protocol: length-prefixed UTF-8 frames carrying a
//! line-oriented request / response payload.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+----------------------+
//! | u32 big-endian |  UTF-8 payload       |
//! | payload length |  (length bytes)      |
//! +----------------+----------------------+
//! ```
//!
//! # Payload layout
//!
//! The payload is line-oriented, HTTP/1-ish. A request:
//!
//! ```text
//! GSJ/1 QUERY
//! deadline-ms: 250
//! strategy: optimized
//!
//! select name from movie e-join G <director> as T
//! ```
//!
//! and a response:
//!
//! ```text
//! GSJ/1 OK              |  GSJ/1 ERROR
//! rows: 12              |  code: DeadlineExceeded
//! elapsed-us: 345       |  retryable: false
//!                       |  governance: true
//! <CSV result rows>     |  <error message>
//! ```
//!
//! Header *values* never contain newlines (error messages travel in the
//! body), so parsing is a single pass. Unknown headers are ignored,
//! which is the protocol's forward-compatibility story.

use gsj_common::{GsjError, Result};
use std::io::{self, Read, Write};

/// Protocol magic + version, the first token of every payload.
pub const MAGIC: &str = "GSJ/1";

/// Default cap on a single frame's payload (1 MiB). Oversized frames are
/// rejected *before* allocating the payload buffer, so a hostile length
/// prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Outcome of pulling one frame off a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, valid frame.
    Payload(String),
    /// Clean end-of-stream before any byte of a next frame — the peer
    /// closed between frames.
    Eof,
    /// The read timed out before any byte of a next frame arrived. Only
    /// produced on sockets with a read timeout; lets a session loop poll
    /// its shutdown flag between requests.
    Idle,
    /// The length prefix exceeded the frame cap; the payload was *not*
    /// read, so the connection cannot be re-synchronized and must close.
    Oversized(usize),
}

/// Read one frame. `should_abort` is polled whenever a timeout fires
/// *mid-frame* (after the first byte): returning `true` abandons the
/// partial frame with [`GsjError::Cancelled`]. A timeout before the
/// first byte is reported as [`FrameRead::Idle`] instead.
///
/// Truncation (EOF mid-frame) and non-UTF-8 payloads surface as
/// [`GsjError::Parse`]; transport failures as [`GsjError::Internal`].
pub fn read_frame_with(
    r: &mut impl Read,
    max_len: usize,
    mut should_abort: impl FnMut() -> bool,
) -> Result<FrameRead> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Eof)
                } else {
                    Err(GsjError::Parse(format!(
                        "truncated frame header ({got}/4 bytes)"
                    )))
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 {
                    return Ok(FrameRead::Idle);
                }
                if should_abort() {
                    return Err(GsjError::Cancelled);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(GsjError::Internal(format!("read: {e}"))),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Ok(FrameRead::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(GsjError::Parse(format!(
                    "truncated frame body ({got}/{len} bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if should_abort() {
                    return Err(GsjError::Cancelled);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(GsjError::Internal(format!("read: {e}"))),
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Payload)
        .map_err(|_| GsjError::Parse("frame payload is not UTF-8".into()))
}

/// [`read_frame_with`] for plain blocking readers (no timeout).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<FrameRead> {
    read_frame_with(r, max_len, || false)
}

/// Request verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Execute the gSQL text in the body.
    Query,
    /// Liveness probe; the body is echoed back.
    Ping,
    /// Ask the server to drain in-flight work and stop accepting.
    Shutdown,
}

impl Verb {
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Query => "QUERY",
            Verb::Ping => "PING",
            Verb::Shutdown => "SHUTDOWN",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "QUERY" => Ok(Verb::Query),
            "PING" => Ok(Verb::Ping),
            "SHUTDOWN" => Ok(Verb::Shutdown),
            other => Err(GsjError::Parse(format!("unknown verb `{other}`"))),
        }
    }
}

/// `(name, value)` header pairs, names lowercased.
pub type HeaderList = Vec<(String, String)>;

/// Split a payload into (first line, headers, body). Shared by request
/// and response parsing.
fn split_payload(payload: &str) -> Result<(&str, HeaderList, String)> {
    let mut lines = payload.split('\n');
    let first = lines
        .next()
        .ok_or_else(|| GsjError::Parse("empty payload".into()))?;
    let mut headers = Vec::new();
    for line in lines.by_ref() {
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            GsjError::Parse(format!("malformed header line `{line}` (missing `:`)"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body: String = lines.collect::<Vec<_>>().join("\n");
    Ok((first, headers, body))
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn encode_payload(first: &str, headers: &[(String, String)], body: &str) -> String {
    let mut s = String::with_capacity(first.len() + body.len() + 64);
    s.push_str(first);
    s.push('\n');
    for (name, value) in headers {
        debug_assert!(!value.contains('\n'), "header values must be single-line");
        s.push_str(name);
        s.push_str(": ");
        s.push_str(value);
        s.push('\n');
    }
    s.push('\n');
    s.push_str(body);
    s
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub verb: Verb,
    pub headers: Vec<(String, String)>,
    /// For `QUERY`, the gSQL text; for `PING`, an arbitrary echo token.
    pub body: String,
}

impl Request {
    pub fn new(verb: Verb, body: impl Into<String>) -> Self {
        Request {
            verb,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    pub fn query(text: impl Into<String>) -> Self {
        Request::new(Verb::Query, text)
    }

    /// Builder-style header append. Names are normalized to lowercase.
    pub fn with_header(mut self, name: &str, value: impl ToString) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    pub fn encode(&self) -> String {
        encode_payload(
            &format!("{MAGIC} {}", self.verb.as_str()),
            &self.headers,
            &self.body,
        )
    }

    pub fn parse(payload: &str) -> Result<Request> {
        let (first, headers, body) = split_payload(payload)?;
        let mut parts = first.split_whitespace();
        match parts.next() {
            Some(m) if m == MAGIC => {}
            other => {
                return Err(GsjError::Parse(format!(
                    "bad magic {other:?} (want `{MAGIC}`)"
                )))
            }
        }
        let verb = Verb::parse(parts.next().unwrap_or(""))?;
        Ok(Request {
            verb,
            headers,
            body,
        })
    }
}

/// A parsed response: either `OK` with result headers and a body, or
/// `ERROR` with the typed [`GsjError`] encoded in headers + body.
#[derive(Debug, Clone)]
pub struct Response {
    pub ok: bool,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

/// The bare message of an error, without the `Display` category prefix,
/// so `GsjError::from_wire(code, message)` reconstructs the exact
/// variant the server produced.
fn error_message(e: &GsjError) -> String {
    match e {
        GsjError::Schema(m)
        | GsjError::NotFound(m)
        | GsjError::Parse(m)
        | GsjError::Unsupported(m)
        | GsjError::Eval(m)
        | GsjError::Config(m)
        | GsjError::DeadlineExceeded(m)
        | GsjError::ResourceExhausted(m)
        | GsjError::Internal(m) => m.clone(),
        GsjError::Cancelled => String::new(),
        other => other.to_string(),
    }
}

impl Response {
    pub fn success(body: impl Into<String>) -> Self {
        Response {
            ok: true,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An error frame carrying the wire code plus the server-side
    /// `retryable` / `is_governance` verdicts (informational — clients
    /// recompute them from the reconstructed variant).
    pub fn failure(e: &GsjError) -> Self {
        Response {
            ok: false,
            headers: vec![
                ("code".into(), e.code().into()),
                ("retryable".into(), e.retryable().to_string()),
                ("governance".into(), e.is_governance().to_string()),
            ],
            body: error_message(e),
        }
    }

    pub fn with_header(mut self, name: &str, value: impl ToString) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    pub fn encode(&self) -> String {
        let status = if self.ok { "OK" } else { "ERROR" };
        encode_payload(&format!("{MAGIC} {status}"), &self.headers, &self.body)
    }

    pub fn parse(payload: &str) -> Result<Response> {
        let (first, headers, body) = split_payload(payload)?;
        let mut parts = first.split_whitespace();
        match parts.next() {
            Some(m) if m == MAGIC => {}
            other => {
                return Err(GsjError::Parse(format!(
                    "bad magic {other:?} (want `{MAGIC}`)"
                )))
            }
        }
        let ok = match parts.next() {
            Some("OK") => true,
            Some("ERROR") => false,
            other => {
                return Err(GsjError::Parse(format!(
                    "bad status {other:?} (want OK | ERROR)"
                )))
            }
        };
        Ok(Response { ok, headers, body })
    }

    /// Collapse an `ERROR` response into the typed error it carries; `OK`
    /// responses pass through.
    pub fn into_result(self) -> Result<Response> {
        if self.ok {
            return Ok(self);
        }
        let code = self.header("code").unwrap_or("Internal").to_string();
        Err(GsjError::from_wire(&code, &self.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &str) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn frames_round_trip() {
        let bytes = frame_bytes("hello ✓ frame");
        let mut r = Cursor::new(bytes);
        match read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Payload(p) => assert_eq!(p, "hello ✓ frame"),
            other => panic!("expected payload, got {other:?}"),
        }
        // The stream is now exhausted: clean EOF.
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut r = Cursor::new(frame_bytes(""));
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            FrameRead::Payload(p) if p.is_empty()
        ));
    }

    #[test]
    fn truncated_header_and_body_are_parse_errors() {
        // Only 2 of the 4 length bytes.
        let mut r = Cursor::new(vec![0u8, 0]);
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(GsjError::Parse(m)) => assert!(m.contains("header"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
        // Header promises 10 bytes, body delivers 3.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        match read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME) {
            Err(GsjError::Parse(m)) => assert!(m.contains("3/10"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let bytes = u32::MAX.to_be_bytes().to_vec();
        match read_frame(&mut Cursor::new(bytes), 1024).unwrap() {
            FrameRead::Oversized(n) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_payload_is_a_parse_error() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), 1024),
            Err(GsjError::Parse(_))
        ));
    }

    #[test]
    fn request_round_trips_with_headers_and_multiline_body() {
        let req = Request::query("select *\nfrom t")
            .with_header("Deadline-Ms", 250)
            .with_header("strategy", "optimized");
        let back = Request::parse(&req.encode()).unwrap();
        assert_eq!(back.verb, Verb::Query);
        assert_eq!(back.header("deadline-ms"), Some("250"));
        assert_eq!(back.header("strategy"), Some("optimized"));
        assert_eq!(back.header("missing"), None);
        assert_eq!(back.body, "select *\nfrom t");
    }

    #[test]
    fn ping_and_shutdown_verbs_parse() {
        for verb in [Verb::Ping, Verb::Shutdown] {
            let back = Request::parse(&Request::new(verb, "x").encode()).unwrap();
            assert_eq!(back.verb, verb);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            Request::parse("HTTP/1.1 GET\n\n"),
            Err(GsjError::Parse(_))
        ));
        assert!(matches!(
            Request::parse("GSJ/1 DELETE\n\n"),
            Err(GsjError::Parse(_))
        ));
        assert!(matches!(
            Request::parse("GSJ/1 QUERY\nno-colon-here\n\nbody"),
            Err(GsjError::Parse(_))
        ));
        assert!(matches!(Request::parse(""), Err(GsjError::Parse(_))));
    }

    #[test]
    fn ok_response_round_trips() {
        let resp = Response::success("a,b\n1,2")
            .with_header("rows", 1)
            .with_header("elapsed-us", 42);
        let back = Response::parse(&resp.encode()).unwrap();
        assert!(back.ok);
        assert_eq!(back.header("rows"), Some("1"));
        let through = back.into_result().unwrap();
        assert_eq!(through.body, "a,b\n1,2");
    }

    #[test]
    fn error_response_reconstructs_the_typed_error() {
        for e in [
            GsjError::Parse("bad token".into()),
            GsjError::Cancelled,
            GsjError::DeadlineExceeded("HashJoin".into()),
            GsjError::ResourceExhausted("row budget 10 exceeded".into()),
        ] {
            let resp = Response::failure(&e);
            let back = Response::parse(&resp.encode()).unwrap();
            assert!(!back.ok);
            assert_eq!(
                back.header("retryable"),
                Some(e.retryable().to_string()).as_deref()
            );
            let err = back.into_result().unwrap_err();
            assert_eq!(err, e, "must reconstruct {e:?}");
            assert_eq!(err.is_governance(), e.is_governance());
        }
    }

    #[test]
    fn idle_is_reported_before_first_byte_only() {
        // A reader that always times out.
        struct AlwaysTimeout;
        impl std::io::Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t/o"))
            }
        }
        assert!(matches!(
            read_frame_with(&mut AlwaysTimeout, 1024, || false).unwrap(),
            FrameRead::Idle
        ));

        // One that yields a partial header, then times out forever: the
        // abort hook must fire (mid-frame) instead of reporting Idle.
        struct Partial(usize);
        impl std::io::Read for Partial {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 > 0 {
                    self.0 -= 1;
                    buf[0] = 0;
                    Ok(1)
                } else {
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t/o"))
                }
            }
        }
        assert!(matches!(
            read_frame_with(&mut Partial(2), 1024, || true),
            Err(GsjError::Cancelled)
        ));
    }
}
