//! The session-pool TCP server: admission control, per-request
//! governance, disconnect cancellation, graceful shutdown.
//!
//! # Architecture (DESIGN.md §14)
//!
//! ```text
//!              accept thread                 session workers
//!   TcpListener ──────────────▶ bounded queue ──────────────▶ handle_conn
//!   (nonblocking poll,          (cap = queue)   recv() loop    per-request:
//!    shed when queue full)                                     governor + watcher
//! ```
//!
//! One **accept thread** polls a nonblocking listener; each accepted
//! connection is pushed onto a bounded queue with `try_send`. A full
//! queue means the server is saturated: the connection is *shed* — it
//! receives a single `ResourceExhausted` error frame and is closed —
//! rather than queued into unbounded memory.
//!
//! N **session workers** pull connections off the queue. A connection is
//! a session: a loop of length-prefixed request frames, each handled
//! under its own [`QueryGovernor`] built from the request's
//! `deadline-ms` / `row-budget` / `mem-budget` headers. A watcher thread
//! `peek`s the socket while the query runs and raises the governor's
//! cancel flag if the client disconnects, so abandoned queries stop
//! consuming CPU at the next operator boundary.
//!
//! Failure containment: every request is executed under
//! `catch_unwind`, and the fault sites `server.session` /
//! `server.accept` (class `Critical`) let the chaos suite inject
//! errors and panics at both boundaries — a fault in one session must
//! surface as an error frame on that connection only, never kill a
//! worker or the listener.
//!
//! Graceful shutdown: raising the shutdown flag (via
//! [`ServerHandle::begin_shutdown`] or a `SHUTDOWN` request) stops the
//! accept thread, which drops the queue's sender; workers drain what was
//! already admitted, finish in-flight requests, notice the flag on their
//! next idle poll, and exit. New connections arriving during shutdown
//! are refused with `ResourceExhausted`.

use crate::protocol::{
    read_frame_with, write_frame, FrameRead, Request, Response, Verb, DEFAULT_MAX_FRAME,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use gsj_common::{GsjError, QueryGovernor, Result};
use gsj_core::gsql::exec::{GsqlEngine, Strategy};
use gsj_faults::{fault_point, FaultClass};
use gsj_obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Sessions currently being handled by workers (admitted, not queued).
static INFLIGHT: LazyGauge = LazyGauge::new("gsj_server_inflight_sessions");
/// Connections refused because the accept queue was full.
static SHED: LazyCounter = LazyCounter::new("gsj_server_admission_shed_total");
/// Request frames received (any verb, before parsing).
static REQUESTS: LazyCounter = LazyCounter::new("gsj_server_requests_total");
/// Requests answered with an error frame.
static ERRORS: LazyCounter = LazyCounter::new("gsj_server_errors_total");
/// Queries cancelled because the watcher saw the client disconnect.
static DISCONNECT_CANCEL: LazyCounter = LazyCounter::new("gsj_server_disconnect_cancel_total");
/// Wall time per `QUERY` request (execution only, not framing).
static LATENCY: LazyHistogram = LazyHistogram::new("gsj_server_query_latency_ns");

/// How long an idle session read waits before re-checking the shutdown
/// flag. Bounds shutdown latency for connected-but-quiet clients.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Watcher poll interval while a query is executing.
const WATCH_POLL: Duration = Duration::from_millis(25);
/// How long admission retries a full queue before shedding. A connection
/// burst can fill the queue in the microseconds before idle workers wake
/// and pull; only sustained fullness — every session busy for this long —
/// is real overload.
const ADMIT_GRACE: Duration = Duration::from_millis(25);

/// Server tunables. `Default` binds an ephemeral localhost port with a
/// worker per “a few cores” and a small admission queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Session worker threads == max concurrently-served connections.
    pub sessions: usize,
    /// Accepted-but-unclaimed connection queue; beyond this, shed.
    pub queue: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Strategy used when a request has no `strategy` header.
    pub default_strategy: Strategy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            sessions: 4,
            queue: 8,
            max_frame: DEFAULT_MAX_FRAME,
            default_strategy: Strategy::Optimized,
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down and
/// joins every thread; [`ServerHandle::shutdown`] does so explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raise the shutdown flag without blocking: stop accepting, let
    /// in-flight work drain. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been initiated (locally or via a `SHUTDOWN`
    /// request).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Graceful shutdown: raise the flag, then join the accept thread
    /// and every session worker (i.e. wait for in-flight requests).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the server shuts down on its own — i.e. until a
    /// client sends `SHUTDOWN` (or another thread calls
    /// [`begin_shutdown`](Self::begin_shutdown)). Used by `gsj-serve`
    /// to park its main thread.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The gSQL server. Stateless itself — [`Server::start`] wires the
/// shared engine into the thread structure and returns the handle.
pub struct Server;

impl Server {
    /// Bind, spawn the accept thread and `cfg.sessions` workers, and
    /// return immediately. The engine is shared immutably: the catalog,
    /// profile and `g_L` link cache are loaded once and served from
    /// behind the `Arc` (interior caches use their own locks).
    pub fn start(engine: Arc<GsqlEngine>, cfg: ServerConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| GsjError::Config(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| GsjError::Internal(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| GsjError::Internal(format!("set_nonblocking: {e}")))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<TcpStream>(cfg.queue.max(1));

        let mut workers = Vec::with_capacity(cfg.sessions.max(1));
        for i in 0..cfg.sessions.max(1) {
            let rx = rx.clone();
            let engine = engine.clone();
            let cfg = cfg.clone();
            let shutdown = shutdown.clone();
            let h = thread::Builder::new()
                .name(format!("gsj-session-{i}"))
                .spawn(move || session_worker(&rx, &engine, &cfg, &shutdown))
                .map_err(|e| GsjError::Internal(format!("spawn worker: {e}")))?;
            workers.push(h);
        }
        drop(rx);

        let accept = {
            let shutdown = shutdown.clone();
            thread::Builder::new()
                .name("gsj-accept".into())
                .spawn(move || accept_loop(&listener, tx, &shutdown))
                .map_err(|e| GsjError::Internal(format!("spawn accept: {e}")))?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }
}

/// Poll the listener until shutdown; admit or shed each connection.
/// Exiting drops `tx`, which is what releases workers blocked in
/// `recv()` once the queue drains.
fn accept_loop(listener: &TcpListener, tx: Sender<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, &tx),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Admission control for one fresh connection. Wrapped in
/// `catch_unwind` so an injected panic at `server.accept` downs this
/// one connection, never the accept loop.
fn admit(stream: TcpStream, tx: &Sender<TcpStream>) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        fault_point("server.accept", FaultClass::Critical)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            refuse(stream, &e);
            return;
        }
        Err(_) => {
            refuse(
                stream,
                &GsjError::Internal("panic in server.accept (contained)".into()),
            );
            return;
        }
    }
    let mut pending = stream;
    let deadline = Instant::now() + ADMIT_GRACE;
    loop {
        match tx.try_send(pending) {
            Ok(()) => return,
            Err(TrySendError::Full(back)) => {
                if Instant::now() >= deadline {
                    SHED.inc();
                    refuse(
                        back,
                        &GsjError::ResourceExhausted(
                            "server at capacity: all sessions busy and accept queue full".into(),
                        ),
                    );
                    return;
                }
                pending = back;
                thread::sleep(Duration::from_millis(1));
            }
            Err(TrySendError::Disconnected(back)) => {
                refuse(
                    back,
                    &GsjError::ResourceExhausted("server is shutting down".into()),
                );
                return;
            }
        }
    }
}

/// Best-effort single error frame + close, for connections that never
/// reach a session worker.
fn refuse(mut stream: TcpStream, e: &GsjError) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = write_frame(&mut stream, &Response::failure(e).encode());
}

/// One worker: pull admitted connections until the queue closes *and*
/// drains, handling each to completion.
fn session_worker(
    rx: &Receiver<TcpStream>,
    engine: &Arc<GsqlEngine>,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    while let Ok(stream) = rx.recv() {
        INFLIGHT.add(1);
        // A panic escaping the per-request guard (e.g. in framing code)
        // must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            handle_conn(stream, engine, cfg, shutdown);
        }));
        INFLIGHT.add(-1);
    }
}

/// What to do with the connection after a request.
enum After {
    Continue,
    Close,
}

/// Serve one connection: a loop of frames, each answered in order.
fn handle_conn(
    mut stream: TcpStream,
    engine: &Arc<GsqlEngine>,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    loop {
        // Re-arm each iteration: the disconnect watcher shares the fd
        // and sets its own (shorter) timeout while a query runs.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let frame = read_frame_with(&mut stream, cfg.max_frame, || {
            shutdown.load(Ordering::Acquire)
        });
        let payload = match frame {
            Ok(FrameRead::Payload(p)) => p,
            Ok(FrameRead::Idle) => {
                if shutdown.load(Ordering::Acquire) {
                    return; // drain complete: close the idle session
                }
                continue;
            }
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Oversized(n)) => {
                // The payload was never read, so the stream cannot be
                // re-synchronized: report and close.
                ERRORS.inc();
                let e = GsjError::ResourceExhausted(format!(
                    "frame of {n} B exceeds the {} B limit",
                    cfg.max_frame
                ));
                let _ = write_frame(&mut stream, &Response::failure(&e).encode());
                return;
            }
            Err(e) => {
                // Truncated / corrupt / transport failure: tell the peer
                // if the pipe still works, then close.
                ERRORS.inc();
                let _ = write_frame(&mut stream, &Response::failure(&e).encode());
                return;
            }
        };

        REQUESTS.inc();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(&payload, &stream, engine, cfg, shutdown)
        }));
        let (resp, after) = outcome.unwrap_or_else(|_| {
            (
                Response::failure(&GsjError::Internal(
                    "panic in server.session (contained)".into(),
                )),
                After::Continue,
            )
        });
        if !resp.ok {
            ERRORS.inc();
        }
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return; // peer gone mid-response
        }
        if matches!(after, After::Close) {
            return;
        }
    }
}

/// Parse and execute one request frame. Never panics out (the caller
/// holds the `catch_unwind`); every failure becomes an error frame.
fn handle_request(
    payload: &str,
    stream: &TcpStream,
    engine: &Arc<GsqlEngine>,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) -> (Response, After) {
    if let Err(e) = fault_point("server.session", FaultClass::Critical) {
        return (Response::failure(&e), After::Continue);
    }
    let req = match Request::parse(payload) {
        Ok(r) => r,
        Err(e) => return (Response::failure(&e), After::Continue),
    };
    match req.verb {
        Verb::Ping => (Response::success(req.body.clone()), After::Continue),
        Verb::Shutdown => {
            shutdown.store(true, Ordering::Release);
            (Response::success("shutting down"), After::Close)
        }
        Verb::Query => match run_query(&req, stream, engine, cfg) {
            Ok(resp) => (resp, After::Continue),
            Err(e) => (Response::failure(&e), After::Continue),
        },
    }
}

fn parse_u64_header(req: &Request, name: &str) -> Result<Option<u64>> {
    match req.header(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| GsjError::Config(format!("header {name}: `{v}` is not a u64"))),
    }
}

/// Execute a `QUERY` request under a per-request governor, with a
/// watcher thread cancelling it if the client disconnects.
fn run_query(
    req: &Request,
    stream: &TcpStream,
    engine: &Arc<GsqlEngine>,
    cfg: &ServerConfig,
) -> Result<Response> {
    let mut builder = QueryGovernor::builder();
    if let Some(ms) = parse_u64_header(req, "deadline-ms")? {
        builder = builder.deadline(Duration::from_millis(ms));
    }
    if let Some(rows) = parse_u64_header(req, "row-budget")? {
        builder = builder.row_budget(rows);
    }
    if let Some(bytes) = parse_u64_header(req, "mem-budget")? {
        builder = builder.mem_budget(bytes);
    }
    let gov = builder.build();
    let strategy = match req.header("strategy") {
        Some(s) => s.parse::<Strategy>()?,
        None => cfg.default_strategy,
    };
    let explain = req
        .header("explain")
        .is_some_and(|v| v.eq_ignore_ascii_case("analyze"));

    let done = Arc::new(AtomicBool::new(false));
    spawn_disconnect_watcher(stream, gov.clone(), done.clone());

    let start = Instant::now();
    let result = if explain {
        engine
            .parse(&req.body)
            .and_then(|q| engine.explain_analyze_governed(&q, strategy, &gov))
            .map(|text| (text, None))
    } else {
        engine
            .run_governed(&req.body, strategy, &gov)
            .map(|rel| (rel.to_csv(), Some(rel.len())))
    };
    let elapsed = start.elapsed();

    // Release the watcher; it exits on its own within one poll interval.
    // Joining here would add up to WATCH_POLL to every response while the
    // watcher's in-flight peek runs out its timeout.
    done.store(true, Ordering::Release);
    LATENCY.observe_ns(elapsed.as_nanos() as u64);

    let (body, rows) = result?;
    let mut resp = Response::success(body).with_header("elapsed-us", elapsed.as_micros());
    if let Some(n) = rows {
        resp = resp.with_header("rows", n);
    }
    Ok(resp)
}

/// Watch the socket while a query runs. The client is expected to be
/// silent until the response arrives, so:
///
/// * `peek() == 0` (EOF) — the client hung up: cancel the governor so
///   the query stops at its next check, and count it.
/// * `peek() > 0` — the client pipelined another frame; it is alive, so
///   stop watching (the bytes stay queued for the session loop).
/// * timeout — still connected, still waiting: keep polling `done`.
///
/// The watcher is detached: once `done` is raised it terminates within
/// one `WATCH_POLL` on its own (it re-checks `done` before cancelling,
/// so a hang-up *after* the query finished is never miscounted). When
/// the fd cannot be cloned the query simply runs without disconnect
/// detection.
fn spawn_disconnect_watcher(stream: &TcpStream, gov: QueryGovernor, done: Arc<AtomicBool>) {
    let Ok(peek) = stream.try_clone() else {
        return;
    };
    let _ = peek.set_read_timeout(Some(WATCH_POLL));
    let _ = thread::Builder::new()
        .name("gsj-watch".into())
        .spawn(move || {
            let mut buf = [0u8; 1];
            while !done.load(Ordering::Acquire) {
                match peek.peek(&mut buf) {
                    Ok(0) => {
                        if !done.load(Ordering::Acquire) {
                            gov.cancel();
                            DISCONNECT_CANCEL.inc();
                        }
                        return;
                    }
                    Ok(_) => return,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        if !done.load(Ordering::Acquire) {
                            gov.cancel();
                            DISCONNECT_CANCEL.inc();
                        }
                        return;
                    }
                }
            }
        });
}

/// Snapshot of the server-side counters, for tests and the load bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    pub requests: u64,
    pub errors: u64,
    pub shed: u64,
    pub disconnect_cancels: u64,
    pub inflight: i64,
}

/// Read the process-global server counters. Cumulative across all
/// servers in the process (they share the metrics registry).
pub fn server_stats() -> ServerStats {
    ServerStats {
        requests: REQUESTS.value(),
        errors: ERRORS.value(),
        shed: SHED.value(),
        disconnect_cancels: DISCONNECT_CANCEL.value(),
        inflight: INFLIGHT.value(),
    }
}
