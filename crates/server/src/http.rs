//! A deliberately tiny embedded HTTP/1.0 endpoint for observability:
//! `GET /metrics` serves the process-global registry in Prometheus text
//! exposition format, `GET /healthz` serves a liveness body. One thread,
//! one request per connection, `Connection: close` — just enough for a
//! scraper, nothing more. gSQL traffic uses the GSJ/1 protocol, never
//! this port.

use gsj_common::{GsjError, Result};
use gsj_obs::{prometheus_text, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Handle to the metrics endpoint; dropping stops the thread.
pub struct MetricsHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The metrics endpoint. [`MetricsServer::start`] binds and serves on a
/// dedicated thread.
pub struct MetricsServer;

impl MetricsServer {
    pub fn start(addr: &str) -> Result<MetricsHandle> {
        let listener =
            TcpListener::bind(addr).map_err(|e| GsjError::Config(format!("bind {addr}: {e}")))?;
        let bound = listener
            .local_addr()
            .map_err(|e| GsjError::Internal(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| GsjError::Internal(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = thread::Builder::new()
            .name("gsj-metrics".into())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .map_err(|e| GsjError::Internal(format!("spawn metrics: {e}")))?;
        Ok(MetricsHandle {
            addr: bound,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Read one request head, dispatch on the path, write one response.
fn serve_one(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    // Read until the blank line ending the request head (we ignore any
    // body — GETs don't carry one).
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                    || head.len() > 8192
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text(Registry::global()),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Blocking `GET` against a local endpoint, returning the response body.
/// Shared by tests, the smoke binary and the load bench so they scrape
/// exactly like an external client would.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| GsjError::Internal(format!("connect {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    write!(stream, "GET {path} HTTP/1.0\r\nHost: gsj\r\n\r\n")
        .map_err(|e| GsjError::Internal(format!("send: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| GsjError::Internal(format!("read: {e}")))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| GsjError::Parse("malformed HTTP response (no blank line)".into()))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(GsjError::NotFound(format!("{path}: {status}")));
    }
    Ok(body.to_string())
}
