//! A blocking GSJ/1 client: one TCP connection, synchronous
//! request/response. The test suite, the smoke binary and the load
//! bench all speak to the server through this.

use crate::protocol::{
    read_frame, write_frame, FrameRead, Request, Response, Verb, DEFAULT_MAX_FRAME,
};
use gsj_common::{GsjError, Result};
use gsj_core::gsql::exec::Strategy;
use gsj_relational::Relation;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-query options, mapped onto request headers. `Default` sends a
/// bare query: no limits, the server's default strategy, results (not
/// a plan).
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Server-side deadline (`deadline-ms` header).
    pub deadline: Option<Duration>,
    /// Row-production budget (`row-budget` header).
    pub row_budget: Option<u64>,
    /// Estimated-memory budget in bytes (`mem-budget` header).
    pub mem_budget: Option<u64>,
    /// Execution strategy (`strategy` header).
    pub strategy: Option<Strategy>,
    /// Ask for the `EXPLAIN ANALYZE` trace instead of result rows.
    pub explain_analyze: bool,
}

/// A successful query reply.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Result cardinality (absent for `EXPLAIN ANALYZE` replies).
    pub rows: Option<u64>,
    /// Server-side execution time in microseconds.
    pub elapsed_us: u64,
    /// CSV result rows, or the analyze trace.
    pub body: String,
}

/// One blocking connection to a gSJ server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

fn io_err(what: &str, e: std::io::Error) -> GsjError {
    GsjError::Internal(format!("{what}: {e}"))
}

impl Client {
    /// Connect. `addr` is anything `ToSocketAddrs` accepts
    /// (e.g. `"127.0.0.1:7878"` or a `SocketAddr`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Override the frame cap (must match the server's to make use of it).
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// One request → one response, or a typed error reconstructed from
    /// the server's error frame.
    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode()).map_err(|e| io_err("send", e))?;
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Payload(p) => Response::parse(&p)?.into_result(),
            FrameRead::Eof => Err(GsjError::Internal(
                "server closed the connection before responding".into(),
            )),
            FrameRead::Oversized(n) => Err(GsjError::ResourceExhausted(format!(
                "response frame of {n} B exceeds the client's {} B limit",
                self.max_frame
            ))),
            FrameRead::Idle => unreachable!("blocking socket cannot be idle"),
        }
    }

    /// Execute gSQL with default options.
    pub fn query(&mut self, text: &str) -> Result<QueryReply> {
        self.query_with(text, &QueryOpts::default())
    }

    /// Execute gSQL with explicit limits / strategy / explain flag.
    pub fn query_with(&mut self, text: &str, opts: &QueryOpts) -> Result<QueryReply> {
        let mut req = Request::query(text);
        if let Some(d) = opts.deadline {
            req = req.with_header("deadline-ms", d.as_millis());
        }
        if let Some(r) = opts.row_budget {
            req = req.with_header("row-budget", r);
        }
        if let Some(m) = opts.mem_budget {
            req = req.with_header("mem-budget", m);
        }
        if let Some(s) = opts.strategy {
            let name = match s {
                Strategy::Baseline => "baseline",
                Strategy::Optimized => "optimized",
                Strategy::Heuristic => "heuristic",
            };
            req = req.with_header("strategy", name);
        }
        if opts.explain_analyze {
            req = req.with_header("explain", "analyze");
        }
        let resp = self.round_trip(&req)?;
        let rows = resp.header("rows").and_then(|v| v.parse().ok());
        let elapsed_us = resp
            .header("elapsed-us")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Ok(QueryReply {
            rows,
            elapsed_us,
            body: resp.body,
        })
    }

    /// Execute and materialize the CSV body back into a [`Relation`].
    pub fn query_relation(&mut self, text: &str, opts: &QueryOpts) -> Result<Relation> {
        let reply = self.query_with(text, opts)?;
        Relation::from_csv("result", &reply.body)
    }

    /// Liveness probe: the token must echo back.
    pub fn ping(&mut self) -> Result<()> {
        let resp = self.round_trip(&Request::new(Verb::Ping, "ping"))?;
        if resp.body == "ping" {
            Ok(())
        } else {
            Err(GsjError::Internal(format!(
                "ping echoed `{}`, want `ping`",
                resp.body
            )))
        }
    }

    /// Ask the server to shut down gracefully. The server acknowledges,
    /// then drains in-flight sessions and stops accepting.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.round_trip(&Request::new(Verb::Shutdown, ""))
            .map(|_| ())
    }
}
