//! `gsj-serve` — load one collection, serve gSQL over GSJ/1.
//!
//! ```text
//! gsj-serve --collection Movie --scale tiny --seed 42 \
//!           --listen 127.0.0.1:7878 --metrics 127.0.0.1:9187 \
//!           --sessions 4 --queue 8 --strategy optimized
//! ```
//!
//! Startup does the expensive work once — generate the collection,
//! train RExt, build the graph profile — then prints
//! `listening on <addr>` / `metrics on <addr>` (port 0 resolves to the
//! ephemeral port, which is how the smoke driver finds it) and parks
//! until a client sends `SHUTDOWN`.

use gsj_core::gsql::exec::Strategy;
use gsj_datagen::Scale;
use gsj_server::{load_collection, MetricsServer, Server, ServerConfig, DEFAULT_MAX_FRAME};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: gsj-serve [--collection NAME] [--scale tiny|small|medium|N] \
[--seed N] [--listen ADDR] [--metrics ADDR] [--sessions N] [--queue N] \
[--strategy baseline|optimized|heuristic] [--max-frame BYTES]";

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "medium" => Ok(Scale::medium()),
        n => n
            .parse::<usize>()
            .map(Scale)
            .map_err(|_| format!("bad scale `{n}`")),
    }
}

fn run() -> Result<(), String> {
    let mut collection = "Movie".to_string();
    let mut scale = Scale::tiny();
    let mut seed = 42u64;
    let mut listen = "127.0.0.1:0".to_string();
    let mut metrics_addr = "127.0.0.1:0".to_string();
    let mut cfg = ServerConfig {
        max_frame: DEFAULT_MAX_FRAME,
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--collection" => collection = val("--collection")?,
            "--scale" => scale = parse_scale(&val("--scale")?)?,
            "--seed" => {
                seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--listen" => listen = val("--listen")?,
            "--metrics" => metrics_addr = val("--metrics")?,
            "--sessions" => {
                cfg.sessions = val("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--queue" => {
                cfg.queue = val("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--strategy" => {
                cfg.default_strategy = val("--strategy")?
                    .parse::<Strategy>()
                    .map_err(|e| e.to_string())?
            }
            "--max-frame" => {
                cfg.max_frame = val("--max-frame")?
                    .parse()
                    .map_err(|e| format!("bad --max-frame: {e}"))?
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    cfg.addr = listen;

    eprintln!(
        "gsj-serve: building collection {collection} (scale {}, seed {seed})",
        scale.0
    );
    let (col, engine) = load_collection(&collection, scale, seed)
        .ok_or(format!("unknown collection `{collection}`"))?
        .map_err(|e| format!("load {collection}: {e}"))?;
    eprintln!(
        "gsj-serve: {} entities loaded, profile built, {} sessions",
        col.entity_relation().len(),
        cfg.sessions
    );

    let handle = Server::start(engine, cfg).map_err(|e| format!("start: {e}"))?;
    let metrics = MetricsServer::start(&metrics_addr).map_err(|e| format!("metrics: {e}"))?;
    // The smoke driver parses these two lines to find the ephemeral
    // ports — keep the format stable.
    println!("listening on {}", handle.addr());
    println!("metrics on {}", metrics.addr());
    let _ = std::io::stdout().flush();

    handle.wait();
    metrics.shutdown();
    eprintln!("gsj-serve: drained, bye");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gsj-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
