//! `server_smoke` — the CI smoke driver: spawn a real `gsj-serve`
//! subprocess on a fixture collection, then exercise the full serving
//! contract from outside the process:
//!
//! 1. liveness (`PING`),
//! 2. eight concurrent clients running the workload successfully,
//! 3. a governance rejection (zero deadline → `DeadlineExceeded`),
//! 4. an admission shed (saturate sessions + queue → `ResourceExhausted`),
//! 5. a `/metrics` scrape that parses as Prometheus text, plus `/healthz`,
//! 6. graceful shutdown (`SHUTDOWN` verb → child exits 0).
//!
//! Exits nonzero (panics) on the first violated expectation.

use gsj_common::GsjError;
use gsj_obs::parse_prometheus_text;
use gsj_server::{http_get, Client, QueryOpts};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const COLLECTION: &str = "Celebrity";
const SESSIONS: usize = 4;
const QUEUE: usize = 4;

/// Kill the child on any panic path so CI never leaks a server.
struct KillGuard(Child);
impl Drop for KillGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn serve_binary() -> std::path::PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("gsj-serve");
    assert!(
        p.exists(),
        "gsj-serve not found next to server_smoke at {p:?}"
    );
    p
}

fn main() {
    let child = Command::new(serve_binary())
        .args([
            "--collection",
            COLLECTION,
            "--scale",
            "tiny",
            "--seed",
            "42",
            "--listen",
            "127.0.0.1:0",
            "--metrics",
            "127.0.0.1:0",
            "--sessions",
            &SESSIONS.to_string(),
            "--queue",
            &QUEUE.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gsj-serve");
    let mut guard = KillGuard(child);

    // The server prints its ephemeral ports once the fixture is loaded.
    let stdout = guard.0.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut serve_addr: Option<SocketAddr> = None;
    let mut metrics_addr: Option<SocketAddr> = None;
    while serve_addr.is_none() || metrics_addr.is_none() {
        let line = lines
            .next()
            .expect("gsj-serve exited before announcing its ports")
            .expect("read child stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            serve_addr = Some(rest.trim().parse().expect("parse listen addr"));
        } else if let Some(rest) = line.strip_prefix("metrics on ") {
            metrics_addr = Some(rest.trim().parse().expect("parse metrics addr"));
        }
    }
    let serve_addr = serve_addr.unwrap();
    let metrics_addr = metrics_addr.unwrap();
    println!("server_smoke: serving on {serve_addr}, metrics on {metrics_addr}");

    // 1. Liveness.
    let mut probe = Client::connect(serve_addr).expect("connect");
    probe.ping().expect("ping");

    // 2. Eight concurrent clients, each running the full workload for
    //    the served collection. SESSIONS + QUEUE = 8, so all of them are
    //    admitted; every query must succeed.
    let col = gsj_datagen::collections::build(COLLECTION, gsj_datagen::Scale::tiny(), 42)
        .expect("known collection");
    let queries: Vec<String> = gsj_datagen::queries::workload(&col)
        .into_iter()
        .map(|q| q.text)
        .collect();
    drop(probe); // free the session before saturating
    std::thread::sleep(Duration::from_millis(300)); // let its worker observe the EOF
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(serve_addr).expect("connect");
                for (j, q) in queries.iter().enumerate() {
                    let reply = c
                        .query(q)
                        .unwrap_or_else(|e| panic!("client {i} query {j}: {e}"));
                    assert!(reply.rows.is_some(), "client {i} query {j}: no rows header");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("concurrent client panicked");
    }
    println!(
        "server_smoke: 8 concurrent clients x {} queries ok",
        queries.len()
    );

    // 3. Governance rejection: a zero deadline must come back as the
    //    typed DeadlineExceeded, not a generic failure.
    let mut c = Client::connect(serve_addr).expect("connect");
    let opts = QueryOpts {
        deadline: Some(Duration::ZERO),
        ..QueryOpts::default()
    };
    match c.query_with(&queries[0], &opts) {
        Err(e @ GsjError::DeadlineExceeded(_)) => {
            assert!(e.is_governance());
            println!("server_smoke: governance rejection ok ({e})");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    drop(c);
    std::thread::sleep(Duration::from_millis(200)); // let every worker go idle

    // 4. Admission shed: hold SESSIONS + QUEUE idle connections, then
    //    one more client must be refused with ResourceExhausted.
    let holders: Vec<Client> = (0..SESSIONS + QUEUE)
        .map(|_| Client::connect(serve_addr).expect("holder connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(300)); // let the accept loop admit them
    let mut extra = Client::connect(serve_addr).expect("extra connect");
    match extra.query("select 1") {
        Err(e @ GsjError::ResourceExhausted(_)) => {
            assert!(e.retryable());
            println!("server_smoke: admission shed ok ({e})");
        }
        other => panic!("expected ResourceExhausted shed, got {other:?}"),
    }
    drop(extra);
    drop(holders);
    std::thread::sleep(Duration::from_millis(200)); // workers notice the EOFs

    // 5. Metrics: must parse as Prometheus text and carry the serving
    //    counters; /healthz must answer.
    let text = http_get(metrics_addr, "/metrics").expect("GET /metrics");
    let snap = parse_prometheus_text(&text).expect("parse prometheus text");
    let requests = snap
        .get("gsj_server_requests_total", &[])
        .expect("gsj_server_requests_total sample");
    assert!(
        requests >= (8 * queries.len()) as f64,
        "requests={requests}"
    );
    let shed = snap
        .get("gsj_server_admission_shed_total", &[])
        .expect("shed sample");
    assert!(shed >= 1.0, "shed={shed}");
    assert_eq!(
        http_get(metrics_addr, "/healthz").expect("GET /healthz"),
        "ok\n"
    );
    assert!(http_get(metrics_addr, "/nope").is_err(), "404 must error");
    println!(
        "server_smoke: metrics scrape ok ({} samples)",
        snap.samples.len()
    );

    // 6. Graceful shutdown: acknowledge, drain, exit 0.
    let mut c = Client::connect(serve_addr).expect("connect for shutdown");
    c.shutdown_server().expect("SHUTDOWN");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match guard.0.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "gsj-serve exited with {status}");
                break;
            }
            None if Instant::now() > deadline => panic!("gsj-serve did not exit within 30s"),
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    println!("server_smoke: graceful shutdown ok");
    println!("server_smoke: PASS");
}
