//! Collection loading: build the shared immutable engine state once at
//! startup — train RExt, build the offline [`GraphProfile`] (which
//! includes the `f`/`h` pre-extractions and warms into the `g_L` link
//! cache on use), register the graph — and hand it to the server behind
//! an `Arc`.
//!
//! The recipe mirrors the integration suite's `engine_for` so a served
//! collection behaves exactly like one driven in-process by the tests.

use gsj_common::Result;
use gsj_core::config::{PathKind, RExtConfig};
use gsj_core::gsql::exec::GsqlEngine;
use gsj_core::profile::GraphProfile;
use gsj_core::rext::Rext;
use gsj_core::typed::TypedConfig;
use gsj_datagen::{Collection, Scale};
use std::sync::Arc;

/// The fast random-path RExt configuration used for serving fixtures:
/// no LM training, single-threaded, deterministic.
pub fn serving_rext_config() -> RExtConfig {
    RExtConfig {
        k: 3,
        h: 12,
        m: 4,
        path: PathKind::Random,
        threads: 1,
        seed: 7,
        ..RExtConfig::default()
    }
}

/// Build a ready-to-serve engine over one collection: RExt trained,
/// profile materialized, graph registered as `G`, hop bound `k = 2`.
pub fn engine_for_collection(col: &Collection) -> Result<GsqlEngine> {
    let rext = Arc::new(Rext::train(&col.graph, serving_rext_config())?);
    let mut engine = GsqlEngine::new(col.db.clone());
    engine.set_id_attr(&col.spec.rel_name, &col.spec.id_attr);
    engine.set_her_config(col.her_config());
    let typed_cfg = TypedConfig {
        default_keywords: col.spec.reference_keywords(),
        ..TypedConfig::default()
    };
    let profile = GraphProfile::build(
        &col.graph,
        &engine.db,
        vec![col.relation_spec()],
        &rext,
        &col.her_config(),
        Some(&typed_cfg),
    )?;
    engine.add_graph("G", col.graph.clone());
    engine.set_rext("G", rext);
    engine.set_profile("G", profile);
    engine.set_k(2);
    Ok(engine)
}

/// A collection paired with the shared engine built over it.
pub type LoadedCollection = (Collection, Arc<GsqlEngine>);

/// Generate a named collection at `scale` and build its engine.
/// Returns `None` for unknown collection names.
pub fn load_collection(name: &str, scale: Scale, seed: u64) -> Option<Result<LoadedCollection>> {
    let col = gsj_datagen::collections::build(name, scale, seed)?;
    Some(engine_for_collection(&col).map(|e| (col, Arc::new(e))))
}
