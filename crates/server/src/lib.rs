//! # gsj-server
//!
//! Concurrent gSQL serving over a wire protocol (DESIGN.md §14). The
//! collection — graph, offline profile, pre-extracted `f`/`h` relations
//! and the `g_L` link cache — is loaded **once** at startup and shared
//! immutably behind an `Arc<GsqlEngine>`; queries execute concurrently
//! across a session worker pool, each under its own
//! [`gsj_common::QueryGovernor`] built from request headers.
//!
//! The crate splits into:
//!
//! * [`protocol`] — the GSJ/1 length-prefixed framing and the
//!   request/response payload grammar.
//! * [`server`] — the accept thread, admission control (bounded queue,
//!   shed with `ResourceExhausted`), session workers, per-request
//!   governance, disconnect cancellation and graceful shutdown.
//! * [`client`] — a blocking client speaking the same protocol, used by
//!   the tests, the smoke binary and the load bench.
//! * [`http`] — a one-thread `GET /metrics` + `GET /healthz` endpoint
//!   exposing the process-global registry as Prometheus text.
//! * [`fixture`] — collection loading: the startup recipe that turns a
//!   generated collection into a ready-to-serve engine.
//!
//! Binaries: `gsj-serve` (the server) and `server_smoke` (the CI smoke
//! driver that exercises a served fixture end-to-end).

pub mod client;
pub mod fixture;
pub mod http;
pub mod protocol;
pub mod server;

pub use client::{Client, QueryOpts, QueryReply};
pub use fixture::{engine_for_collection, load_collection, serving_rext_config};
pub use http::{http_get, MetricsHandle, MetricsServer};
pub use protocol::{
    read_frame, read_frame_with, write_frame, FrameRead, Request, Response, Verb,
    DEFAULT_MAX_FRAME, MAGIC,
};
pub use server::{server_stats, Server, ServerConfig, ServerHandle, ServerStats};

/// The Send + Sync audit, enforced at compile time: everything the
/// server shares across session workers must be thread-safe. If any
/// interior type regresses to a non-`Sync` cell, this module stops
/// compiling — the audit cannot silently rot.
#[cfg(test)]
mod send_sync_audit {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_server_state_is_send_and_sync() {
        // The engine aggregate: catalog, graphs, RExt schemes, profiles
        // (whose `g_L` link cache is a parking_lot mutex), HER config.
        assert_send_sync::<gsj_core::gsql::exec::GsqlEngine>();
        assert_send_sync::<std::sync::Arc<gsj_core::gsql::exec::GsqlEngine>>();
        // Its pieces, individually, so a failure names the culprit.
        assert_send_sync::<gsj_core::profile::GraphProfile>();
        assert_send_sync::<gsj_core::rext::Rext>();
        assert_send_sync::<gsj_graph::LabeledGraph>();
        assert_send_sync::<gsj_relational::Database>();
        // Relations cross threads both as catalog entries and as the
        // row-cache-bearing results (`OnceLock` keeps them `Sync`).
        assert_send_sync::<gsj_relational::Relation>();
        // The governance handle is cloned into watcher threads.
        assert_send_sync::<gsj_common::QueryGovernor>();
        // And the server's own shared handles.
        assert_send_sync::<crate::server::ServerHandle>();
        assert_send_sync::<crate::server::ServerConfig>();
    }
}
