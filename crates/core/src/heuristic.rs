//! Heuristic joins (Section IV-B): approximate semantic joins for queries
//! that are *not* well-behaved, without calling HER or RExt online.
//!
//! Three steps for an enrichment join `Q ⋈_A G` with result `S = Q(D,G)`:
//! (1) schema-level matching picks the typed relation `gτ(G)` sharing the
//! most attributes with `R_Q` (keyword coverage counts double — the whole
//! point is to fetch `A`); (2) tuple-level ER matches `S` against
//! `gτ(G)`; (3) the join is emitted with the ER matching as join
//! condition. Link joins ride the same machinery: ER resolves each side
//! to vertices, connectivity does the rest.

use crate::typed::TypedRelation;
use gsj_common::{FxHashMap, GsjError, QueryGovernor, Result, Value};
use gsj_graph::traversal::within_k_hops_governed;
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::relation_er::{match_relations, ErConfig};
use gsj_relational::{Relation, Schema};

/// Do two attribute names refer to the same concept? Exact base-name
/// equality, or one containing the other (`pname` vs `name`) — the
/// schema-level matching of [20], [21] simplified to string containment.
fn attrs_alike(a: &str, b: &str) -> bool {
    let (a, b) = (
        Schema::base_name(a).to_lowercase(),
        Schema::base_name(b).to_lowercase(),
    );
    a == b || (a.len() >= 3 && b.contains(&a)) || (b.len() >= 3 && a.contains(&b))
}

/// Schema-level matching score: shared (alike) attribute names plus
/// (doubled) coverage of the requested keywords.
fn schema_affinity(s: &Schema, typed: &TypedRelation, keywords: &[String]) -> usize {
    let shared = typed
        .relation
        .schema()
        .attrs()
        .iter()
        .filter(|a| a.as_str() != "vid")
        .filter(|a| s.attrs().iter().any(|sa| attrs_alike(sa, a)))
        .count();
    let kw_cover = keywords
        .iter()
        .filter(|k| typed.relation.schema().contains(k))
        .count();
    shared + 2 * kw_cover
}

/// Pick the typed relation most relevant to `s` ("we mark a relation
/// gτ(G) as relevant to Q if Rτ and RQ share the most common attributes").
pub fn pick_typed<'a>(
    s: &Schema,
    typed: &'a FxHashMap<String, TypedRelation>,
    keywords: &[String],
) -> Result<&'a TypedRelation> {
    let mut entries: Vec<(&String, &TypedRelation)> = typed.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries
        .into_iter()
        .map(|(_, t)| (schema_affinity(s, t, keywords), t))
        .max_by_key(|(score, _)| *score)
        .filter(|(score, _)| *score > 0)
        .map(|(_, t)| t)
        .ok_or_else(|| {
            GsjError::Unsupported(
                "heuristic join: no typed relation is relevant to the query schema".into(),
            )
        })
}

/// Heuristic enrichment join: extend each row of `s` with the requested
/// keyword attributes of its ER-matched `gτ(G)` row. Rows with no ER match
/// are dropped (as unmatched tuples are in exact enrichment joins).
pub fn heuristic_enrichment(
    s: &Relation,
    id_attr: Option<&str>,
    keywords: &[String],
    typed: &FxHashMap<String, TypedRelation>,
    er_cfg: &ErConfig,
) -> Result<Relation> {
    let g_tau = pick_typed(s.schema(), typed, keywords)?;
    let pairs = match_relations(s, &g_tau.relation, id_attr, Some("vid"), er_cfg)?;
    // Output schema: S's attrs + vid + the requested keywords that gτ has.
    let mut attrs = s.schema().attrs().to_vec();
    attrs.push("vid".into());
    let kept: Vec<&String> = keywords
        .iter()
        .filter(|k| g_tau.relation.schema().contains(k))
        .collect();
    attrs.extend(kept.iter().map(|k| (*k).clone()));
    let schema = Schema::new(format!("{}_hj", s.schema().name()), attrs)?;
    let vid_pos = g_tau.relation.schema().require("vid")?;
    let kept_pos: Vec<usize> = kept
        .iter()
        .map(|k| g_tau.relation.schema().require(k))
        .collect::<Result<_>>()?;
    let mut out = Relation::empty(schema);
    for (i, j) in pairs {
        let mut row = s.tuples()[i].values().to_vec();
        let t = &g_tau.relation.tuples()[j];
        row.push(t.get(vid_pos).clone());
        row.extend(kept_pos.iter().map(|&p| t.get(p).clone()));
        out.push_values(row)?;
    }
    Ok(out)
}

/// Heuristic link join: resolve each side's rows to vertices through ER
/// against the most relevant typed relation, then test k-hop
/// connectivity. Schemas must have disjoint attribute names. The pairwise
/// BFS loop observes the governor (strided).
#[allow(clippy::too_many_arguments)]
pub fn heuristic_link(
    s1: &Relation,
    id1: Option<&str>,
    s2: &Relation,
    id2: Option<&str>,
    typed: &FxHashMap<String, TypedRelation>,
    g: &LabeledGraph,
    k: usize,
    er_cfg: &ErConfig,
    gov: &QueryGovernor,
) -> Result<Relation> {
    let resolve = |s: &Relation, id: Option<&str>| -> Result<Vec<Option<VertexId>>> {
        let g_tau = pick_typed(s.schema(), typed, &[])?;
        let vid_pos = g_tau.relation.schema().require("vid")?;
        let pairs = match_relations(s, &g_tau.relation, id, Some("vid"), er_cfg)?;
        let mut vids = vec![None; s.len()];
        for (i, j) in pairs {
            let v = g_tau.relation.tuples()[j]
                .get(vid_pos)
                .as_int()
                .unwrap_or(-1);
            if v >= 0 {
                vids[i] = Some(VertexId(v as u32));
            }
        }
        Ok(vids)
    };
    let v1 = resolve(s1, id1)?;
    let v2 = resolve(s2, id2)?;
    let mut attrs = s1.schema().attrs().to_vec();
    attrs.extend(s2.schema().attrs().iter().cloned());
    let schema = Schema::new(
        format!("{}_hlj_{}", s1.schema().name(), s2.schema().name()),
        attrs,
    )?;
    let mut out = Relation::empty(schema);
    let mut memo: FxHashMap<(VertexId, VertexId), bool> = FxHashMap::default();
    for (t1, ov1) in s1.tuples().iter().zip(&v1) {
        let Some(a) = ov1 else { continue };
        for (t2, ov2) in s2.tuples().iter().zip(&v2) {
            let Some(b) = ov2 else { continue };
            gov.check_coarse("join.link")?;
            let key = if a <= b { (*a, *b) } else { (*b, *a) };
            let connected = match memo.get(&key) {
                Some(&c) => c,
                None => {
                    let c = within_k_hops_governed(g, *a, *b, k, gov)?;
                    memo.insert(key, c);
                    c
                }
            };
            if connected {
                out.push(t1.concat(t2))?;
            }
        }
    }
    gov.charge_rows(out.len() as u64);
    Ok(out)
}

/// Helper for building typed stores in tests and the engine: index typed
/// relations by type name.
pub fn typed_store(relations: Vec<TypedRelation>) -> FxHashMap<String, TypedRelation> {
    relations.into_iter().map(|t| (t.ty.clone(), t)).collect()
}

/// Read a `vid` cell back into a [`VertexId`].
pub fn vid_of(v: &Value) -> Option<VertexId> {
    v.as_int().and_then(|i| u32::try_from(i).ok()).map(VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::Discovery;
    use gsj_relational::Schema;

    fn mk_typed(ty: &str, attrs: &[&str], rows: Vec<Vec<Value>>) -> TypedRelation {
        let mut rel = Relation::empty(Schema::of(&format!("g_{ty}"), attrs));
        for r in rows {
            rel.push_values(r).unwrap();
        }
        TypedRelation {
            ty: ty.into(),
            discovery: Discovery {
                clusters: vec![],
                schema: rel.schema().clone(),
                refined: vec![],
                paths: Default::default(),
                keyword_embs: vec![],
                total_paths: 0,
                word_dim: 0,
            },
            relation: rel,
        }
    }

    fn store() -> FxHashMap<String, TypedRelation> {
        typed_store(vec![
            mk_typed(
                "product",
                &["vid", "name", "company"],
                vec![
                    vec![
                        Value::Int(4),
                        Value::str("RainForest"),
                        Value::str("company2"),
                    ],
                    vec![Value::Int(2), Value::str("Beta"), Value::str("company1")],
                ],
            ),
            mk_typed(
                "person",
                &["vid", "fullname"],
                vec![vec![Value::Int(9), Value::str("Bob Smith")]],
            ),
        ])
    }

    #[test]
    fn picks_schema_with_most_overlap() {
        let s = Schema::of("q", &["pid", "name", "risk"]);
        let typed = store();
        let t = pick_typed(&s, &typed, &["company".to_string()]).unwrap();
        assert_eq!(t.ty, "product");
    }

    #[test]
    fn heuristic_enrichment_attaches_keyword_attrs() {
        // Example 11: answer tuples of Q' linked with gproduct rows by ER.
        let mut s = Relation::empty(Schema::of("q", &["pid", "name", "risk"]));
        s.push_values(vec![
            Value::str("fd4"),
            Value::str("RainForest"),
            Value::str("medium"),
        ])
        .unwrap();
        let r = heuristic_enrichment(
            &s,
            Some("pid"),
            &["company".to_string()],
            &store(),
            &ErConfig::default(),
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        let pos = r.schema().require("company").unwrap();
        assert_eq!(r.tuples()[0].get(pos), &Value::str("company2"));
    }

    #[test]
    fn unmatched_rows_are_dropped() {
        let mut s = Relation::empty(Schema::of("q", &["pid", "name", "risk"]));
        s.push_values(vec![
            Value::str("x"),
            Value::str("Unknown Entity Here"),
            Value::str("low"),
        ])
        .unwrap();
        let r = heuristic_enrichment(
            &s,
            Some("pid"),
            &["company".to_string()],
            &store(),
            &ErConfig::default(),
        )
        .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn empty_typed_store_is_an_error() {
        let s = Relation::empty(Schema::of("q", &["pid"]));
        let empty = FxHashMap::default();
        assert!(matches!(
            heuristic_enrichment(&s, None, &[], &empty, &ErConfig::default()),
            Err(GsjError::Unsupported(_))
        ));
    }

    #[test]
    fn heuristic_link_uses_er_plus_connectivity() {
        // Graph: vid4 (product RainForest) within 1 hop of vid2 (Beta).
        let mut g = LabeledGraph::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(g.add_vertex(&format!("v{i}")));
        }
        g.add_edge(ids[4], "rel", ids[2]);
        let mut s1 = Relation::empty(Schema::of("a", &["a.pid", "a.name"]));
        s1.push_values(vec![Value::str("x"), Value::str("RainForest")])
            .unwrap();
        let mut s2 = Relation::empty(Schema::of("b", &["b.pid", "b.name"]));
        s2.push_values(vec![Value::str("y"), Value::str("Beta")])
            .unwrap();
        let gov = QueryGovernor::unlimited();
        let r = heuristic_link(
            &s1,
            Some("a.pid"),
            &s2,
            Some("b.pid"),
            &store(),
            &g,
            1,
            &ErConfig::default(),
            &gov,
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        // k = 0 disconnects them.
        let r0 = heuristic_link(
            &s1,
            Some("a.pid"),
            &s2,
            Some("b.pid"),
            &store(),
            &g,
            0,
            &ErConfig::default(),
            &gov,
        )
        .unwrap();
        assert!(r0.is_empty());
    }
}
