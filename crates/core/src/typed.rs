//! Extraction without reference tuples (Section III-A, "Extraction without
//! reference tuples"): for each vertex *type* `τ`, derive a relation schema
//! `Rτ` and instance `gτ(G)` from the graph alone.
//!
//! These typed relations are the offline substrate of *heuristic joins*
//! (Section IV-B), whose assumption is "that graph G is typed, i.e., the
//! types of its entities can be determined by their labels". Here a
//! vertex's type is the label of its neighbor over a typing edge (`type`
//! or `is_a` by default — the typing edges of Fig. 1).

use crate::discover::Discovery;
use crate::rext::Rext;
use gsj_common::{FxHashMap, Result, Value};
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::MatchRelation;
use gsj_relational::Relation;

/// Typed-extraction parameters.
#[derive(Debug, Clone)]
pub struct TypedConfig {
    /// Edge labels that denote typing.
    pub type_edges: Vec<String>,
    /// Keywords `Aτ` per type (the pre-determined reference keywords of
    /// Section IV); types not present fall back to `default_keywords`.
    pub keywords: FxHashMap<String, Vec<String>>,
    /// Fallback keyword list.
    pub default_keywords: Vec<String>,
    /// Types with fewer entity vertices are skipped.
    pub min_entities: usize,
}

impl Default for TypedConfig {
    fn default() -> Self {
        TypedConfig {
            type_edges: vec!["type".into(), "is_a".into()],
            keywords: FxHashMap::default(),
            default_keywords: vec!["name".into(), "category".into()],
            min_entities: 2,
        }
    }
}

/// One extracted typed relation.
#[derive(Debug, Clone)]
pub struct TypedRelation {
    /// The type `τ`.
    pub ty: String,
    /// The discovery behind `Rτ` (kept for re-use).
    pub discovery: Discovery,
    /// The instance `gτ(G)`, schema `Rτ(vid, A...)`.
    pub relation: Relation,
}

/// Group entity vertices by their type label.
pub fn vertices_by_type(
    g: &LabeledGraph,
    type_edges: &[String],
) -> FxHashMap<String, Vec<VertexId>> {
    let type_syms: Vec<_> = type_edges
        .iter()
        .filter_map(|l| g.symbols().get(l))
        .collect();
    let mut out: FxHashMap<String, Vec<VertexId>> = FxHashMap::default();
    for v in g.vertices() {
        for e in g.out_edges(v) {
            if type_syms.contains(&e.label) {
                let ty = g.vertex_label_str(e.to).to_string();
                out.entry(ty).or_default().push(v);
                break;
            }
        }
    }
    out
}

/// Run typed extraction for every type with enough entities.
///
/// Per the paper, this is the same pipeline as reference-tuple extraction
/// except (1) only the entity vertices of one type are considered at a
/// time and (2) the ranking function's second term is empty.
pub fn extract_typed(
    g: &LabeledGraph,
    rext: &Rext,
    cfg: &TypedConfig,
) -> Result<FxHashMap<String, TypedRelation>> {
    let mut out = FxHashMap::default();
    let mut grouped: Vec<(String, Vec<VertexId>)> =
        vertices_by_type(g, &cfg.type_edges).into_iter().collect();
    grouped.sort_by(|a, b| a.0.cmp(&b.0));
    for (ty, vertices) in grouped {
        if vertices.len() < cfg.min_entities {
            continue;
        }
        // Pseudo match relation: each entity vertex "matches itself".
        let mut matches = MatchRelation::new();
        for &v in &vertices {
            matches.push(Value::Int(v.0 as i64), v);
        }
        let keywords = cfg
            .keywords
            .get(&ty)
            .unwrap_or(&cfg.default_keywords)
            .clone();
        let schema_name = format!("g_{}", gsj_her::normalize::canonical(&ty).replace(' ', "_"));
        let discovery = rext.discover(g, &matches, None, &keywords, &schema_name)?;
        let relation = rext.extract(g, &matches, &discovery)?;
        out.insert(
            ty.clone(),
            TypedRelation {
                ty,
                discovery,
                relation,
            },
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PathKind, RExtConfig};

    fn typed_graph() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let product_ty = g.add_vertex("Product");
        let person_ty = g.add_vertex("Person");
        for i in 0..3 {
            let p = g.add_vertex(&format!("pid{i}"));
            g.add_edge(p, "type", product_ty);
            let n = g.add_vertex(&format!("Fund {i}"));
            g.add_edge(p, "name", n);
        }
        let solo = g.add_vertex("cid0");
        g.add_edge(solo, "is_a", person_ty);
        g
    }

    #[test]
    fn vertices_grouped_by_type_label() {
        let g = typed_graph();
        let groups = vertices_by_type(&g, &["type".into(), "is_a".into()]);
        assert_eq!(groups["Product"].len(), 3);
        assert_eq!(groups["Person"].len(), 1);
    }

    #[test]
    fn extraction_produces_relation_per_sufficient_type() {
        let g = typed_graph();
        let rext = Rext::train(
            &g,
            RExtConfig {
                k: 2,
                h: 4,
                m: 1,
                path: PathKind::Random,
                threads: 1,
                ..RExtConfig::default()
            },
        )
        .unwrap();
        let typed = extract_typed(&g, &rext, &TypedConfig::default()).unwrap();
        // Person has 1 vertex < min_entities 2 → skipped.
        assert!(typed.contains_key("Product"));
        assert!(!typed.contains_key("Person"));
        let tr = &typed["Product"];
        assert_eq!(tr.relation.len(), 3);
        assert_eq!(tr.relation.schema().attrs()[0], "vid");
        assert!(tr.relation.schema().name().starts_with("g_product"));
    }

    #[test]
    fn untyped_graph_yields_nothing() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("x");
        let b = g.add_vertex("y");
        g.add_edge(a, "rel", b);
        let rext = Rext::train(
            &g,
            RExtConfig {
                path: PathKind::Random,
                threads: 1,
                ..RExtConfig::default()
            },
        )
        .unwrap();
        let typed = extract_typed(&g, &rext, &TypedConfig::default()).unwrap();
        assert!(typed.is_empty());
    }
}
