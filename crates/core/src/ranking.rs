//! The pattern/attribute ranking function (Section III-A step 4).
//!
//! `r(W_i) = |W_i|/|P|
//!          − max_{φ ∈ [1,kR]} mean cos(x_{L(ρ.vl)}, x_{t_j.Aφ})
//!          + max_{ε ∈ [1,m]}  mean cos(x_{L(ρ.vl)}, x_{Aε})`
//!
//! Higher scores go to pattern clusters that (1) match many paths (fewer
//! nulls in the extracted column), (2) do *not* duplicate information
//! already present in `S`'s attributes, and (3) are semantically close to
//! one of the user's keywords. The keyword maximizing the third term names
//! the attribute.

use gsj_common::FxHashMap;
use gsj_graph::VertexId;
use gsj_nn::vector::cosine;

/// One matching-path record of `W_i`: the start (entity) vertex and the
/// embedding of the end vertex's label.
#[derive(Debug, Clone)]
pub struct WEntry {
    /// The matched entity vertex `v_j` the path starts from.
    pub start: VertexId,
    /// Word embedding of the end label `L(ρ.v_l)`.
    pub end_emb: Vec<f32>,
}

/// Per-vertex embeddings of the matched tuple's attribute values
/// (`None` for NULL cells and the id column). Index φ ranges over the
/// arity `kR` of `S`.
pub type TupleAttrEmbs = FxHashMap<VertexId, Vec<Option<Vec<f32>>>>;

/// The decomposed ranking of one cluster.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// First term `|W_i|/|P|`.
    pub coverage: f64,
    /// Second term: max over existing attributes of the mean similarity.
    pub overlap: f64,
    /// Mean similarity per keyword (third-term candidates).
    pub kw_means: Vec<f64>,
    /// The combined score `coverage − overlap + max(kw_means)`.
    pub score: f64,
    /// Argmax keyword of the third term.
    pub best_keyword: Option<usize>,
}

impl RankResult {
    /// The ranking function evaluated for one *specific* keyword:
    /// `coverage − overlap + kw_means[k]`. Attribute assignment compares
    /// clusters per keyword with this.
    pub fn score_for(&self, k: usize) -> f64 {
        self.coverage - self.overlap + self.kw_means[k]
    }
}

/// Score one cluster's match set and return `(r(W_i), argmax keyword)`.
///
/// `total_paths` is `|P|`; `keywords` are `(name, embedding)` pairs; an
/// empty `tuple_attr_embs` (extraction without reference tuples,
/// Section III-A) zeroes the second term, and empty `keywords` zero the
/// third.
pub fn rank_cluster(
    entries: &[WEntry],
    total_paths: usize,
    tuple_attr_embs: &TupleAttrEmbs,
    keywords: &[(String, Vec<f32>)],
) -> (f64, Option<usize>) {
    let r = rank_cluster_full(entries, total_paths, tuple_attr_embs, keywords);
    (r.score, r.best_keyword)
}

/// [`rank_cluster`] returning the decomposed [`RankResult`].
pub fn rank_cluster_full(
    entries: &[WEntry],
    total_paths: usize,
    tuple_attr_embs: &TupleAttrEmbs,
    keywords: &[(String, Vec<f32>)],
) -> RankResult {
    if entries.is_empty() || total_paths == 0 {
        return RankResult {
            coverage: 0.0,
            overlap: 0.0,
            kw_means: vec![f64::NEG_INFINITY; keywords.len()],
            score: f64::NEG_INFINITY,
            best_keyword: None,
        };
    }
    let coverage = entries.len() as f64 / total_paths as f64;

    // Second term: similarity to existing attributes of S (max over φ).
    let arity = tuple_attr_embs.values().map(|v| v.len()).max().unwrap_or(0);
    let mut overlap = 0.0f64;
    for phi in 0..arity {
        let mut sum = 0.0f64;
        for e in entries {
            if let Some(Some(attr_emb)) = tuple_attr_embs.get(&e.start).map(|v| &v[phi]) {
                sum += cosine(&e.end_emb, attr_emb) as f64;
            }
        }
        overlap = overlap.max(sum / entries.len() as f64);
    }

    // Third term: similarity to user keywords (max over ε, with argmax).
    let mut kw_means = Vec::with_capacity(keywords.len());
    let mut interest = 0.0f64;
    let mut best_kw = None;
    for (eps, (_, kw_emb)) in keywords.iter().enumerate() {
        let sum: f64 = entries
            .iter()
            .map(|e| cosine(&e.end_emb, kw_emb) as f64)
            .sum();
        let mean = sum / entries.len() as f64;
        kw_means.push(mean);
        if best_kw.is_none() || mean > interest {
            interest = mean;
            best_kw = Some(eps);
        }
    }

    RankResult {
        coverage,
        overlap,
        kw_means,
        score: coverage - overlap + interest,
        best_keyword: best_kw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_nn::{HashEmbedder, WordEmbedder};

    fn entry(start: u32, label: &str, emb: &HashEmbedder) -> WEntry {
        WEntry {
            start: VertexId(start),
            end_emb: emb.embed(label),
        }
    }

    #[test]
    fn keyword_similarity_raises_score_and_names_attribute() {
        let emb = HashEmbedder::new(64);
        let entries = vec![entry(0, "UK", &emb), entry(1, "US", &emb)];
        let keywords = vec![
            ("company".to_string(), emb.embed("company")),
            ("loc".to_string(), emb.embed("UK US location")),
        ];
        let (score, kw) = rank_cluster(&entries, 10, &FxHashMap::default(), &keywords);
        assert!(score.is_finite());
        assert_eq!(kw, Some(1), "the loc-ish keyword must win");
    }

    #[test]
    fn overlap_with_existing_attributes_lowers_score() {
        let emb = HashEmbedder::new(64);
        // End labels identical to an existing attribute value → penalized.
        let entries = vec![entry(0, "Funds", &emb)];
        let mut dup: TupleAttrEmbs = FxHashMap::default();
        dup.insert(VertexId(0), vec![Some(emb.embed("Funds"))]);
        let fresh: TupleAttrEmbs = FxHashMap::default();
        let kws = vec![("type".to_string(), emb.embed("type"))];
        let (with_dup, _) = rank_cluster(&entries, 10, &dup, &kws);
        let (without, _) = rank_cluster(&entries, 10, &fresh, &kws);
        assert!(
            with_dup < without,
            "duplicate info must rank lower: {with_dup} vs {without}"
        );
    }

    #[test]
    fn coverage_term_prefers_bigger_clusters() {
        let emb = HashEmbedder::new(64);
        let small = vec![entry(0, "x", &emb)];
        let big: Vec<WEntry> = (0..5).map(|i| entry(i, "x", &emb)).collect();
        let none: TupleAttrEmbs = FxHashMap::default();
        let (s_small, _) = rank_cluster(&small, 10, &none, &[]);
        let (s_big, _) = rank_cluster(&big, 10, &none, &[]);
        assert!(s_big > s_small);
    }

    #[test]
    fn empty_cluster_is_unrankable() {
        let (score, kw) = rank_cluster(&[], 10, &FxHashMap::default(), &[]);
        assert_eq!(score, f64::NEG_INFINITY);
        assert_eq!(kw, None);
    }

    #[test]
    fn no_keywords_means_no_attribute_name() {
        let emb = HashEmbedder::new(16);
        let entries = vec![entry(0, "x", &emb)];
        let (_, kw) = rank_cluster(&entries, 5, &FxHashMap::default(), &[]);
        assert_eq!(kw, None);
    }
}
