//! RExt configuration and the ablation variant switches.

use gsj_common::{GsjError, Result};
use gsj_nn::LmConfig;

/// Which word-embedding model `Me` to use (Exp-2(b) ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedKind {
    /// The GloVe stand-in (default RExt). 256 dimensions: the hash
    /// embedder needs more width than real GloVe for the same noise floor
    /// (random-sign features give ~1/√d cosine noise between unrelated
    /// labels; see DESIGN.md §2).
    Hash100,
    /// 50-dimensional variant → `RExtShortEmb`.
    Hash50,
    /// Self-attention encoder → `RExtBertEmb`.
    Attn,
}

/// Which sequence-embedding model `Mρ` to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqKind {
    /// LSTM with a 100-wide hidden layer (default RExt).
    Lstm100,
    /// 50-wide LSTM → `RExtShortSeq`.
    Lstm50,
    /// Self-attention encoder → `RExtBertSeq`.
    Attn,
}

/// How paths are selected from matching vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Guided by the language model's next-edge-label distribution
    /// (default RExt).
    LmGuided,
    /// Uniformly random walks → the `RndPath` baseline.
    Random,
}

/// All knobs of the extraction scheme. Paper defaults: `H = 30`, `m = 3`,
/// `|A| = 4`, `k = 3` (Exp-2(a)).
#[derive(Debug, Clone)]
pub struct RExtConfig {
    /// Path length bound `k`.
    pub k: usize,
    /// Number of K-means clusters `H`.
    pub h: usize,
    /// Number of attributes `m` to select for `R_G`.
    pub m: usize,
    /// K-means iteration cap ("limited iterations").
    pub kmeans_iters: usize,
    /// Word-embedding model choice.
    pub embed: EmbedKind,
    /// Sequence-embedding model choice.
    pub seq: SeqKind,
    /// Path-selection strategy.
    pub path: PathKind,
    /// Language-model training hyper-parameters.
    pub lm: LmConfig,
    /// Worker threads for parallel KMC / ranking (`0` = auto).
    pub threads: usize,
    /// Edge labels that type entities (used by the same-type-end cluster
    /// filter and by typed extraction).
    pub type_edges: Vec<String>,
    /// Model the paper's user-inspection step: reject pattern clusters
    /// whose paths mostly end at entities of the *same type* as their
    /// start vertex — those are links between peers, not properties.
    pub filter_same_type_ends: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for RExtConfig {
    fn default() -> Self {
        RExtConfig {
            k: 3,
            h: 30,
            m: 3,
            kmeans_iters: 20,
            embed: EmbedKind::Hash100,
            seq: SeqKind::Lstm100,
            path: PathKind::Random,
            lm: LmConfig::default(),
            threads: 0,
            type_edges: vec!["type".into(), "is_a".into()],
            filter_same_type_ends: true,
            seed: 0x5e_a1,
        }
    }
}

impl RExtConfig {
    /// The full default pipeline (LM-guided paths).
    pub fn standard() -> Self {
        RExtConfig {
            path: PathKind::LmGuided,
            ..RExtConfig::default()
        }
    }

    /// `RExtBertEmb` baseline.
    pub fn bert_emb() -> Self {
        RExtConfig {
            embed: EmbedKind::Attn,
            ..Self::standard()
        }
    }

    /// `RExtShortEmb` baseline.
    pub fn short_emb() -> Self {
        RExtConfig {
            embed: EmbedKind::Hash50,
            ..Self::standard()
        }
    }

    /// `RExtBertSeq` baseline.
    pub fn bert_seq() -> Self {
        RExtConfig {
            seq: SeqKind::Attn,
            ..Self::standard()
        }
    }

    /// `RExtShortSeq` baseline.
    pub fn short_seq() -> Self {
        RExtConfig {
            seq: SeqKind::Lstm50,
            lm: LmConfig::short(),
            ..Self::standard()
        }
    }

    /// `RndPath` baseline: random paths, no ML guidance.
    pub fn rnd_path() -> Self {
        RExtConfig {
            path: PathKind::Random,
            ..RExtConfig::default()
        }
    }

    /// Sanity-check parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(GsjError::Config("path bound k must be ≥ 1".into()));
        }
        if self.h == 0 {
            return Err(GsjError::Config("cluster count H must be ≥ 1".into()));
        }
        if self.m == 0 {
            return Err(GsjError::Config("attribute count m must be ≥ 1".into()));
        }
        // The Lstm50 sequence model requires a matching LM hidden width;
        // catch silent misconfiguration early.
        if self.seq == SeqKind::Lstm50 && self.lm.hidden != 50 {
            return Err(GsjError::Config(
                "SeqKind::Lstm50 requires lm.hidden = 50 (use RExtConfig::short_seq())".into(),
            ));
        }
        Ok(())
    }

    /// The human-readable variant name used in experiment output.
    pub fn variant_name(&self) -> &'static str {
        match (self.path, self.embed, self.seq) {
            (PathKind::Random, EmbedKind::Hash100, SeqKind::Lstm100) => "RndPath",
            (_, EmbedKind::Attn, _) => "RExtBertEmb",
            (_, EmbedKind::Hash50, _) => "RExtShortEmb",
            (_, _, SeqKind::Attn) => "RExtBertSeq",
            (_, _, SeqKind::Lstm50) => "RExtShortSeq",
            _ => "RExt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RExtConfig::standard();
        assert_eq!((c.k, c.h, c.m), (3, 30, 3));
        assert_eq!(c.variant_name(), "RExt");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn variant_names() {
        assert_eq!(RExtConfig::bert_emb().variant_name(), "RExtBertEmb");
        assert_eq!(RExtConfig::short_emb().variant_name(), "RExtShortEmb");
        assert_eq!(RExtConfig::bert_seq().variant_name(), "RExtBertSeq");
        assert_eq!(RExtConfig::short_seq().variant_name(), "RExtShortSeq");
        assert_eq!(RExtConfig::rnd_path().variant_name(), "RndPath");
    }

    #[test]
    fn validation_catches_degenerate_params() {
        let mut c = RExtConfig::standard();
        c.k = 0;
        assert!(c.validate().is_err());
        let mut c = RExtConfig::standard();
        c.h = 0;
        assert!(c.validate().is_err());
        let mut c = RExtConfig::standard();
        c.seq = SeqKind::Lstm50; // without shrinking lm.hidden
        assert!(c.validate().is_err());
        assert!(RExtConfig::short_seq().validate().is_ok());
    }
}
