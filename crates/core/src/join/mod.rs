//! Semantic joins (Section II-B): enrichment joins `S ⋈_A G` and link
//! joins `S1 ⋈_G S2`, in both the conceptual (online HER + RExt) and the
//! precomputed (static/dynamic) forms of Section IV-A.

pub mod enrichment;
pub mod link;

pub use enrichment::{enrichment_join, enrichment_join_precomputed};
pub use link::{connectivity_relation, link_join, link_join_with_matches};
