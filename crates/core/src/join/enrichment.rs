//! Enrichment joins `S ⋈_A G`.
//!
//! A tuple `t` is in `S ⋈_A G` iff `t[attr(R)] ∈ S`, `t[vid]` is a vertex
//! matched to it by HER, and each `t[A_i]` is the property extracted by
//! RExt — i.e. `S ⋈ f(S,G) ⋈ h(S,G)` via ordinary joins (Section II-B).

use crate::incext::Extraction;
use crate::rext::Rext;
use gsj_common::{QueryGovernor, Result};
use gsj_graph::LabeledGraph;
use gsj_her::{her_match, HerConfig, MatchRelation};
use gsj_relational::exec::natural_join_governed;
use gsj_relational::{Column, Relation, Schema};

/// The conceptual-level enrichment join: calls HER and RExt online
/// (Section IV-A "Baseline"). Returns the joined relation together with
/// the extraction state (so callers can keep it for reuse/maintenance).
///
/// The governor is consulted between the HER / discovery / extraction
/// phases, so a deadline or cancel set mid-join stops before the next
/// expensive phase rather than after the whole join.
pub fn enrichment_join(
    s: &Relation,
    id_attr: &str,
    g: &LabeledGraph,
    keywords: &[String],
    rext: &Rext,
    her_cfg: &HerConfig,
    gov: &QueryGovernor,
) -> Result<(Relation, Extraction)> {
    let mut span = gsj_obs::span("join.enrichment");
    gsj_faults::fault_point("join.enrichment", gsj_faults::FaultClass::Critical)?;
    let mut cfg = her_cfg.clone();
    cfg.id_attr = id_attr.to_string();
    gov.check("her.match")?;
    let matches = her_match(g, s, &cfg)?;
    let schema_name = format!("h_{}", s.schema().name());
    gov.check("rext.discover")?;
    let discovery = rext.discover(g, &matches, Some((s, id_attr)), keywords, &schema_name)?;
    gov.check("rext.extract")?;
    let dg = rext.extract(g, &matches, &discovery)?;
    let joined = join_three_way(
        s,
        id_attr,
        &matches,
        &keyword_view(&dg, keywords)?,
        Some(gov),
    )?;
    gov.charge_rows(joined.len() as u64);
    span.field("rows_in", s.len())
        .field("rows_out", joined.len());
    Ok((
        joined,
        Extraction {
            discovery,
            matches,
            dg,
        },
    ))
}

/// The static/dynamic fast path: `S ⋈ f(D,G) ⋈ h(D,G)` over materialized
/// relations, no HER/RExt at query time (Section IV-A). `keep_attrs`
/// optionally normalizes `h` to the requested keywords (plus `vid`).
pub fn enrichment_join_precomputed(
    s: &Relation,
    id_attr: &str,
    matches: &MatchRelation,
    dg: &Relation,
    keep_attrs: Option<&[String]>,
) -> Result<Relation> {
    let dg_view = match keep_attrs {
        None => dg.clone(),
        Some(attrs) => keyword_view(dg, attrs)?,
    };
    join_three_way(s, id_attr, matches, &dg_view, None)
}

/// `h` restricted to the requested keywords, in request order. The output
/// schema of `S ⋈_A G` carries every attribute of `A` (Section II-B), so a
/// keyword the extraction scheme did not discover still becomes a column —
/// all nulls — rather than silently disappearing.
///
/// This is a pure column re-arrangement: discovered keywords share the
/// extracted relation's column `Arc`s (zero copy), undiscovered ones get an
/// untyped all-null column of matching length.
fn keyword_view(dg: &Relation, keywords: &[String]) -> Result<Relation> {
    let mut attrs: Vec<String> = vec!["vid".into()];
    attrs.extend(keywords.iter().cloned());
    let schema = Schema::new(dg.schema().name().to_string(), attrs)?;
    let vid_pos = dg.schema().require("vid")?;
    let mut cols = Vec::with_capacity(1 + keywords.len());
    cols.push(dg.columns()[vid_pos].clone());
    for k in keywords {
        cols.push(match dg.schema().position(k) {
            Some(p) => dg.columns()[p].clone(),
            None => std::sync::Arc::new(Column::null(dg.len())),
        });
    }
    Relation::from_shared_columns(schema, cols, dg.len())
}

fn join_three_way(
    s: &Relation,
    id_attr: &str,
    matches: &MatchRelation,
    dg: &Relation,
    gov: Option<&QueryGovernor>,
) -> Result<Relation> {
    let f_rel = matches.to_relation(&format!("f_{}", s.schema().name()), id_attr);
    let s_f = natural_join_governed(s, &f_rel, gov)?;
    natural_join_governed(&s_f, dg, gov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::Value;
    use gsj_graph::VertexId;
    use gsj_relational::Schema;

    fn pieces() -> (Relation, MatchRelation, Relation) {
        let mut s = Relation::empty(Schema::of("product", &["pid", "risk"]));
        s.push_values(vec![Value::str("fd1"), Value::str("medium")])
            .unwrap();
        s.push_values(vec![Value::str("fd2"), Value::str("high")])
            .unwrap();
        s.push_values(vec![Value::str("fd9"), Value::str("low")])
            .unwrap();
        let mut m = MatchRelation::new();
        m.push(Value::str("fd1"), VertexId(10));
        m.push(Value::str("fd2"), VertexId(20));
        let mut dg = Relation::empty(Schema::of("h_product", &["vid", "loc", "company"]));
        dg.push_values(vec![
            Value::Int(10),
            Value::str("UK"),
            Value::str("company1"),
        ])
        .unwrap();
        dg.push_values(vec![
            Value::Int(20),
            Value::str("US"),
            Value::str("company2"),
        ])
        .unwrap();
        (s, m, dg)
    }

    #[test]
    fn three_way_join_extends_matched_tuples() {
        let (s, m, dg) = pieces();
        let r = enrichment_join_precomputed(&s, "pid", &m, &dg, None).unwrap();
        // fd9 is unmatched → dropped; fd1/fd2 extended.
        assert_eq!(r.len(), 2);
        assert!(r.schema().contains("risk"));
        assert!(r.schema().contains("vid"));
        assert!(r.schema().contains("loc"));
        let fd1 = r
            .tuples()
            .iter()
            .find(|t| t.get(0) == &Value::str("fd1"))
            .unwrap();
        let loc_pos = r.schema().position("loc").unwrap();
        assert_eq!(fd1.get(loc_pos), &Value::str("UK"));
    }

    #[test]
    fn keyword_projection_restricts_extracted_attrs() {
        let (s, m, dg) = pieces();
        let r =
            enrichment_join_precomputed(&s, "pid", &m, &dg, Some(&["loc".to_string()])).unwrap();
        assert!(r.schema().contains("loc"));
        assert!(!r.schema().contains("company"));
    }

    #[test]
    fn undiscovered_keywords_become_null_columns() {
        // `S ⋈_A G` carries every requested attribute: keywords the
        // extraction missed are all-null columns, not silent drops.
        let (s, m, dg) = pieces();
        let r = enrichment_join_precomputed(&s, "pid", &m, &dg, Some(&["nonexistent".to_string()]))
            .unwrap();
        assert_eq!(r.len(), 2);
        let pos = r.schema().position("nonexistent").unwrap();
        assert!(r.tuples().iter().all(|t| t.get(pos) == &Value::Null));
    }
}
