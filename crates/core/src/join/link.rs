//! Link joins `S1 ⋈_G S2`: join tuples whose matching vertices are within
//! `k` hops of each other in `G` (Section II-B), checked by bidirectional
//! BFS (Section IV-A).

use gsj_common::{pool, FxHashMap, QueryGovernor, Result, Value};
use gsj_graph::traversal::within_k_hops_governed;
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::{her_match, HerConfig, MatchRelation};
use gsj_relational::{Relation, Schema};

/// The conceptual-level link join: HER on both sides, then pairwise
/// bidirectional BFS. Input schemas must have disjoint attribute names
/// (qualify aliases first, as the gSQL rewriter does).
#[allow(clippy::too_many_arguments)]
pub fn link_join(
    s1: &Relation,
    id1: &str,
    s2: &Relation,
    id2: &str,
    g: &LabeledGraph,
    k: usize,
    her_cfg: &HerConfig,
    gov: &QueryGovernor,
) -> Result<Relation> {
    gov.check("her.match")?;
    let m1 = her_match(
        g,
        s1,
        &HerConfig {
            id_attr: id1.into(),
            ..her_cfg.clone()
        },
    )?;
    let m2 = her_match(
        g,
        s2,
        &HerConfig {
            id_attr: id2.into(),
            ..her_cfg.clone()
        },
    )?;
    link_join_with_matches(s1, id1, &m1, s2, id2, &m2, g, k, gov)
}

/// Link join over precomputed match relations (the optimized path that
/// avoids calling HER online). The pairwise BFS loop is governed: each
/// memoized connectivity probe observes the governor (strided).
#[allow(clippy::too_many_arguments)]
pub fn link_join_with_matches(
    s1: &Relation,
    id1: &str,
    m1: &MatchRelation,
    s2: &Relation,
    id2: &str,
    m2: &MatchRelation,
    g: &LabeledGraph,
    k: usize,
    gov: &QueryGovernor,
) -> Result<Relation> {
    let mut span = gsj_obs::span("join.link");
    gsj_faults::fault_point("join.link", gsj_faults::FaultClass::Critical)?;
    let id1_pos = s1.schema().require(id1)?;
    let id2_pos = s2.schema().require(id2)?;
    let mut attrs = s1.schema().attrs().to_vec();
    attrs.extend(s2.schema().attrs().iter().cloned());
    let schema = Schema::new(
        format!("{}_lj_{}", s1.schema().name(), s2.schema().name()),
        attrs,
    )?;
    // Resolve each side's id column to vertices once, straight off the id
    // column — the old per-pair `vertex_of` lookup re-resolved the probe
    // side for every outer row.
    let resolve = |rel: &Relation, pos: usize, m: &MatchRelation| -> Vec<Option<VertexId>> {
        (0..rel.len())
            .map(|i| m.vertex_of(&rel.value_at(i, pos)))
            .collect()
    };
    let v1s = resolve(s1, id1_pos, m1);
    let v2s = resolve(s2, id2_pos, m2);
    // Pairwise BFS, memoized per distinct vertex pair and fanned out
    // over outer-row chunks (DESIGN.md §13). Each worker keeps its own
    // memo (sharing one would serialize the probes); chunk partials
    // concatenate in order, so the output is the sequential outer-major
    // pair order.
    let scan_chunk = |range: std::ops::Range<usize>| -> Result<(Vec<u32>, Vec<u32>, usize)> {
        let mut memo: FxHashMap<(VertexId, VertexId), bool> = FxHashMap::default();
        let mut li: Vec<u32> = Vec::new();
        let mut ri: Vec<u32> = Vec::new();
        for i in range {
            let Some(v1) = v1s[i] else { continue };
            for (j, v2) in v2s.iter().enumerate() {
                let Some(v2) = *v2 else { continue };
                gov.check_coarse("join.link")?;
                let key = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
                let connected = match memo.get(&key) {
                    Some(&c) => c,
                    None => {
                        let c = within_k_hops_governed(g, v1, v2, k, gov)?;
                        memo.insert(key, c);
                        c
                    }
                };
                if connected {
                    li.push(i as u32);
                    ri.push(j as u32);
                }
            }
        }
        Ok((li, ri, memo.len()))
    };
    let (li, ri, pairs_checked) = par_pair_scan(v1s.len(), v2s.len(), gov, scan_chunk)?;
    // One columnar gather per output column instead of a push per pair.
    let out = Relation::gather_concat(s1, &li, s2, &ri, None, schema)?;
    gov.charge_rows(out.len() as u64);
    span.field("k", k)
        .field("pairs_checked", pairs_checked)
        .field("rows_out", out.len());
    Ok(out)
}

/// Run a governed pair scan over `n_outer × n_inner` candidates,
/// chunking the outer side across the worker pool when the pair space
/// is large. Workers pin their nested kernels to one thread so a
/// parallel pair loop never multiplies into parallel BFS frontiers.
/// Returns concatenated (left, right) index partials in chunk order
/// plus the summed per-chunk memo sizes.
fn par_pair_scan(
    n_outer: usize,
    n_inner: usize,
    gov: &QueryGovernor,
    scan_chunk: impl Fn(std::ops::Range<usize>) -> Result<(Vec<u32>, Vec<u32>, usize)> + Sync,
) -> Result<(Vec<u32>, Vec<u32>, usize)> {
    let pairs = n_outer.saturating_mul(n_inner);
    let workers = if pool::gsj_threads() > 1 && n_outer > 1 && pairs >= 64.min(pool::morsel_rows())
    {
        pool::gsj_threads()
    } else {
        1
    };
    if workers <= 1 {
        return scan_chunk(0..n_outer);
    }
    let chunk = n_outer.div_ceil(workers * 4).max(1);
    let mut ranges = Vec::new();
    let mut s = 0;
    while s < n_outer {
        let e = (s + chunk).min(n_outer);
        ranges.push(s..e);
        s = e;
    }
    let parts = pool::run_tasks(workers, ranges.len(), |i| {
        gsj_faults::fault_point("pool.worker", gsj_faults::FaultClass::Critical)?;
        pool::with_threads(1, || scan_chunk(ranges[i].clone()))
    })?;
    let mut li = Vec::new();
    let mut ri = Vec::new();
    let mut checked = 0;
    for (l, r, c) in parts {
        li.extend(l);
        ri.extend(r);
        checked += c;
    }
    gov.charge_mem(8 * li.len() as u64);
    Ok((li, ri, checked))
}

/// Materialize a connectivity relation `g_L(vid1, vid2)` for two vertex
/// sets — the link-join cache of Section IV-A ("we also pre-compute
/// connectivity relations g_L for vertices of G that match selected tuples
/// in D"). Self-pairs are included (distance 0 ≤ k).
pub fn connectivity_relation(
    g: &LabeledGraph,
    left: &[VertexId],
    right: &[VertexId],
    k: usize,
    name: &str,
    gov: &QueryGovernor,
) -> Result<Relation> {
    let mut span = gsj_obs::span("join.connectivity");
    gsj_faults::fault_point("join.connectivity", gsj_faults::FaultClass::Critical)?;
    span.field("left", left.len())
        .field("right", right.len())
        .field("k", k);
    let mut rel = Relation::empty(Schema::of(name, &["vid1", "vid2"]));
    let scan_chunk = |range: std::ops::Range<usize>| -> Result<(Vec<u32>, Vec<u32>, usize)> {
        let mut memo: FxHashMap<(VertexId, VertexId), bool> = FxHashMap::default();
        let mut li: Vec<u32> = Vec::new();
        let mut ri: Vec<u32> = Vec::new();
        for &v1 in &left[range] {
            for &v2 in right {
                gov.check_coarse("join.connectivity")?;
                let key = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
                let connected = match memo.get(&key) {
                    Some(&c) => c,
                    None => {
                        let c = within_k_hops_governed(g, v1, v2, k, gov)?;
                        memo.insert(key, c);
                        c
                    }
                };
                if connected {
                    li.push(v1.0);
                    ri.push(v2.0);
                }
            }
        }
        Ok((li, ri, memo.len()))
    };
    let (li, ri, _) = par_pair_scan(left.len(), right.len(), gov, scan_chunk)?;
    for (v1, v2) in li.into_iter().zip(ri) {
        rel.push_values(vec![Value::Int(v1 as i64), Value::Int(v2 as i64)])?;
    }
    gov.charge_rows(rel.len() as u64);
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A social chain: bob - ada - guy, with an isolated eve.
    fn social() -> (LabeledGraph, Vec<VertexId>) {
        let mut g = LabeledGraph::new();
        let bob = g.add_vertex("Bob");
        let ada = g.add_vertex("Ada");
        let guy = g.add_vertex("Guy");
        let eve = g.add_vertex("Eve");
        g.add_edge(bob, "knows", ada);
        g.add_edge(ada, "knows", guy);
        (g, vec![bob, ada, guy, eve])
    }

    fn customers(names: &[&str], alias: &str) -> Relation {
        let mut r = Relation::empty(
            Schema::new(
                alias.to_string(),
                vec![format!("{alias}.cid"), format!("{alias}.name")],
            )
            .unwrap(),
        );
        for (i, n) in names.iter().enumerate() {
            r.push_values(vec![Value::str(format!("c{i}")), Value::str(*n)])
                .unwrap();
        }
        r
    }

    #[test]
    fn link_join_connects_within_k() {
        let gov = QueryGovernor::unlimited();
        let (g, vs) = social();
        let s1 = customers(&["Bob"], "T1");
        let s2 = customers(&["Ada", "Guy", "Eve"], "T2");
        let mut m1 = MatchRelation::new();
        m1.push(Value::str("c0"), vs[0]);
        let mut m2 = MatchRelation::new();
        m2.push(Value::str("c0"), vs[1]);
        m2.push(Value::str("c1"), vs[2]);
        m2.push(Value::str("c2"), vs[3]);
        let r1 =
            link_join_with_matches(&s1, "T1.cid", &m1, &s2, "T2.cid", &m2, &g, 1, &gov).unwrap();
        // k=1: only Ada.
        assert_eq!(r1.len(), 1);
        let r2 =
            link_join_with_matches(&s1, "T1.cid", &m1, &s2, "T2.cid", &m2, &g, 2, &gov).unwrap();
        // k=2: Ada and Guy; Eve never (disconnected).
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn unmatched_tuples_drop_out() {
        let gov = QueryGovernor::unlimited();
        let (g, vs) = social();
        let s1 = customers(&["Bob", "Stranger"], "T1");
        let s2 = customers(&["Ada"], "T2");
        let mut m1 = MatchRelation::new();
        m1.push(Value::str("c0"), vs[0]); // Stranger (c1) unmatched
        let mut m2 = MatchRelation::new();
        m2.push(Value::str("c0"), vs[1]);
        let r =
            link_join_with_matches(&s1, "T1.cid", &m1, &s2, "T2.cid", &m2, &g, 3, &gov).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn connectivity_relation_materializes_pairs() {
        let gov = QueryGovernor::unlimited();
        let (g, vs) = social();
        let rel =
            connectivity_relation(&g, &[vs[0]], &[vs[1], vs[2], vs[3]], 2, "gl", &gov).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.schema().attrs(),
            &["vid1".to_string(), "vid2".to_string()]
        );
    }

    #[test]
    fn cancelled_governor_stops_link_join() {
        let (g, vs) = social();
        let s1 = customers(&["Bob"], "T1");
        let s2 = customers(&["Ada"], "T2");
        let mut m1 = MatchRelation::new();
        m1.push(Value::str("c0"), vs[0]);
        let mut m2 = MatchRelation::new();
        m2.push(Value::str("c0"), vs[1]);
        let gov = QueryGovernor::unlimited();
        gov.cancel();
        let r = link_join_with_matches(&s1, "T1.cid", &m1, &s2, "T2.cid", &m2, &g, 2, &gov);
        assert_eq!(r, Err(gsj_common::GsjError::Cancelled));
    }

    #[test]
    fn end_to_end_link_join_with_her() {
        // Entity vertices carry name properties so HER can match them.
        let mut g = LabeledGraph::new();
        let bob = g.add_vertex("person-1");
        let bobn = g.add_vertex("Bob Smith");
        g.add_edge(bob, "name", bobn);
        let ada = g.add_vertex("person-2");
        let adan = g.add_vertex("Ada Lovelace");
        g.add_edge(ada, "name", adan);
        g.add_edge(bob, "knows", ada);
        let mut s1 = Relation::empty(Schema::of("a", &["a.id", "a.name"]));
        s1.push_values(vec![Value::str("x"), Value::str("Bob Smith")])
            .unwrap();
        let mut s2 = Relation::empty(Schema::of("b", &["b.id", "b.name"]));
        s2.push_values(vec![Value::str("y"), Value::str("Ada Lovelace")])
            .unwrap();
        let r = link_join(
            &s1,
            "a.id",
            &s2,
            "b.id",
            &g,
            1,
            &HerConfig::default(),
            &QueryGovernor::unlimited(),
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().arity(), 4);
    }
}
