//! # gsj-core
//!
//! The paper's primary contribution (Sections II–IV of *"Extracting Graphs
//! Properties with Semantic Joins"*, ICDE 2023):
//!
//! - **RExt** ([`rext`], [`discover`], [`extract`]): the relation-extraction
//!   scheme — LSTM-guided path selection, path embedding, K-means
//!   clustering, majority-vote pattern refinement, ranked attribute
//!   selection (pattern discovery phase I), and Algorithm 1 (extraction
//!   phase II).
//! - **Typed extraction** ([`typed`]): `Rτ` / `gτ(G)` without reference
//!   tuples, the substrate of heuristic joins.
//! - **IncExt** ([`incext`]): incremental maintenance under graph updates
//!   `ΔG` and keyword updates.
//! - **Semantic joins** ([`join`]): enrichment joins `S ⋈_A G` and link
//!   joins `S1 ⋈_G S2`.
//! - **gSQL** ([`gsql`]): the SQL extension with `e-join` / `l-join`
//!   syntactic sugar — lexer, parser, well-behaved analysis, and the three
//!   execution strategies (conceptual baseline, optimized
//!   static/dynamic joins over pre-extracted relations, heuristic joins).
//! - **Offline profiling** ([`profile`]): `f(D,G)`, reference keywords
//!   `A_R`, materialized `h(D,G)`, typed relations, and the link-join
//!   connectivity cache `g_L` (Section IV-A).

pub mod config;
pub mod discover;
pub mod embed_paths;
pub mod extract;
pub mod gsql;
pub mod heuristic;
pub mod incext;
pub mod join;
pub mod path_select;
pub mod profile;
pub mod quality;
pub mod ranking;
pub mod rext;
pub mod typed;

pub use config::{EmbedKind, PathKind, RExtConfig, SeqKind};
pub use discover::Discovery;
pub use gsql::exec::{GsqlEngine, Strategy};
pub use profile::GraphProfile;
pub use rext::Rext;
