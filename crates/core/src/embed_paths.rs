//! Vertex-path pair vectorization (Section III-A step 2).
//!
//! Each selected path `ρij` ending at vertex `vij` becomes one feature
//! vector `x_ij = [ x_{L(vij)} ; x_ρij ]`: the word embedding of the end
//! vertex's label concatenated with the sequence embedding of the path's
//! edge labels, each half L2-normalized first (the paper performs "L2
//! normalization before vector concatenation"). With the default models
//! this is the paper's 200-dimensional vertex-path representation.

use gsj_graph::{LabeledGraph, Path};
use gsj_nn::lm::SequenceEmbedder;
use gsj_nn::WordEmbedder;

/// Embed one path's end-label + label-sequence pair.
pub fn embed_pair(
    g: &LabeledGraph,
    path: &Path,
    word: &dyn WordEmbedder,
    seq: &dyn SequenceEmbedder,
) -> Vec<f32> {
    let end_label = g.vertex_label_str(path.end());
    let mut x_label = word.embed(&end_label);
    gsj_nn::vector::l2_normalize(&mut x_label);
    let mut x_path = seq.embed_symbols(path.labels());
    gsj_nn::vector::l2_normalize(&mut x_path);
    gsj_nn::vector::concat(&x_label, &x_path)
}

/// Embed a batch of paths, one feature vector per path, preserving order.
pub fn embed_pairs(
    g: &LabeledGraph,
    paths: &[Path],
    word: &dyn WordEmbedder,
    seq: &dyn SequenceEmbedder,
) -> Vec<Vec<f32>> {
    paths.iter().map(|p| embed_pair(g, p, word, seq)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_nn::{HashEmbedder, LanguageModel, LmConfig};

    fn setting() -> (LabeledGraph, Vec<Path>, LanguageModel) {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("pid1");
        let b = g.add_vertex("company1");
        let c = g.add_vertex("UK");
        g.add_edge(a, "issue", b);
        g.add_edge(b, "regloc", c);
        let corpus = gsj_graph::random_walk::build_corpus(&g, &Default::default());
        let lm = LanguageModel::untrained(
            &corpus,
            g.symbols(),
            LmConfig {
                embed_dim: 4,
                hidden: 8,
                ..LmConfig::default()
            },
        );
        let paths = crate::path_select::select_paths_random(&g, a, 2, 1);
        (g, paths, lm)
    }

    #[test]
    fn dimension_is_word_plus_seq() {
        let (g, paths, lm) = setting();
        let word = HashEmbedder::new(10);
        let x = embed_pair(&g, &paths[0], &word, &lm);
        assert_eq!(x.len(), 10 + 8);
    }

    #[test]
    fn halves_are_normalized() {
        let (g, paths, lm) = setting();
        let word = HashEmbedder::new(10);
        let x = embed_pair(&g, &paths[0], &word, &lm);
        let n1 = gsj_nn::vector::l2_norm(&x[..10]);
        let n2 = gsj_nn::vector::l2_norm(&x[10..]);
        assert!((n1 - 1.0).abs() < 1e-4, "label half norm {n1}");
        assert!((n2 - 1.0).abs() < 1e-4, "path half norm {n2}");
    }

    #[test]
    fn different_end_labels_give_different_vectors() {
        let (g, paths, lm) = setting();
        assert!(paths.len() >= 2, "need a 1-hop and a 2-hop path");
        let word = HashEmbedder::new(10);
        let xs = embed_pairs(&g, &paths, &word, &lm);
        assert_ne!(xs[0], xs[1]);
    }
}
