//! IncExt: incremental maintenance of extracted relations (Section III-B).
//!
//! Two update classes are handled:
//!
//! - **Data updates** `ΔG` ([`inc_update_graph`]): collect the affected
//!   vertex set `V_Δ` — (a) vertices newly matched by HER because of `ΔG`,
//!   and (b) previously matched vertices within `k` hops of any vertex
//!   touched by `ΔG` — and re-run only Algorithm 1's lines 3–4 for them.
//!   Pattern discovery is *not* redone, and the result is provably
//!   identical to running RExt from scratch over the updated graph (the
//!   paper's "no accuracy loss" claim; asserted by our integration tests).
//! - **Keyword updates** ([`inc_update_keywords`]): when the user's
//!   interest `A` shifts, only step (4) of pattern discovery (ranking /
//!   selection) is redone against the retained refined clusters, and only
//!   values of genuinely new attributes are extracted.

use crate::discover::{select_attributes, Discovery};
use crate::extract::{extract_values, LabelEmbCache};
use crate::rext::Rext;
use gsj_common::{FxHashMap, FxHashSet, Result, RetryPolicy, Value};
use gsj_graph::update::UpdateReport;
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::{her_match_local, HerConfig, MatchRelation};
use gsj_relational::{Relation, Schema};
use std::collections::VecDeque;

/// The maintained state: discovery, HER matches and the extracted `D_G`.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// Pattern discovery output (schema + clusters + caches).
    pub discovery: Discovery,
    /// The current `f(S,G)`.
    pub matches: MatchRelation,
    /// The current `D_G` of schema `R_G(vid, A...)`.
    pub dg: Relation,
}

/// Multi-source undirected BFS ball: all vertices within `k` hops of any
/// seed.
pub fn multi_source_khop(
    g: &LabeledGraph,
    seeds: impl IntoIterator<Item = VertexId>,
    k: usize,
) -> FxHashSet<VertexId> {
    multi_source_khop_excluding(g, seeds, k, &[])
}

/// [`multi_source_khop`] that refuses to traverse the given edge labels.
///
/// IncExt excludes *typing* edges here: selected pattern clusters never
/// traverse them (they classify entities rather than carry properties, and
/// discovery filters them out), yet a type vertex is a super-hub that
/// would otherwise put the entire graph within `k` hops of any update.
pub fn multi_source_khop_excluding(
    g: &LabeledGraph,
    seeds: impl IntoIterator<Item = VertexId>,
    k: usize,
    excluded_labels: &[gsj_common::Symbol],
) -> FxHashSet<VertexId> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut frontier = VecDeque::new();
    for s in seeds {
        // Dead seeds (removed vertices) still anchor the ball at distance
        // 0 so their former neighbors' balls are computed from `touched`.
        if seen.insert(s) && g.is_live(s) {
            frontier.push_back((s, 0usize));
        }
    }
    while let Some((v, d)) = frontier.pop_front() {
        if d == k {
            continue;
        }
        for (e, _) in g.incident(v) {
            if excluded_labels.contains(&e.label) {
                continue;
            }
            if seen.insert(e.to) {
                frontier.push_back((e.to, d + 1));
            }
        }
    }
    seen
}

/// The extraction-affected vertex set, computed by *label-constrained
/// reverse reachability*: a matched vertex's extracted row can only change
/// if some path conforming to a **selected pattern** from it passes
/// through a touched vertex. So, for every selected pattern
/// `(l1, ..., lm)` and every position `i` a touched vertex could occupy on
/// such a path, walk backwards from the touched set over the reversed
/// label prefix `(li, ..., l1)` (orientation-blind — conforming paths are
/// undirected). This is sound and far tighter than the paper's plain
/// k-hop ball, which in dense graphs reaches everything through shared
/// value hubs (see DESIGN.md §7).
pub fn pattern_affected_zone(
    g: &LabeledGraph,
    touched: &FxHashSet<VertexId>,
    discovery: &Discovery,
) -> FxHashSet<VertexId> {
    let mut out: FxHashSet<VertexId> = touched.clone(); // position 0: v itself
    for cluster in &discovery.clusters {
        for pattern in &cluster.patterns {
            let labels = pattern.labels();
            for i in 1..=labels.len() {
                // Touched vertex at position i → reverse over labels
                // l_i, l_{i-1}, ..., l_1.
                let mut frontier: FxHashSet<VertexId> =
                    touched.iter().copied().filter(|v| g.is_live(*v)).collect();
                for step in (0..i).rev() {
                    let lab = labels[step];
                    let mut next = FxHashSet::default();
                    for &v in &frontier {
                        for (e, _) in g.incident(v) {
                            if e.label == lab {
                                next.insert(e.to);
                            }
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                out.extend(frontier);
            }
        }
    }
    out
}

static INCEXT_RETRIES: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_incext_retry_total");

/// Run one IncExt phase under the retry policy: each attempt first passes
/// the phase's fault point, so injected recoverable faults exercise the
/// backoff path. The phases are deterministic over immutable inputs, which
/// is what makes blind re-execution sound.
fn retried<T>(
    policy: &RetryPolicy,
    site: &'static str,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    policy.run_with(
        |_attempt| {
            gsj_faults::fault_point(site, gsj_faults::FaultClass::Recoverable)?;
            op()
        },
        |retry, err| {
            INCEXT_RETRIES.inc();
            gsj_obs::event(
                "incext.retry",
                &[("site", &site), ("retry", &retry), ("error", &err)],
            );
        },
    )
}

/// Apply a data update: `g` must already be the *updated* graph and
/// `report` the [`UpdateReport`] from applying `ΔG`.
///
/// Each phase (zone computation, localized HER, re-extraction) retries
/// with backoff on retryable failures before the whole update fails.
pub fn inc_update_graph(
    rext: &Rext,
    g: &LabeledGraph,
    s: &Relation,
    her_cfg: &HerConfig,
    prev: &Extraction,
    report: &UpdateReport,
) -> Result<Extraction> {
    let mut update_span = gsj_obs::span("incext.update_graph");
    update_span.field("touched", report.touched.len());
    let policy = RetryPolicy::default();
    let affected_zone = retried(&policy, "incext.zone", || {
        let mut span = gsj_obs::span("incext.zone");
        let zone = pattern_affected_zone(g, &report.touched, &prev.discovery);
        span.field("vertices", zone.len());
        Ok(zone)
    })?;
    // HER depends on the (hops-bounded) vicinity, not on patterns: a
    // separate, shallow ball gates match re-computation.
    let her_zone = multi_source_khop(g, report.touched.iter().copied(), her_cfg.hops);

    // --- Re-run HER locally: tuples that were unmatched, or whose match
    // died, or whose matched vertex sits near an update.
    let id_pos = s.schema().require(&her_cfg.id_attr)?;
    let mut redo_rows = Vec::new();
    for t in s.tuples() {
        let tid = t.get(id_pos);
        let redo = match prev.matches.vertex_of(tid) {
            None => true,
            Some(v) => !g.is_live(v) || her_zone.contains(&v) || affected_zone.contains(&v),
        };
        if redo {
            redo_rows.push(t.clone());
        }
    }
    let rerun_matches = retried(&policy, "incext.her_redo", || {
        let mut span = gsj_obs::span("incext.her_redo");
        span.field("redo_rows", redo_rows.len());
        if redo_rows.is_empty() {
            Ok(MatchRelation::new())
        } else {
            // Localized HER: candidates are the vertices whose vicinity an
            // update could have changed, plus the redo tuples' previous
            // matches (so an unchanged match can be re-confirmed).
            let mut candidates: FxHashSet<VertexId> = her_zone.clone();
            candidates.extend(affected_zone.iter().copied());
            let id_pos2 = id_pos;
            for t in &redo_rows {
                if let Some(v) = prev.matches.vertex_of(t.get(id_pos2)) {
                    candidates.insert(v);
                }
            }
            let sub = Relation::new(s.schema().clone(), redo_rows.clone())?;
            her_match_local(g, &sub, her_cfg, candidates)
        }
    })?;
    let redo_tids: FxHashSet<Value> = redo_rows.iter().map(|t| t.get(id_pos).clone()).collect();

    // --- Merge into the new match relation.
    let mut new_matches = MatchRelation::new();
    for (tid, vid) in prev.matches.pairs() {
        if !redo_tids.contains(tid) {
            new_matches.push(tid.clone(), *vid);
        }
    }
    for (tid, vid) in rerun_matches.pairs() {
        new_matches.push(tid.clone(), *vid);
    }

    // --- V_Δ: vertices whose extraction could have changed — matches
    // that moved to a *different* vertex, plus any current match inside
    // the pattern-affected zone. A re-confirmed match outside the zone
    // keeps its D_G row untouched (extraction is a function of the vertex
    // and its unaffected paths).
    let mut v_delta: FxHashSet<VertexId> = FxHashSet::default();
    for (tid, v) in rerun_matches.pairs() {
        if prev.matches.vertex_of(tid) != Some(*v) {
            v_delta.insert(*v);
        }
    }
    for (_, v) in new_matches.pairs() {
        if affected_zone.contains(v) {
            v_delta.insert(*v);
        }
    }

    // --- Rebuild D_G: keep untouched rows, re-extract V_Δ.
    let matched_now: FxHashSet<VertexId> = new_matches.vertices().collect();
    let vid_pos = prev.dg.schema().require("vid")?;
    let mut dg = Relation::empty(prev.dg.schema().clone());
    for row in prev.dg.tuples() {
        let vid = VertexId(row.get(vid_pos).as_int().unwrap_or(-1) as u32);
        if !matched_now.contains(&vid) || v_delta.contains(&vid) || !g.is_live(vid) {
            continue;
        }
        dg.push(row.clone())?;
    }
    let mut ordered: Vec<VertexId> = v_delta
        .iter()
        .copied()
        .filter(|v| matched_now.contains(v))
        .collect();
    ordered.sort();
    let fresh = retried(&policy, "incext.re_extract", || {
        let mut span = gsj_obs::span("incext.re_extract");
        span.field("vertices", ordered.len());
        rext.extract_vertices(g, &ordered, &prev.discovery)
    })?;
    for row in fresh.tuples() {
        dg.push(row.clone())?;
    }

    // --- Refresh the path cache for the re-extracted vertices.
    let mut discovery = prev.discovery.clone();
    for v in &v_delta {
        discovery.paths.remove(v);
    }

    Ok(Extraction {
        discovery,
        matches: new_matches,
        dg,
    })
}

/// Apply a keyword update: redo only the ranking/selection step against
/// the retained refined clusters, copy columns of attributes that survive,
/// and extract values only for attributes new to `R_G`.
pub fn inc_update_keywords(
    rext: &Rext,
    g: &LabeledGraph,
    reference: Option<(&Relation, &str)>,
    prev: &Extraction,
    new_keywords: &[String],
) -> Result<Extraction> {
    // Recover the flat path/feature sets from the discovery cache — no
    // path selection, no clustering.
    let mut vertices: Vec<&VertexId> = prev.discovery.paths.keys().collect();
    vertices.sort();
    let mut flat = Vec::new();
    for v in vertices {
        flat.extend(prev.discovery.paths[v].iter().cloned());
    }
    let word = rext.word_embedder();
    let name_embs: Vec<Vec<f32>> = flat
        .iter()
        .map(|p| crate::rext::naming_embedding(g, p, word))
        .collect();

    let keyword_embs: Vec<(String, Vec<f32>)> = new_keywords
        .iter()
        .map(|k| (k.clone(), word.embed(k)))
        .collect();
    let tuple_attr_embs = match reference {
        Some((s, id_attr)) => {
            // Reuse Rext's embedding logic through a local rebuild.
            crate::rext::tuple_attr_embeddings_for(rext, s, id_attr, &prev.matches)?
        }
        None => Default::default(),
    };
    let m = rext.config().m.min(new_keywords.len().max(1));
    let (clusters, schema) = select_attributes(
        &prev.discovery.refined,
        &flat,
        &name_embs,
        &tuple_attr_embs,
        &keyword_embs,
        m,
        prev.discovery.schema.name(),
    )?;

    let mut discovery = prev.discovery.clone();
    discovery.clusters = clusters;
    discovery.schema = schema.clone();
    discovery.keyword_embs = keyword_embs;

    // Rebuild D_G: copy surviving columns, extract only new ones.
    let old_schema: &Schema = prev.dg.schema();
    let vid_pos = old_schema.require("vid")?;
    let mut dg = Relation::empty(schema.clone());
    let mut cache = LabelEmbCache::default();
    for row in prev.dg.tuples() {
        let vid_val = row.get(vid_pos).clone();
        let vid = VertexId(vid_val.as_int().unwrap_or(-1) as u32);
        let empty: Vec<gsj_graph::Path> = Vec::new();
        let paths = prev.discovery.paths.get(&vid).unwrap_or(&empty);
        // Values for new attributes, computed per-cluster.
        let mut new_vals: FxHashMap<&str, Value> = FxHashMap::default();
        for cluster in &discovery.clusters {
            if old_schema.contains(&cluster.attr) {
                continue;
            }
            let single = Discovery {
                clusters: vec![cluster.clone()],
                ..discovery.clone()
            };
            let vals = extract_values(g, paths, &single, word, &mut cache);
            new_vals.insert(cluster.attr.as_str(), vals[0].clone());
        }
        let mut out_row = vec![vid_val];
        for attr in schema.attrs().iter().skip(1) {
            if let Some(i) = old_schema.position(attr) {
                out_row.push(row.get(i).clone());
            } else {
                out_row.push(new_vals.remove(attr.as_str()).unwrap_or(Value::Null));
            }
        }
        dg.push_values(out_row)?;
    }

    Ok(Extraction {
        discovery,
        matches: prev.matches.clone(),
        dg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_source_ball_covers_all_seeds() {
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..6).map(|i| g.add_vertex(&format!("v{i}"))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], "e", w[1]);
        }
        let ball = multi_source_khop(&g, [vs[0], vs[5]], 1);
        assert!(ball.contains(&vs[0]) && ball.contains(&vs[1]));
        assert!(ball.contains(&vs[5]) && ball.contains(&vs[4]));
        assert!(!ball.contains(&vs[2]) && !ball.contains(&vs[3]));
    }

    #[test]
    fn dead_seed_is_in_ball_but_not_expanded() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, "e", b);
        g.remove_vertex(a);
        let ball = multi_source_khop(&g, [a], 2);
        assert!(ball.contains(&a));
        assert!(!ball.contains(&b));
    }
}
