//! Extraction quality: the drop-and-recover F-measure protocol of Exp-2.
//!
//! "For each relation schema R, we first picked and dropped m attributes
//! from R ... We then tested the ability of RExt to recover the dropped
//! values from graph G ... We calculated the accuracy (F-measure) of join
//! results by taking the original relation as the ground truth."

use gsj_common::{FxHashMap, Result, Value};
use gsj_her::normalize::value_text;
use gsj_relational::Relation;

/// Precision / recall / F1 of recovered attribute values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FMeasure {
    /// Correct non-null predictions / all non-null predictions.
    pub precision: f64,
    /// Correct non-null predictions / all non-null ground-truth cells.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Raw counts.
    pub correct: usize,
    /// Non-null predicted cells.
    pub predicted: usize,
    /// Non-null ground-truth cells.
    pub expected: usize,
}

impl FMeasure {
    fn from_counts(correct: usize, predicted: usize, expected: usize) -> FMeasure {
        let precision = if predicted == 0 {
            0.0
        } else {
            correct as f64 / predicted as f64
        };
        let recall = if expected == 0 {
            0.0
        } else {
            correct as f64 / expected as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        FMeasure {
            precision,
            recall,
            f1,
            correct,
            predicted,
            expected,
        }
    }

    /// Merge counts of several measurements into one (micro average).
    pub fn micro_avg(measures: &[FMeasure]) -> FMeasure {
        let correct = measures.iter().map(|m| m.correct).sum();
        let predicted = measures.iter().map(|m| m.predicted).sum();
        let expected = measures.iter().map(|m| m.expected).sum();
        Self::from_counts(correct, predicted, expected)
    }
}

/// Values match if their normalized texts agree (case/punctuation
/// insensitive; NULLs never match).
pub fn values_match(a: &Value, b: &Value) -> bool {
    match (value_text(a), value_text(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Compare `predicted` against `truth`, joined on `key` (an attribute of
/// both), over the given `(predicted_attr, truth_attr)` pairs.
///
/// Truth rows absent from `predicted` count as missed (recall); predicted
/// non-null cells for keys absent from `truth` count as wrong (precision).
pub fn f_measure(
    predicted: &Relation,
    truth: &Relation,
    key: &str,
    attr_pairs: &[(String, String)],
) -> Result<FMeasure> {
    let pk = predicted.schema().require(key)?;
    let tk = truth.schema().require(key)?;
    let pred_pos: Vec<usize> = attr_pairs
        .iter()
        .map(|(p, _)| predicted.schema().require(p))
        .collect::<Result<_>>()?;
    let truth_pos: Vec<usize> = attr_pairs
        .iter()
        .map(|(_, t)| truth.schema().require(t))
        .collect::<Result<_>>()?;

    let mut truth_by_key: FxHashMap<&Value, &gsj_relational::Tuple> = FxHashMap::default();
    for t in truth.tuples() {
        truth_by_key.insert(t.get(tk), t);
    }

    let mut correct = 0usize;
    let mut predicted_nonnull = 0usize;
    for p in predicted.tuples() {
        let truth_row = truth_by_key.get(p.get(pk));
        for (pp, tp) in pred_pos.iter().zip(&truth_pos) {
            let pv = p.get(*pp);
            if pv.is_null() {
                continue;
            }
            predicted_nonnull += 1;
            if let Some(t) = truth_row {
                if values_match(pv, t.get(*tp)) {
                    correct += 1;
                }
            }
        }
    }
    let expected: usize = truth
        .tuples()
        .iter()
        .map(|t| truth_pos.iter().filter(|&&i| !t.get(i).is_null()).count())
        .sum();
    Ok(FMeasure::from_counts(correct, predicted_nonnull, expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_relational::Schema;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<Value>>) -> Relation {
        let mut r = Relation::empty(Schema::of(name, attrs));
        for row in rows {
            r.push_values(row).unwrap();
        }
        r
    }

    #[test]
    fn perfect_recovery_is_one() {
        let truth = rel(
            "t",
            &["id", "loc"],
            vec![
                vec![Value::str("a"), Value::str("UK")],
                vec![Value::str("b"), Value::str("US")],
            ],
        );
        let m = f_measure(
            &truth.clone(),
            &truth,
            "id",
            &[("loc".into(), "loc".into())],
        )
        .unwrap();
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.correct, 2);
    }

    #[test]
    fn nulls_hit_recall_not_precision() {
        let truth = rel(
            "t",
            &["id", "loc"],
            vec![
                vec![Value::str("a"), Value::str("UK")],
                vec![Value::str("b"), Value::str("US")],
            ],
        );
        let pred = rel(
            "p",
            &["id", "loc"],
            vec![
                vec![Value::str("a"), Value::str("UK")],
                vec![Value::str("b"), Value::Null],
            ],
        );
        let m = f_measure(&pred, &truth, "id", &[("loc".into(), "loc".into())]).unwrap();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.5);
    }

    #[test]
    fn wrong_values_hit_precision() {
        let truth = rel(
            "t",
            &["id", "loc"],
            vec![vec![Value::str("a"), Value::str("UK")]],
        );
        let pred = rel(
            "p",
            &["id", "loc"],
            vec![vec![Value::str("a"), Value::str("France")]],
        );
        let m = f_measure(&pred, &truth, "id", &[("loc".into(), "loc".into())]).unwrap();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn matching_is_normalization_insensitive() {
        assert!(values_match(&Value::str("G&L ESG"), &Value::str("g l esg")));
        assert!(values_match(&Value::Int(5), &Value::str("5")));
        assert!(!values_match(&Value::Null, &Value::Null));
    }

    #[test]
    fn micro_average_pools_counts() {
        let a = FMeasure::from_counts(1, 1, 2);
        let b = FMeasure::from_counts(1, 1, 0);
        let m = FMeasure::micro_avg(&[a, b]);
        assert_eq!(m.correct, 2);
        assert_eq!(m.predicted, 2);
        assert_eq!(m.expected, 2);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn extra_predicted_keys_hurt_precision() {
        let truth = rel(
            "t",
            &["id", "x"],
            vec![vec![Value::str("a"), Value::str("v")]],
        );
        let pred = rel(
            "p",
            &["id", "x"],
            vec![
                vec![Value::str("a"), Value::str("v")],
                vec![Value::str("ghost"), Value::str("v")],
            ],
        );
        let m = f_measure(&pred, &truth, "id", &[("x".into(), "x".into())]).unwrap();
        assert_eq!(m.correct, 1);
        assert_eq!(m.predicted, 2);
        assert!((m.precision - 0.5).abs() < 1e-12);
    }
}
