//! Algorithm 1: attribute extraction via pattern matching (Section III-A,
//! phase II).
//!
//! For each match `(t_i, v_i) ∈ f(S,G)`: select paths `Π` from `v_i`
//! (reusing the ones cached during discovery when available), and for each
//! selected pattern cluster `P_j` pick the conforming path whose end label
//! maximizes the value-ranking function `cos(x_{L(ρ.v_l)}, x_{A_j})`; its
//! end label becomes `θ_j`, or NULL when no path conforms.

use crate::discover::Discovery;
use gsj_common::{FxHashMap, FxHashSet, Result, Value};
use gsj_graph::{LabeledGraph, Path, VertexId};
use gsj_nn::vector::cosine;
use gsj_nn::WordEmbedder;
use gsj_relational::Relation;

/// A memo of end-label embeddings so repeated labels (countries, genres,
/// types...) are embedded once.
#[derive(Default)]
pub struct LabelEmbCache {
    map: FxHashMap<String, Vec<f32>>,
}

impl LabelEmbCache {
    /// Embed through the cache.
    pub fn embed(&mut self, word: &dyn WordEmbedder, label: &str) -> &[f32] {
        self.map
            .entry(label.to_string())
            .or_insert_with(|| word.embed(label))
    }
}

/// Extract the attribute values `(θ_1, ..., θ_m)` for one vertex from its
/// selected paths (the `Extract` function of Algorithm 1).
pub fn extract_values(
    g: &LabeledGraph,
    paths: &[Path],
    discovery: &Discovery,
    word: &dyn WordEmbedder,
    cache: &mut LabelEmbCache,
) -> Vec<Value> {
    discovery
        .clusters
        .iter()
        .map(|cluster| {
            let pattern_set: std::collections::HashSet<&gsj_graph::PathPattern> =
                cluster.patterns.iter().collect();
            // (similarity, path length, label): maximize similarity; on
            // ties prefer the *shorter* path — the entity's own property
            // over the same-shaped property of a neighbor reached through
            // an extra hop — then break lexicographically.
            let mut best: Option<(f32, usize, String)> = None;
            for p in paths {
                if !pattern_set.contains(&p.pattern()) {
                    continue;
                }
                let label = g.vertex_label_str(p.end()).to_string();
                let emb = cache.embed(word, &label);
                let sim = cosine(emb, &cluster.attr_emb);
                let better = match &best {
                    None => true,
                    Some((bs, bl, blabel)) => {
                        sim > *bs
                            || (sim == *bs && p.len() < *bl)
                            || (sim == *bs && p.len() == *bl && label < *blabel)
                    }
                };
                if better {
                    best = Some((sim, p.len(), label));
                }
            }
            match best {
                Some((_, _, label)) => Value::str(label),
                None => Value::Null,
            }
        })
        .collect()
}

/// Run Algorithm 1 over a set of matches, producing the extracted relation
/// `D_G` of schema `R_G(vid, A_1, ..., A_m)`. One row per distinct matched
/// vertex (extraction is a function of the vertex alone).
///
/// `fresh_paths` supplies paths for vertices absent from the discovery
/// cache (IncExt's newly matched vertices); it is handed the vertex id.
pub fn extract_relation<F>(
    g: &LabeledGraph,
    matched_vertices: impl IntoIterator<Item = VertexId>,
    discovery: &Discovery,
    word: &dyn WordEmbedder,
    mut fresh_paths: F,
) -> Result<Relation>
where
    F: FnMut(VertexId) -> Vec<Path>,
{
    let mut rel = Relation::empty(discovery.schema.clone());
    let mut cache = LabelEmbCache::default();
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    for v in matched_vertices {
        if !seen.insert(v) || !g.is_live(v) {
            continue;
        }
        let owned;
        let paths: &[Path] = match discovery.paths.get(&v) {
            Some(cached) => cached,
            None => {
                owned = fresh_paths(v);
                &owned
            }
        };
        let mut row = Vec::with_capacity(1 + discovery.clusters.len());
        row.push(Value::Int(v.0 as i64));
        row.extend(extract_values(g, paths, discovery, word, &mut cache));
        rel.push_values(row)?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::PatternCluster;
    use gsj_nn::HashEmbedder;
    use gsj_relational::Schema;

    /// Hand-built discovery over the Example-1 fragment: cluster "loc"
    /// matches the 2-hop issue→regloc pattern; cluster "company" the 1-hop
    /// issue pattern.
    fn setting() -> (LabeledGraph, VertexId, Discovery, HashEmbedder) {
        let mut g = LabeledGraph::new();
        let pid1 = g.add_vertex("pid1");
        let company = g.add_vertex("company1");
        let country = g.add_vertex("UK");
        g.add_edge(pid1, "issue", company);
        g.add_edge(company, "regloc", country);
        let issue = g.symbols().get("issue").unwrap();
        let regloc = g.symbols().get("regloc").unwrap();

        let word = HashEmbedder::new(32);
        let mut paths_map: FxHashMap<VertexId, Vec<Path>> = FxHashMap::default();
        let mut p1 = Path::new(pid1);
        p1.push(issue, company);
        let mut p2 = p1.clone();
        p2.push(regloc, country);
        paths_map.insert(pid1, vec![p1, p2]);

        let clusters = vec![
            PatternCluster {
                patterns: vec![gsj_graph::PathPattern(vec![issue, regloc])],
                attr: "loc".into(),
                attr_emb: word.embed("loc"),
                score: 1.0,
            },
            PatternCluster {
                patterns: vec![gsj_graph::PathPattern(vec![issue])],
                attr: "company".into(),
                attr_emb: word.embed("company"),
                score: 0.9,
            },
        ];
        let discovery = Discovery {
            clusters,
            schema: Schema::of("h_product", &["vid", "loc", "company"]),
            refined: Vec::new(),
            paths: paths_map,
            keyword_embs: Vec::new(),
            total_paths: 2,
            word_dim: 32,
        };
        (g, pid1, discovery, word)
    }

    #[test]
    fn extracts_values_per_cluster() {
        let (g, pid1, disc, word) = setting();
        let rel = extract_relation(&g, [pid1], &disc, &word, |_| Vec::new()).unwrap();
        assert_eq!(rel.len(), 1);
        let row = &rel.tuples()[0];
        assert_eq!(row.get(0), &Value::Int(pid1.0 as i64));
        assert_eq!(row.get(1), &Value::str("UK"));
        assert_eq!(row.get(2), &Value::str("company1"));
    }

    #[test]
    fn missing_pattern_yields_null() {
        let (g, pid1, mut disc, word) = setting();
        // Remove the cached 2-hop path: "loc" has no conforming path.
        disc.paths.get_mut(&pid1).unwrap().truncate(1);
        let rel = extract_relation(&g, [pid1], &disc, &word, |_| Vec::new()).unwrap();
        assert!(rel.tuples()[0].get(1).is_null());
        assert_eq!(rel.tuples()[0].get(2), &Value::str("company1"));
    }

    #[test]
    fn duplicate_vertices_extract_once() {
        let (g, pid1, disc, word) = setting();
        let rel = extract_relation(&g, [pid1, pid1, pid1], &disc, &word, |_| Vec::new()).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn fresh_paths_used_for_uncached_vertices() {
        let (g, pid1, mut disc, word) = setting();
        let cached = disc.paths.remove(&pid1).unwrap();
        let rel = extract_relation(&g, [pid1], &disc, &word, move |_| cached.clone()).unwrap();
        assert_eq!(rel.tuples()[0].get(1), &Value::str("UK"));
    }

    #[test]
    fn dead_vertices_are_skipped() {
        let (mut g, pid1, disc, word) = setting();
        g.remove_vertex(pid1);
        let rel = extract_relation(&g, [pid1], &disc, &word, |_| Vec::new()).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn value_ranking_picks_keyword_closest_end_label() {
        // Two 1-hop paths with different end labels conforming to the same
        // pattern: the one semantically closer to the keyword wins.
        let mut g = LabeledGraph::new();
        let e = g.add_vertex("entity");
        let good = g.add_vertex("location value");
        let bad = g.add_vertex("irrelevant junk");
        g.add_edge(e, "prop", good);
        g.add_edge(e, "prop", bad);
        let prop = g.symbols().get("prop").unwrap();
        let word = HashEmbedder::new(64);
        let mut pg = Path::new(e);
        pg.push(prop, good);
        let mut pb = Path::new(e);
        pb.push(prop, bad);
        let mut paths_map: FxHashMap<VertexId, Vec<Path>> = FxHashMap::default();
        paths_map.insert(e, vec![pb, pg]);
        let disc = Discovery {
            clusters: vec![PatternCluster {
                patterns: vec![gsj_graph::PathPattern(vec![prop])],
                attr: "location".into(),
                attr_emb: word.embed("location"),
                score: 1.0,
            }],
            schema: Schema::of("h_x", &["vid", "location"]),
            refined: Vec::new(),
            paths: paths_map,
            keyword_embs: Vec::new(),
            total_paths: 2,
            word_dim: 64,
        };
        let rel = extract_relation(&g, [e], &disc, &word, |_| Vec::new()).unwrap();
        assert_eq!(rel.tuples()[0].get(1), &Value::str("location value"));
    }
}
