//! The gSQL lexer.

use gsj_common::{GsjError, Result};

/// gSQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (lower-cased): select, from, where, as, and, or, not, is,
    /// null, true, false.
    Kw(String),
    /// `e-join`.
    EJoin,
    /// `l-join`.
    LJoin,
    /// Identifier (may be quoted with double quotes to allow exotic
    /// characters, e.g. `"customer'"`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operators: `, ( ) < > <= >= = != <> . * + - /`.
    Sym(&'static str),
}

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "as", "and", "or", "not", "is", "null", "true", "false", "count",
    "sum", "avg", "min", "max", "order", "by", "limit", "asc", "desc", "group",
];

/// Tokenize gSQL text. Angle brackets `<...>` double as the keyword-list
/// delimiters of `e-join`/`l-join`; the parser disambiguates by context.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Identifiers / keywords / e-join / l-join.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // e-join / l-join: a one-letter ident followed by "-join".
            if (word == "e" || word == "l")
                && chars.get(i) == Some(&'-')
                && chars
                    .get(i + 1..i + 5)
                    .map(|s| s.iter().collect::<String>())
                    == Some("join".to_string())
            {
                i += 5;
                tokens.push(if word == "e" {
                    Token::EJoin
                } else {
                    Token::LJoin
                });
                continue;
            }
            let lower = word.to_lowercase();
            if KEYWORDS.contains(&lower.as_str()) {
                tokens.push(Token::Kw(lower));
            } else {
                tokens.push(Token::Ident(word));
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && !is_float))
            {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                tokens.push(Token::Float(text.parse().map_err(|_| {
                    GsjError::Parse(format!("bad float literal `{text}`"))
                })?));
            } else {
                tokens.push(Token::Int(text.parse().map_err(|_| {
                    GsjError::Parse(format!("bad int literal `{text}`"))
                })?));
            }
            continue;
        }
        // String literals.
        if c == '\'' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            if j >= chars.len() {
                return Err(GsjError::Parse("unterminated string literal".into()));
            }
            tokens.push(Token::Str(chars[start..j].iter().collect()));
            i = j + 1;
            continue;
        }
        // Quoted identifiers.
        if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '"' {
                j += 1;
            }
            if j >= chars.len() {
                return Err(GsjError::Parse("unterminated quoted identifier".into()));
            }
            tokens.push(Token::Ident(chars[start..j].iter().collect()));
            i = j + 1;
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let sym = match two.as_str() {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "!=" => Some("!="),
            "<>" => Some("<>"),
            _ => None,
        };
        if let Some(s) = sym {
            tokens.push(Token::Sym(s));
            i += 2;
            continue;
        }
        let single = match c {
            ',' => ",",
            '(' => "(",
            ')' => ")",
            '<' => "<",
            '>' => ">",
            '=' => "=",
            '.' => ".",
            '*' => "*",
            '+' => "+",
            '-' => "-",
            '/' => "/",
            // The paper's typography: accept unicode angle brackets too.
            '⟨' => "<",
            '⟩' => ">",
            _ => {
                return Err(GsjError::Parse(format!(
                    "unexpected character `{c}` at offset {i}"
                )))
            }
        };
        tokens.push(Token::Sym(single));
        i += 1;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_q1_from_the_paper() {
        let toks = lex(
            "select risk, company from product e-join G <company, loc> as T \
             where T.pid = fd1 and T.loc = UK",
        )
        .unwrap();
        assert!(toks.contains(&Token::EJoin));
        assert!(toks.contains(&Token::Kw("select".into())));
        assert!(toks.contains(&Token::Ident("G".into())));
        assert!(toks.contains(&Token::Sym("<")));
    }

    #[test]
    fn ejoin_vs_subtraction() {
        // `e-join` only triggers on the bare identifiers e/l.
        let toks = lex("price - join").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("price".into()),
                Token::Sym("-"),
                Token::Ident("join".into())
            ]
        );
        assert_eq!(lex("l-join").unwrap(), vec![Token::LJoin]);
    }

    #[test]
    fn literals_and_operators() {
        let toks = lex("where bal >= 1000 * 2.5 and name = 'G&L ESG' or x <> 1").unwrap();
        assert!(toks.contains(&Token::Int(1000)));
        assert!(toks.contains(&Token::Float(2.5)));
        assert!(toks.contains(&Token::Str("G&L ESG".into())));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Sym("<>")));
    }

    #[test]
    fn quoted_identifiers_allow_primes() {
        let toks = lex("customer as \"customer'\"").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("customer".into()),
                Token::Kw("as".into()),
                Token::Ident("customer'".into())
            ]
        );
    }

    #[test]
    fn unicode_angle_brackets() {
        let toks = lex("e-join G ⟨loc⟩").unwrap();
        assert_eq!(toks[2], Token::Sym("<"));
        assert_eq!(toks[4], Token::Sym(">"));
    }

    #[test]
    fn errors_on_junk() {
        assert!(lex("select ;").is_err());
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("SELECT * FROM t").unwrap();
        assert_eq!(toks[0], Token::Kw("select".into()));
        assert_eq!(toks[2], Token::Kw("from".into()));
    }
}
