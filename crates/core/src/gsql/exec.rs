//! gSQL execution: rewriting queries into relational operations over the
//! engine's catalog plus the semantic-join machinery, under three
//! strategies (Section IV).
//!
//! - [`Strategy::Baseline`] — the conceptual-level method: every semantic
//!   join calls HER and RExt online.
//! - [`Strategy::Optimized`] — well-behaved joins are rewritten to
//!   three-way natural joins over the materialized `f(D,G)` / `h(D,G)`
//!   (static joins) or their sub-query variants (dynamic joins), with the
//!   `g_L` connectivity cache for link joins; non-well-behaved joins fall
//!   back to heuristic joins.
//! - [`Strategy::Heuristic`] — heuristic joins are forced for *all*
//!   semantic joins (the Exp-2(II) protocol).

use super::analyze::{is_well_behaved, source_base};
use super::ast::{FromItem, Projection, Query, Source};
use super::parser::parse_query;
use crate::join::{
    connectivity_relation, enrichment_join, enrichment_join_precomputed, link_join,
};
use crate::profile::GraphProfile;
use crate::rext::Rext;
use gsj_common::{FxHashMap, FxHashSet, GsjError, Result, Value};
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::relation_er::ErConfig;
use gsj_her::HerConfig;
use gsj_relational::exec::theta_join;
use gsj_relational::plan::AggSpec;
use gsj_relational::{Database, Expr, LogicalPlan, Relation, Schema};
use std::sync::Arc;

/// Which implementation answers the semantic joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Conceptual baseline: HER + RExt at query time.
    Baseline,
    /// Pre-extracted relations for well-behaved joins; heuristic joins
    /// otherwise.
    Optimized,
    /// Heuristic joins for everything.
    Heuristic,
}

/// The gSQL query engine: a relational catalog, registered graphs, and the
/// per-graph extraction machinery.
pub struct GsqlEngine {
    /// The relational database `D`.
    pub db: Database,
    graphs: FxHashMap<String, LabeledGraph>,
    id_attrs: FxHashMap<String, String>,
    rexts: FxHashMap<String, Arc<Rext>>,
    profiles: FxHashMap<String, GraphProfile>,
    her_cfg: HerConfig,
    er_cfg: ErConfig,
    k: usize,
}

impl GsqlEngine {
    /// New engine over a database.
    pub fn new(db: Database) -> Self {
        GsqlEngine {
            db,
            graphs: FxHashMap::default(),
            id_attrs: FxHashMap::default(),
            rexts: FxHashMap::default(),
            profiles: FxHashMap::default(),
            her_cfg: HerConfig::default(),
            er_cfg: ErConfig::default(),
            k: 3,
        }
    }

    /// Register a graph under a name usable in `e-join G<...>`.
    pub fn add_graph(&mut self, name: impl Into<String>, g: LabeledGraph) -> &mut Self {
        self.graphs.insert(name.into(), g);
        self
    }

    /// Declare a base relation's tuple-id attribute.
    pub fn set_id_attr(&mut self, relation: &str, id_attr: &str) -> &mut Self {
        self.id_attrs.insert(relation.into(), id_attr.into());
        self
    }

    /// Attach a trained RExt scheme to a graph (needed for `Baseline`).
    pub fn set_rext(&mut self, graph: &str, rext: Arc<Rext>) -> &mut Self {
        self.rexts.insert(graph.into(), rext);
        self
    }

    /// Attach an offline profile to a graph (needed for `Optimized` /
    /// `Heuristic`).
    pub fn set_profile(&mut self, graph: &str, profile: GraphProfile) -> &mut Self {
        self.profiles.insert(graph.into(), profile);
        self
    }

    /// Access a graph's profile.
    pub fn profile(&self, graph: &str) -> Option<&GraphProfile> {
        self.profiles.get(graph)
    }

    /// Mutable access (IncExt commits updated extractions through this).
    pub fn profile_mut(&mut self, graph: &str) -> Option<&mut GraphProfile> {
        self.profiles.get_mut(graph)
    }

    /// Access a registered graph.
    pub fn graph(&self, name: &str) -> Option<&LabeledGraph> {
        self.graphs.get(name)
    }

    /// Mutable access to a registered graph (for applying `ΔG`).
    pub fn graph_mut(&mut self, name: &str) -> Option<&mut LabeledGraph> {
        self.graphs.get_mut(name)
    }

    /// Set the link-join hop bound `k`.
    pub fn set_k(&mut self, k: usize) -> &mut Self {
        self.k = k;
        self
    }

    /// Configure HER.
    pub fn set_her_config(&mut self, cfg: HerConfig) -> &mut Self {
        self.her_cfg = cfg;
        self
    }

    /// Parse gSQL text.
    pub fn parse(&self, text: &str) -> Result<Query> {
        parse_query(text)
    }

    /// The linear-time well-behaved check of Section IV-A.
    pub fn is_well_behaved(&self, q: &Query) -> bool {
        is_well_behaved(q, &self.profiles, &self.id_attrs)
    }

    /// Parse and execute.
    pub fn run(&self, text: &str, strategy: Strategy) -> Result<Relation> {
        let q = self.parse(text)?;
        self.run_query(&q, strategy)
    }

    /// Execute a parsed query.
    pub fn run_query(&self, q: &Query, strategy: Strategy) -> Result<Relation> {
        // 1. Evaluate FROM items.
        let mut items: Vec<Relation> = Vec::with_capacity(q.from.len());
        for (i, item) in q.from.iter().enumerate() {
            items.push(self.eval_from_item(item, i, strategy)?);
        }
        if items.is_empty() {
            return Err(GsjError::Parse("empty FROM clause".into()));
        }

        // 2. Bind WHERE conjuncts against the full combined schema: bare
        //    identifiers that resolve nowhere become string literals (the
        //    paper writes `T.pid = fd1`).
        let mut all_attrs: Vec<String> = Vec::new();
        for r in &items {
            all_attrs.extend(r.schema().attrs().iter().cloned());
        }
        let full_schema = Schema::new("q".to_string(), all_attrs).map_err(|e| {
            GsjError::Schema(format!(
                "FROM items must have distinct attribute names (add aliases): {e}"
            ))
        })?;
        let conjuncts: Vec<Expr> = match &q.where_clause {
            None => Vec::new(),
            Some(w) => split_conjuncts(w)
                .into_iter()
                .map(|c| bind_expr(c, &full_schema))
                .collect::<Result<_>>()?,
        };
        let mut applied = vec![false; conjuncts.len()];

        // 3. Fold the items left-to-right with predicate pushdown.
        let mut acc = items.remove(0);
        acc = apply_applicable(acc, &conjuncts, &mut applied)?;
        for item in items {
            let item = apply_applicable(item, &conjuncts, &mut applied)?;
            // Conjuncts usable as the join predicate: resolvable on the
            // combined schema, not yet applied.
            let mut combined_attrs = acc.schema().attrs().to_vec();
            combined_attrs.extend(item.schema().attrs().iter().cloned());
            let combined = Schema::new("j".to_string(), combined_attrs)?;
            let mut join_pred: Option<Expr> = None;
            for (c, done) in conjuncts.iter().zip(applied.iter_mut()) {
                if *done || !resolves(c, &combined) {
                    continue;
                }
                *done = true;
                join_pred = Some(match join_pred {
                    None => c.clone(),
                    Some(p) => p.and(c.clone()),
                });
            }
            let pred = join_pred.unwrap_or_else(|| Expr::lit(true));
            acc = theta_join(&acc, &item, &pred)?;
        }

        // 4. Any remaining conjunct must resolve now.
        for (c, done) in conjuncts.iter().zip(applied.iter()) {
            if !*done {
                if !resolves(c, acc.schema()) {
                    return Err(GsjError::NotFound(format!(
                        "WHERE references unknown columns: {:?}",
                        c.columns()
                    )));
                }
                let plan = LogicalPlan::Values(acc).select(c.clone());
                acc = gsj_relational::execute(&plan, &self.db)?;
            }
        }

        // 5. Projection / aggregation, then ORDER BY / LIMIT.
        let mut rel = self.project(q, acc)?;
        if !q.order_by.is_empty() {
            let plan = LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Values(rel)),
                by: q.order_by.clone(),
                desc: q.order_desc,
            };
            rel = gsj_relational::execute(&plan, &self.db)?;
        }
        if let Some(n) = q.limit {
            let plan = LogicalPlan::Limit {
                input: Box::new(LogicalPlan::Values(rel)),
                n,
            };
            rel = gsj_relational::execute(&plan, &self.db)?;
        }
        Ok(rel)
    }

    /// An EXPLAIN-style description of how the query would be executed
    /// under `strategy`: per semantic join, the traced base relation,
    /// keyword coverage by `A_R`, and the implementation chosen
    /// (static/dynamic rewrite over pre-extracted relations, heuristic
    /// join, or online HER + RExt).
    pub fn explain(&self, q: &Query, strategy: Strategy) -> String {
        let mut out = String::new();
        self.explain_query(q, strategy, 0, &mut out);
        out
    }

    fn explain_query(&self, q: &Query, strategy: Strategy, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        for item in &q.from {
            match item {
                FromItem::Plain { source, alias } => match source {
                    Source::Base(name) => {
                        let _ = writeln!(
                            out,
                            "{pad}scan {name}{}",
                            alias.as_deref().map(|a| format!(" as {a}")).unwrap_or_default()
                        );
                    }
                    Source::Sub(sub) => {
                        let _ = writeln!(out, "{pad}subquery:");
                        self.explain_query(sub, strategy, depth + 1, out);
                    }
                },
                FromItem::EJoin {
                    source,
                    graph,
                    keywords,
                    ..
                } => {
                    let base = source_base(source, &self.id_attrs);
                    let covered = base
                        .as_deref()
                        .and_then(|b| self.profiles.get(graph).map(|p| p.covers(b, keywords)))
                        .unwrap_or(false);
                    let how = match strategy {
                        Strategy::Baseline => "online HER + RExt (conceptual baseline)",
                        Strategy::Heuristic => "heuristic join (schema match + ER)",
                        Strategy::Optimized if covered => {
                            if matches!(source, Source::Base(_)) {
                                "static rewrite: S ⋈ f(D,G) ⋈ h(D,G)"
                            } else {
                                "dynamic rewrite: Q ⋈ f(D,G) ⋈ h(D,G)"
                            }
                        }
                        Strategy::Optimized => "heuristic join (A ⊄ A_R → not well-behaved)",
                    };
                    let _ = writeln!(
                        out,
                        "{pad}e-join {graph}<{}> over {} — {how}",
                        keywords.join(", "),
                        base.as_deref().unwrap_or("<untraceable>"),
                    );
                    if let Source::Sub(sub) = source {
                        self.explain_query(sub, strategy, depth + 1, out);
                    }
                }
                FromItem::LJoin { left, graph, right, .. } => {
                    let lbase = source_base(left, &self.id_attrs);
                    let rbase = source_base(right, &self.id_attrs);
                    let how = match strategy {
                        Strategy::Baseline => "online HER + bidirectional BFS",
                        Strategy::Heuristic => "heuristic: ER to gτ(G) + connectivity",
                        Strategy::Optimized => "pre-matched f(D,G) + g_L connectivity cache",
                    };
                    let _ = writeln!(
                        out,
                        "{pad}l-join <{graph}> {} × {} (k = {}) — {how}",
                        lbase.as_deref().unwrap_or("<untraceable>"),
                        rbase.as_deref().unwrap_or("<untraceable>"),
                        self.k,
                    );
                }
            }
        }
        let pad2 = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{pad2}well-behaved: {}",
            is_well_behaved(q, &self.profiles, &self.id_attrs)
        );
    }

    fn project(&self, q: &Query, input: Relation) -> Result<Relation> {
        if q.projections == vec![Projection::Star] {
            return Ok(input);
        }
        let has_agg = q
            .projections
            .iter()
            .any(|p| matches!(p, Projection::Agg { .. }));
        if has_agg {
            // Explicit GROUP BY wins; otherwise SQL-style implicit
            // grouping: non-aggregate select columns become the group
            // keys.
            let explicit: Vec<String> = q
                .group_by
                .iter()
                .map(|c| {
                    Expr::resolve_column(input.schema(), c)
                        .map(|pos| input.schema().attrs()[pos].clone())
                })
                .collect::<Result<_>>()?;
            let mut group_by = Vec::new();
            let mut aggs = Vec::new();
            let mut out_names = Vec::new();
            for p in &q.projections {
                match p {
                    Projection::Col { name, alias } => {
                        let pos = Expr::resolve_column(input.schema(), name)?;
                        let resolved = input.schema().attrs()[pos].clone();
                        if !explicit.is_empty() && !explicit.contains(&resolved) {
                            return Err(GsjError::Schema(format!(
                                "column `{name}` must appear in GROUP BY"
                            )));
                        }
                        group_by.push(resolved);
                        out_names.push(alias.clone().unwrap_or_else(|| name.clone()));
                    }
                    Projection::Agg { func, col, alias } => {
                        let resolved = if col == "*" {
                            "*".to_string()
                        } else {
                            let pos = Expr::resolve_column(input.schema(), col)?;
                            input.schema().attrs()[pos].clone()
                        };
                        let default_name = format!("{func}_{}", Schema::base_name(&resolved));
                        let name = alias.clone().unwrap_or(default_name);
                        aggs.push(AggSpec::new(*func, resolved, name.clone()));
                        out_names.push(name);
                    }
                    Projection::Star => {
                        return Err(GsjError::Unsupported(
                            "cannot mix * with aggregates".into(),
                        ))
                    }
                }
            }
            let plan = LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::Values(input)),
                group_by,
                aggs,
            };
            let rel = gsj_relational::execute(&plan, &self.db)?;
            return rename_attrs(rel, &out_names);
        }
        // Plain projection with optional renaming.
        let mut positions = Vec::new();
        let mut names = Vec::new();
        for p in &q.projections {
            if let Projection::Col { name, alias } = p {
                positions.push(Expr::resolve_column(input.schema(), name)?);
                names.push(alias.clone().unwrap_or_else(|| name.clone()));
            }
        }
        let schema = Schema::new(input.schema().name().to_string(), names)?;
        let mut out = Relation::empty(schema);
        for t in input.tuples() {
            out.push(t.project(&positions))?;
        }
        Ok(out)
    }

    fn eval_source(&self, source: &Source, strategy: Strategy) -> Result<Relation> {
        match source {
            Source::Base(name) => Ok(self.db.get(name)?.clone()),
            Source::Sub(q) => self.run_query(q, strategy),
        }
    }

    /// The id attribute *as present in* a source's output schema.
    fn actual_id_attr(&self, rel: &Relation, base: &str) -> Result<String> {
        let id = self.id_attrs.get(base).ok_or_else(|| {
            GsjError::Config(format!("no id attribute registered for `{base}`"))
        })?;
        rel.schema()
            .attrs()
            .iter()
            .find(|a| Schema::base_name(a) == id)
            .cloned()
            .ok_or_else(|| {
                GsjError::Schema(format!(
                    "source schema lacks the id attribute `{id}` of `{base}`"
                ))
            })
    }

    fn the_graph(&self, name: &str) -> Result<&LabeledGraph> {
        self.graphs
            .get(name)
            .ok_or_else(|| GsjError::NotFound(format!("graph `{name}`")))
    }

    fn eval_from_item(
        &self,
        item: &FromItem,
        index: usize,
        strategy: Strategy,
    ) -> Result<Relation> {
        match item {
            FromItem::Plain { source, alias } => {
                let rel = self.eval_source(source, strategy)?;
                let name = alias.clone().unwrap_or_else(|| match source {
                    Source::Base(b) => b.clone(),
                    Source::Sub(_) => format!("sub{index}"),
                });
                Ok(rel.qualified(&name))
            }
            FromItem::EJoin {
                source,
                graph,
                keywords,
                alias,
            } => {
                let rel = self.eval_source(source, strategy)?;
                let base = source_base(source, &self.id_attrs).ok_or_else(|| {
                    GsjError::Unsupported(
                        "e-join source is not traceable to a base relation".into(),
                    )
                })?;
                let joined = self.eval_ejoin(&rel, &base, graph, keywords, strategy)?;
                Ok(match alias {
                    Some(a) => joined.qualified(a),
                    None => joined,
                })
            }
            FromItem::LJoin {
                left,
                graph,
                right,
                right_alias,
            } => self.eval_ljoin(left, graph, right, right_alias.as_deref(), strategy),
        }
    }

    fn eval_ejoin(
        &self,
        rel: &Relation,
        base: &str,
        graph: &str,
        keywords: &[String],
        strategy: Strategy,
    ) -> Result<Relation> {
        let id_attr = self.actual_id_attr(rel, base)?;
        let g = self.the_graph(graph)?;
        match strategy {
            Strategy::Baseline => {
                let rext = self.rexts.get(graph).ok_or_else(|| {
                    GsjError::Config(format!("no RExt registered for graph `{graph}`"))
                })?;
                let (joined, _state) =
                    enrichment_join(rel, &id_attr, g, keywords, rext, &self.her_cfg)?;
                Ok(joined)
            }
            Strategy::Optimized => {
                let profile = self.profiles.get(graph).ok_or_else(|| {
                    GsjError::Config(format!("no profile for graph `{graph}`"))
                })?;
                if profile.covers(base, keywords) {
                    let ex = profile.extraction(base)?;
                    enrichment_join_precomputed(
                        rel,
                        &id_attr,
                        &ex.matches,
                        &ex.dg,
                        Some(keywords),
                    )
                } else {
                    // Not well-behaved → heuristic (Section IV-B).
                    crate::heuristic::heuristic_enrichment(
                        rel,
                        Some(&id_attr),
                        keywords,
                        &profile.typed,
                        &self.er_cfg,
                    )
                }
            }
            Strategy::Heuristic => {
                let profile = self.profiles.get(graph).ok_or_else(|| {
                    GsjError::Config(format!("no profile for graph `{graph}`"))
                })?;
                crate::heuristic::heuristic_enrichment(
                    rel,
                    Some(&id_attr),
                    keywords,
                    &profile.typed,
                    &self.er_cfg,
                )
            }
        }
    }

    fn eval_ljoin(
        &self,
        left: &Source,
        graph: &str,
        right: &Source,
        right_alias: Option<&str>,
        strategy: Strategy,
    ) -> Result<Relation> {
        let lbase = source_base(left, &self.id_attrs).ok_or_else(|| {
            GsjError::Unsupported("l-join left source not traceable".into())
        })?;
        let rbase = source_base(right, &self.id_attrs).ok_or_else(|| {
            GsjError::Unsupported("l-join right source not traceable".into())
        })?;
        let lalias = lbase.clone();
        let ralias = match right_alias {
            Some(a) => a.to_string(),
            None if rbase != lbase => rbase.clone(),
            None => {
                return Err(GsjError::Parse(
                    "self l-join requires an alias for the right side".into(),
                ))
            }
        };
        let lrel = self.eval_source(left, strategy)?.qualified(&lalias);
        let rrel = self.eval_source(right, strategy)?.qualified(&ralias);
        let lid = self.actual_id_attr(&lrel, &lbase)?;
        let rid = self.actual_id_attr(&rrel, &rbase)?;
        let g = self.the_graph(graph)?;
        match strategy {
            Strategy::Baseline => {
                link_join(&lrel, &lid, &rrel, &rid, g, self.k, &self.her_cfg)
            }
            Strategy::Optimized => {
                let profile = self.profiles.get(graph).ok_or_else(|| {
                    GsjError::Config(format!("no profile for graph `{graph}`"))
                })?;
                let m1 = &profile.extraction(&lbase)?.matches;
                let m2 = &profile.extraction(&rbase)?.matches;
                // Distinct matched vertices actually present in each side.
                let lpos = lrel.schema().require(&lid)?;
                let rpos = rrel.schema().require(&rid)?;
                let mut lv: Vec<VertexId> = lrel
                    .tuples()
                    .iter()
                    .filter_map(|t| m1.vertex_of(t.get(lpos)))
                    .collect();
                lv.sort();
                lv.dedup();
                let mut rv: Vec<VertexId> = rrel
                    .tuples()
                    .iter()
                    .filter_map(|t| m2.vertex_of(t.get(rpos)))
                    .collect();
                rv.sort();
                rv.dedup();
                let signature = link_signature(graph, &lbase, &rbase, self.k, &lv, &rv);
                let gl = match profile.cached_link(&signature) {
                    Some(rel) => rel,
                    None => {
                        let rel = connectivity_relation(g, &lv, &rv, self.k, "g_l");
                        profile.cache_link(signature, rel.clone());
                        rel
                    }
                };
                let pairs: FxHashSet<(i64, i64)> = gl
                    .tuples()
                    .iter()
                    .filter_map(|t| Some((t.get(0).as_int()?, t.get(1).as_int()?)))
                    .collect();
                // Emit tuple pairs whose matched vertices are connected.
                let mut attrs = lrel.schema().attrs().to_vec();
                attrs.extend(rrel.schema().attrs().iter().cloned());
                let schema = Schema::new(format!("{lalias}_lj_{ralias}"), attrs)?;
                let mut out = Relation::empty(schema);
                for t1 in lrel.tuples() {
                    let Some(v1) = m1.vertex_of(t1.get(lpos)) else { continue };
                    for t2 in rrel.tuples() {
                        let Some(v2) = m2.vertex_of(t2.get(rpos)) else { continue };
                        if pairs.contains(&(v1.0 as i64, v2.0 as i64)) {
                            out.push(t1.concat(t2))?;
                        }
                    }
                }
                Ok(out)
            }
            Strategy::Heuristic => {
                let profile = self.profiles.get(graph).ok_or_else(|| {
                    GsjError::Config(format!("no profile for graph `{graph}`"))
                })?;
                crate::heuristic::heuristic_link(
                    &lrel,
                    Some(&lid),
                    &rrel,
                    Some(&rid),
                    &profile.typed,
                    g,
                    self.k,
                    &self.er_cfg,
                )
            }
        }
    }
}

/// `g_L` cache key: graph, bases, k, and the participating vertex sets.
fn link_signature(
    graph: &str,
    lbase: &str,
    rbase: &str,
    k: usize,
    lv: &[VertexId],
    rv: &[VertexId],
) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = gsj_common::FxHasher::default();
    lv.hash(&mut h);
    rv.hash(&mut h);
    format!("{graph}|{lbase}|{rbase}|{k}|{:x}", h.finish())
}

/// Split a predicate into top-level conjuncts.
fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = split_conjuncts(a);
            out.extend(split_conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Do all column references of `e` resolve in `schema`?
fn resolves(e: &Expr, schema: &Schema) -> bool {
    e.columns()
        .iter()
        .all(|c| Expr::resolve_column(schema, c).is_ok())
}

/// Rewrite unresolvable *bare* identifiers into string literals; error on
/// unresolvable qualified names.
fn bind_expr(e: Expr, schema: &Schema) -> Result<Expr> {
    Ok(match e {
        Expr::Col(name) => {
            if Expr::resolve_column(schema, &name).is_ok() {
                Expr::Col(name)
            } else if !name.contains('.') {
                Expr::Lit(Value::str(name))
            } else {
                return Err(GsjError::NotFound(format!("column `{name}`")));
            }
        }
        Expr::Lit(v) => Expr::Lit(v),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            op,
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::And(l, r) => Expr::And(
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Not(x) => Expr::Not(Box::new(bind_expr(*x, schema)?)),
        Expr::IsNull(x) => Expr::IsNull(Box::new(bind_expr(*x, schema)?)),
    })
}

/// Apply every not-yet-applied conjunct that fully resolves on `rel`.
fn apply_applicable(
    rel: Relation,
    conjuncts: &[Expr],
    applied: &mut [bool],
) -> Result<Relation> {
    let mut rel = rel;
    for (c, done) in conjuncts.iter().zip(applied.iter_mut()) {
        if *done || !resolves(c, rel.schema()) {
            continue;
        }
        *done = true;
        let plan = LogicalPlan::Values(rel).select(c.clone());
        rel = gsj_relational::execute(&plan, &Database::new())?;
    }
    Ok(rel)
}

/// Rename a relation's attributes positionally.
fn rename_attrs(rel: Relation, names: &[String]) -> Result<Relation> {
    let (schema, tuples) = rel.into_parts();
    let new = Schema::new(schema.name().to_string(), names.to_vec())?;
    Relation::new(new, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PathKind, RExtConfig};
    use crate::profile::RelationSpec;
    use crate::typed::TypedConfig;

    /// The Fig.-1 setting, small enough for unit tests: customers and
    /// products in D; a product knowledge graph and a social graph.
    fn engine() -> GsqlEngine {
        let mut db = Database::new();
        let mut customer = Relation::empty(Schema::of(
            "customer",
            &["cid", "name", "credit", "bal"],
        ));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob Jones", "fair", 500_000),
            ("cid02", "Bob Brown", "good", 110_000),
            ("cid03", "Guy Ritchie", "good", 50_000),
            ("cid04", "Ada King", "fair", 100_000),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        db.insert(customer);
        let mut product =
            Relation::empty(Schema::of("product", &["pid", "pname", "ptype", "risk"]));
        for (pid, pname, ptype, risk) in [
            ("fd1", "GL ESG", "Funds", "medium"),
            ("fd2", "Beta", "Stocks", "high"),
            ("fd3", "GL100", "Funds", "low"),
            ("fd4", "RainForest", "Stocks", "medium"),
        ] {
            product
                .push_values(vec![
                    Value::str(pid),
                    Value::str(pname),
                    Value::str(ptype),
                    Value::str(risk),
                ])
                .unwrap();
        }
        db.insert(product);

        // Product knowledge graph.
        let mut g = LabeledGraph::new();
        let prod_ty = g.add_vertex("ProductEntity");
        let companies = ["company1", "company1", "company2", "company2"];
        let locs = ["UK", "UK", "US", "US"];
        let names = ["GL ESG", "Beta", "GL100", "RainForest"];
        let types = ["Funds", "Stocks", "Funds", "Stocks"];
        for i in 0..4 {
            let p = g.add_vertex(&format!("pid{}", i + 1));
            g.add_edge(p, "type", prod_ty);
            let n = g.add_vertex(names[i]);
            g.add_edge(p, "name", n);
            let t = g.add_vertex(types[i]);
            g.add_edge(p, "kind", t);
            let c = g.add_vertex(companies[i]);
            g.add_edge(p, "issue", c);
            let l = g.add_vertex(locs[i]);
            g.add_edge(c, "regloc", l);
        }

        // Social graph for link joins.
        let mut gs = LabeledGraph::new();
        let people = ["Bob Jones", "Bob Brown", "Guy Ritchie", "Ada King"];
        let mut ids = Vec::new();
        for (i, name) in people.iter().enumerate() {
            let v = gs.add_vertex(&format!("person{i}"));
            let n = gs.add_vertex(name);
            gs.add_edge(v, "name", n);
            ids.push(v);
        }
        // Bob Brown - Ada King - Guy Ritchie chain.
        gs.add_edge(ids[1], "knows", ids[3]);
        gs.add_edge(ids[3], "knows", ids[2]);

        let rext_cfg = RExtConfig {
            k: 3,
            h: 10,
            m: 2,
            path: PathKind::Random,
            threads: 1,
            seed: 21,
            ..RExtConfig::default()
        };
        let rext = Arc::new(Rext::train(&g, rext_cfg.clone()).unwrap());
        let rext_s = Arc::new(Rext::train(&gs, rext_cfg).unwrap());

        let mut engine = GsqlEngine::new(db);
        engine.set_id_attr("customer", "cid");
        engine.set_id_attr("product", "pid");
        // The social graph only carries a name property per person, so a
        // third of the customer attributes can match: relax the threshold
        // (the paper configures JedAI per collection the same way).
        let her = HerConfig {
            min_score: 0.3,
            ..HerConfig::default()
        };
        engine.set_her_config(her.clone());

        let profile = GraphProfile::build(
            &g,
            &engine.db,
            vec![RelationSpec::new("product", "pid", &["company", "loc"])],
            &rext,
            &her,
            Some(&TypedConfig {
                default_keywords: vec!["name".into(), "company".into(), "loc".into()],
                ..TypedConfig::default()
            }),
        )
        .unwrap();
        let profile_s = GraphProfile::build(
            &gs,
            &engine.db,
            vec![RelationSpec::new("customer", "cid", &["name"])],
            &rext_s,
            &her,
            None,
        )
        .unwrap();
        engine.add_graph("G", g).add_graph("Gs", gs);
        engine.set_rext("G", rext).set_rext("Gs", rext_s);
        engine.set_profile("G", profile).set_profile("Gs", profile_s);
        engine.set_k(2);
        engine
    }

    #[test]
    fn q1_static_enrichment_optimized() {
        let e = engine();
        let q = "select risk, company from product e-join G <company, loc> as T \
                 where T.pid = fd1 and T.loc = UK";
        let parsed = e.parse(q).unwrap();
        assert!(e.is_well_behaved(&parsed));
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::str("medium"));
        assert_eq!(r.tuples()[0].get(1), &Value::str("company1"));
    }

    #[test]
    fn q1_baseline_agrees_with_optimized() {
        let e = engine();
        let q = "select risk, company from product e-join G <company, loc> as T \
                 where T.pid = fd1";
        let opt = e.run(q, Strategy::Optimized).unwrap();
        let base = e.run(q, Strategy::Baseline).unwrap();
        assert_eq!(opt.len(), 1);
        assert_eq!(base.len(), 1);
        assert_eq!(opt.tuples()[0].get(0), base.tuples()[0].get(0));
    }

    #[test]
    fn q2_join_on_extracted_attribute() {
        let e = engine();
        // fd1 and fd2 share company1 via the graph.
        let q = "select T1.pid, T2.pid from \
                 product e-join G <company> as T1, product e-join G <company> as T2 \
                 where T1.pid = fd1 and T1.company = T2.company and T2.pid <> fd1";
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(1), &Value::str("fd2"));
    }

    #[test]
    fn q3_link_join_finds_connected_customers() {
        let e = engine();
        let q = "select * from customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02 and customerB.credit = good";
        let r = e.run(q, Strategy::Optimized).unwrap();
        // Within k=2 of Bob Brown: Ada (fair), Guy (good) → only Guy kept
        // ... plus Bob Brown himself (good, distance 0).
        let names: Vec<String> = r
            .column("customerB.name")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(names.contains(&"Guy Ritchie".to_string()), "{names:?}");
        assert!(!names.contains(&"Ada King".to_string()));
        // And the baseline strategy agrees.
        let rb = e.run(q, Strategy::Baseline).unwrap();
        assert_eq!(r.len(), rb.len());
    }

    #[test]
    fn link_join_cache_is_populated() {
        let e = engine();
        let q = "select * from customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02";
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 0);
        e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 1);
        // Second run hits the cache (observable: len stays 1).
        e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 1);
    }

    #[test]
    fn heuristic_strategy_answers_without_her_rext() {
        let e = engine();
        let q = "select pname, company from product e-join G <company> as T \
                 where T.risk = medium";
        let r = e.run(q, Strategy::Heuristic).unwrap();
        assert!(!r.is_empty());
        assert!(r.schema().contains("company"));
    }

    #[test]
    fn non_well_behaved_keywords_fall_back() {
        let e = engine();
        // `issuer` ∉ A_R = {company, loc} → not well-behaved.
        let q = "select * from product e-join G <issuer> as T";
        let parsed = e.parse(q).unwrap();
        assert!(!e.is_well_behaved(&parsed));
        // Optimized still answers it (via heuristic fallback).
        let r = e.run(q, Strategy::Optimized);
        assert!(r.is_ok());
    }

    #[test]
    fn aggregates_and_negation() {
        let e = engine();
        let q = "select credit, count(*) as n from customer \
                 where not credit = fair";
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().attrs(), &["credit".to_string(), "n".to_string()]);
        assert_eq!(r.tuples()[0].get(1), &Value::Int(2));
    }

    #[test]
    fn dynamic_join_over_subquery() {
        let e = engine();
        let q = "select pid, company from \
                 (select pid, pname, ptype, risk from product where risk = medium) \
                 e-join G <company, loc> as T";
        let parsed = e.parse(q).unwrap();
        assert!(e.is_well_behaved(&parsed), "sub-query projects one base");
        let r = e.run(q, Strategy::Optimized).unwrap();
        // fd1 and fd4 are medium-risk.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn plain_sql_still_works() {
        let e = engine();
        let r = e
            .run(
                "select name from customer where bal >= 100000 and credit = good",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::str("Bob Brown"));
    }

    #[test]
    fn string_literals_and_bare_idents_agree() {
        let e = engine();
        let bare = e
            .run("select * from customer where credit = good", Strategy::Optimized)
            .unwrap();
        let quoted = e
            .run("select * from customer where credit = 'good'", Strategy::Optimized)
            .unwrap();
        assert_eq!(bare.len(), quoted.len());
    }

    #[test]
    fn order_by_and_limit() {
        let e = engine();
        let r = e
            .run(
                "select cid, bal from customer order by bal desc limit 2",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(1), &Value::Int(500_000));
        assert_eq!(r.tuples()[1].get(1), &Value::Int(110_000));
        let asc = e
            .run("select cid from customer order by cid limit 1", Strategy::Optimized)
            .unwrap();
        assert_eq!(asc.tuples()[0].get(0), &Value::str("cid01"));
    }

    #[test]
    fn explicit_group_by() {
        let e = engine();
        let r = e
            .run(
                "select credit, count(*) as n from customer group by credit order by n desc",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.tuples()[0].get(1).as_int() >= r.tuples()[1].get(1).as_int());
        // A selected column outside GROUP BY is rejected.
        let bad = e.run(
            "select name, count(*) as n from customer group by credit",
            Strategy::Optimized,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn explain_names_the_rewrite() {
        let e = engine();
        let q = e
            .parse("select risk from product e-join G <company, loc> as T")
            .unwrap();
        let plan = e.explain(&q, Strategy::Optimized);
        assert!(plan.contains("static rewrite"), "{plan}");
        assert!(plan.contains("well-behaved: true"), "{plan}");
        let q2 = e.parse("select * from product e-join G <issuer> as T").unwrap();
        let plan2 = e.explain(&q2, Strategy::Optimized);
        assert!(plan2.contains("heuristic"), "{plan2}");
        let q3 = e
            .parse("select * from customer l-join <Gs> customer as b")
            .unwrap();
        let plan3 = e.explain(&q3, Strategy::Optimized);
        assert!(plan3.contains("g_L"), "{plan3}");
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let e = engine();
        let r = e.run("select * from product e-join NoSuch <x> as T", Strategy::Baseline);
        assert!(r.is_err());
    }
}
