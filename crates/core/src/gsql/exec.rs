//! The gSQL engine facade: rewriting queries into relational operations
//! over the engine's catalog plus the semantic-join machinery, under
//! three strategies (Section IV).
//!
//! - [`Strategy::Baseline`] — the conceptual-level method: every semantic
//!   join calls HER and RExt online.
//! - [`Strategy::Optimized`] — well-behaved joins are rewritten to
//!   three-way natural joins over the materialized `f(D,G)` / `h(D,G)`
//!   (static joins) or their sub-query variants (dynamic joins), with the
//!   `g_L` connectivity cache for link joins; non-well-behaved joins fall
//!   back to heuristic joins.
//! - [`Strategy::Heuristic`] — heuristic joins are forced for *all*
//!   semantic joins (the Exp-2(II) protocol).
//!
//! The work happens in two sibling modules: [`super::plan`] turns the
//! AST into a [`super::plan::QueryPlan`] with semantic joins as
//! first-class physical operators and executes it with per-operator
//! counters; [`super::strategies`] holds the strategy → implementation
//! rewrites. This module keeps the engine state and the public
//! `run` / `run_query` / `explain` surface, and adds
//! [`GsqlEngine::explain_analyze`] for counter-annotated plans.

use super::analyze::{is_well_behaved, source_base};
use super::ast::{FromItem, Query, Source};
use super::parser::parse_query;
use super::strategies;
use crate::profile::GraphProfile;
use crate::rext::Rext;
use gsj_common::{FxHashMap, GsjError, QueryGovernor, Result};
use gsj_graph::LabeledGraph;
use gsj_her::relation_er::ErConfig;
use gsj_her::HerConfig;
use gsj_relational::physical::ExecContext;
use gsj_relational::{Database, Relation, Schema};
use std::sync::Arc;

/// Which implementation answers the semantic joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Conceptual baseline: HER + RExt at query time.
    Baseline,
    /// Pre-extracted relations for well-behaved joins; heuristic joins
    /// otherwise.
    Optimized,
    /// Heuristic joins for everything.
    Heuristic,
}

impl std::str::FromStr for Strategy {
    type Err = GsjError;

    /// Parse the wire/CLI spelling (`baseline` / `optimized` /
    /// `heuristic`, case-insensitive).
    fn from_str(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "baseline" => Ok(Strategy::Baseline),
            "optimized" => Ok(Strategy::Optimized),
            "heuristic" => Ok(Strategy::Heuristic),
            other => Err(GsjError::Config(format!(
                "unknown strategy `{other}` (want baseline | optimized | heuristic)"
            ))),
        }
    }
}

/// The gSQL query engine: a relational catalog, registered graphs, and the
/// per-graph extraction machinery.
pub struct GsqlEngine {
    /// The relational database `D`.
    pub db: Database,
    pub(super) graphs: FxHashMap<String, LabeledGraph>,
    pub(super) id_attrs: FxHashMap<String, String>,
    pub(super) rexts: FxHashMap<String, Arc<Rext>>,
    pub(super) profiles: FxHashMap<String, GraphProfile>,
    pub(super) her_cfg: HerConfig,
    pub(super) er_cfg: ErConfig,
    pub(super) k: usize,
}

impl GsqlEngine {
    /// New engine over a database.
    pub fn new(db: Database) -> Self {
        GsqlEngine {
            db,
            graphs: FxHashMap::default(),
            id_attrs: FxHashMap::default(),
            rexts: FxHashMap::default(),
            profiles: FxHashMap::default(),
            her_cfg: HerConfig::default(),
            er_cfg: ErConfig::default(),
            k: 3,
        }
    }

    /// Register a graph under a name usable in `e-join G<...>`.
    pub fn add_graph(&mut self, name: impl Into<String>, g: LabeledGraph) -> &mut Self {
        self.graphs.insert(name.into(), g);
        self
    }

    /// Declare a base relation's tuple-id attribute.
    pub fn set_id_attr(&mut self, relation: &str, id_attr: &str) -> &mut Self {
        self.id_attrs.insert(relation.into(), id_attr.into());
        self
    }

    /// Attach a trained RExt scheme to a graph (needed for `Baseline`).
    pub fn set_rext(&mut self, graph: &str, rext: Arc<Rext>) -> &mut Self {
        self.rexts.insert(graph.into(), rext);
        self
    }

    /// Attach an offline profile to a graph (needed for `Optimized` /
    /// `Heuristic`).
    pub fn set_profile(&mut self, graph: &str, profile: GraphProfile) -> &mut Self {
        self.profiles.insert(graph.into(), profile);
        self
    }

    /// Access a graph's profile.
    pub fn profile(&self, graph: &str) -> Option<&GraphProfile> {
        self.profiles.get(graph)
    }

    /// Mutable access (IncExt commits updated extractions through this).
    pub fn profile_mut(&mut self, graph: &str) -> Option<&mut GraphProfile> {
        self.profiles.get_mut(graph)
    }

    /// Access a registered graph.
    pub fn graph(&self, name: &str) -> Option<&LabeledGraph> {
        self.graphs.get(name)
    }

    /// Mutable access to a registered graph (for applying `ΔG`).
    pub fn graph_mut(&mut self, name: &str) -> Option<&mut LabeledGraph> {
        self.graphs.get_mut(name)
    }

    /// Set the link-join hop bound `k`.
    pub fn set_k(&mut self, k: usize) -> &mut Self {
        self.k = k;
        self
    }

    /// Configure HER.
    pub fn set_her_config(&mut self, cfg: HerConfig) -> &mut Self {
        self.her_cfg = cfg;
        self
    }

    /// Parse gSQL text.
    pub fn parse(&self, text: &str) -> Result<Query> {
        parse_query(text)
    }

    /// The linear-time well-behaved check of Section IV-A.
    pub fn is_well_behaved(&self, q: &Query) -> bool {
        is_well_behaved(q, &self.profiles, &self.id_attrs)
    }

    /// Parse and execute.
    pub fn run(&self, text: &str, strategy: Strategy) -> Result<Relation> {
        let q = self.parse(text)?;
        self.run_query(&q, strategy)
    }

    /// Parse and execute under a governor (deadline / budgets / cancel).
    pub fn run_governed(
        &self,
        text: &str,
        strategy: Strategy,
        gov: &QueryGovernor,
    ) -> Result<Relation> {
        let q = self.parse(text)?;
        Ok(self.run_query_stats_governed(&q, strategy, gov)?.0)
    }

    /// Execute a parsed query.
    pub fn run_query(&self, q: &Query, strategy: Strategy) -> Result<Relation> {
        Ok(self.run_query_stats(q, strategy)?.0)
    }

    /// Execute a parsed query, returning the result together with the
    /// per-operator execution counters.
    pub fn run_query_stats(
        &self,
        q: &Query,
        strategy: Strategy,
    ) -> Result<(Relation, ExecContext)> {
        self.run_query_stats_governed(q, strategy, &QueryGovernor::unlimited())
    }

    /// [`GsqlEngine::run_query_stats`] under an explicit governor. This is
    /// the engine's outermost failure boundary: any panic that escapes the
    /// per-join recovery in [`super::strategies`] is caught here and
    /// converted to [`GsjError::Internal`], so callers always see a typed
    /// result, never an unwind.
    pub fn run_query_stats_governed(
        &self,
        q: &Query,
        strategy: Strategy,
        gov: &QueryGovernor,
    ) -> Result<(Relation, ExecContext)> {
        let run = || {
            let mut span = gsj_obs::span("gsql.query");
            span.field("strategy", format!("{strategy:?}"));
            gov.check("gsql.query")?;
            let plan = self.plan_query(q, strategy)?;
            let mut ctx = ExecContext::with_governor(gov.clone());
            let rel = self.execute_plan(&plan, &mut ctx)?;
            span.field("rows", rel.len());
            Ok((rel, ctx))
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(GsjError::Internal(format!("panic in gsql.query: {msg}")))
        })
    }

    /// An EXPLAIN-style description of how the query would be executed
    /// under `strategy`: per semantic join, the traced base relation,
    /// keyword coverage by `A_R`, and the implementation chosen
    /// (static/dynamic rewrite over pre-extracted relations, heuristic
    /// join, or online HER + RExt).
    pub fn explain(&self, q: &Query, strategy: Strategy) -> String {
        let mut out = String::new();
        self.explain_query(q, strategy, 0, &mut out);
        out
    }

    /// `EXPLAIN ANALYZE`: actually execute the query under `strategy` and
    /// append the per-operator counters — rows in/out, build/probe sizes
    /// for hash joins, and wall time — to the plan description, followed
    /// by one unified trace tree that merges the physical-operator stats
    /// with the pipeline stage spans (HER, RExt, BFS, joins) collected
    /// while the query ran.
    pub fn explain_analyze(&self, q: &Query, strategy: Strategy) -> Result<String> {
        self.explain_analyze_governed(q, strategy, &QueryGovernor::unlimited())
    }

    /// [`GsqlEngine::explain_analyze`] under an explicit governor, so a
    /// served `EXPLAIN ANALYZE` request still honours its deadline,
    /// budgets and disconnect cancellation.
    pub fn explain_analyze_governed(
        &self,
        q: &Query,
        strategy: Strategy,
        gov: &QueryGovernor,
    ) -> Result<String> {
        use gsj_obs::SpanRecord;
        // Force span collection for this query only, serialized against
        // other exclusive trace regions so drains don't interleave.
        let _region = gsj_obs::exclusive_region();
        let was = gsj_obs::tracing_enabled();
        gsj_obs::set_tracing(true);
        let _ = gsj_obs::take_spans(); // discard stale spans
        let watermark = gsj_obs::next_span_id();
        let result = self.run_query_stats_governed(q, strategy, gov);
        gsj_obs::set_tracing(was);
        let drained = gsj_obs::take_spans();
        let (rel, ctx) = result?;

        // Keep this query's spans: those opened on this thread after the
        // watermark, plus anything transitively parented under them
        // (other threads may record concurrently while the toggle is on).
        let me = gsj_obs::current_thread_ordinal();
        let mut keep: std::collections::HashSet<u64> = drained
            .iter()
            .filter(|s| s.thread == me && s.id > watermark)
            .map(|s| s.id)
            .collect();
        loop {
            let before = keep.len();
            for s in &drained {
                if let Some(p) = s.parent {
                    if keep.contains(&p) {
                        keep.insert(s.id);
                    }
                }
            }
            if keep.len() == before {
                break;
            }
        }
        let mut spans: Vec<SpanRecord> = drained
            .into_iter()
            .filter(|s| keep.contains(&s.id))
            .collect();
        let root = spans
            .iter()
            .find(|s| s.label == "gsql.query")
            .map(|s| (s.id, s.thread));

        // Bridge the physical-operator stats into the same tree: each op
        // becomes a synthetic span, parented by its operator parent or,
        // for top-level ops, by the query root span.
        let ids: Vec<u64> = ctx.ops().iter().map(|_| gsj_obs::next_span_id()).collect();
        for (i, op) in ctx.ops().iter().enumerate() {
            let mut fields = vec![
                ("rows_in".to_string(), op.rows_in.to_string()),
                ("rows_out".to_string(), op.rows_out.to_string()),
            ];
            if let Some(b) = op.build_rows {
                fields.push(("build_rows".to_string(), b.to_string()));
            }
            if let Some(p) = op.probe_rows {
                fields.push(("probe_rows".to_string(), p.to_string()));
            }
            spans.push(SpanRecord {
                id: ids[i],
                parent: op.parent.map(|p| ids[p]).or(root.map(|(id, _)| id)),
                label: op.label.clone(),
                fields,
                start_ns: op.start_ns,
                dur_ns: op.nanos.min(u64::MAX as u128) as u64,
                thread: root.map(|(_, t)| t).unwrap_or(0),
            });
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Ok(format!(
            "{}result: {} row(s)\n\n{}\ntrace:\n{}",
            self.explain(q, strategy),
            rel.len(),
            ctx.render(),
            gsj_obs::render_tree(&spans)
        ))
    }

    fn explain_query(&self, q: &Query, strategy: Strategy, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        for item in &q.from {
            match item {
                FromItem::Plain { source, alias } => match source {
                    Source::Base(name) => {
                        let _ = writeln!(
                            out,
                            "{pad}scan {name}{}",
                            alias
                                .as_deref()
                                .map(|a| format!(" as {a}"))
                                .unwrap_or_default()
                        );
                    }
                    Source::Sub(sub) => {
                        let _ = writeln!(out, "{pad}subquery:");
                        self.explain_query(sub, strategy, depth + 1, out);
                    }
                },
                FromItem::EJoin {
                    source,
                    graph,
                    keywords,
                    ..
                } => {
                    let base = source_base(source, &self.id_attrs);
                    let how = strategies::choose_ejoin(
                        self,
                        strategy,
                        base.as_deref(),
                        graph,
                        keywords,
                        matches!(source, Source::Base(_)),
                    )
                    .describe();
                    let _ = writeln!(
                        out,
                        "{pad}e-join {graph}<{}> over {} — {how}",
                        keywords.join(", "),
                        base.as_deref().unwrap_or("<untraceable>"),
                    );
                    if let Source::Sub(sub) = source {
                        self.explain_query(sub, strategy, depth + 1, out);
                    }
                }
                FromItem::LJoin {
                    left, graph, right, ..
                } => {
                    let lbase = source_base(left, &self.id_attrs);
                    let rbase = source_base(right, &self.id_attrs);
                    let how = strategies::choose_ljoin(strategy).describe();
                    let _ = writeln!(
                        out,
                        "{pad}l-join <{graph}> {} × {} (k = {}) — {how}",
                        lbase.as_deref().unwrap_or("<untraceable>"),
                        rbase.as_deref().unwrap_or("<untraceable>"),
                        self.k,
                    );
                }
            }
        }
        let pad2 = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{pad2}well-behaved: {}",
            is_well_behaved(q, &self.profiles, &self.id_attrs)
        );
    }

    /// The id attribute *as present in* a source's output schema.
    pub(super) fn actual_id_attr(&self, rel: &Relation, base: &str) -> Result<String> {
        let id = self
            .id_attrs
            .get(base)
            .ok_or_else(|| GsjError::Config(format!("no id attribute registered for `{base}`")))?;
        rel.schema()
            .attrs()
            .iter()
            .find(|a| Schema::base_name(a) == id)
            .cloned()
            .ok_or_else(|| {
                GsjError::Schema(format!(
                    "source schema lacks the id attribute `{id}` of `{base}`"
                ))
            })
    }

    pub(super) fn the_graph(&self, name: &str) -> Result<&LabeledGraph> {
        self.graphs
            .get(name)
            .ok_or_else(|| GsjError::NotFound(format!("graph `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PathKind, RExtConfig};
    use crate::profile::RelationSpec;
    use crate::typed::TypedConfig;
    use gsj_common::Value;

    /// The Fig.-1 setting, small enough for unit tests: customers and
    /// products in D; a product knowledge graph and a social graph.
    fn engine() -> GsqlEngine {
        let mut db = Database::new();
        let mut customer =
            Relation::empty(Schema::of("customer", &["cid", "name", "credit", "bal"]));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob Jones", "fair", 500_000),
            ("cid02", "Bob Brown", "good", 110_000),
            ("cid03", "Guy Ritchie", "good", 50_000),
            ("cid04", "Ada King", "fair", 100_000),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        db.insert(customer);
        let mut product =
            Relation::empty(Schema::of("product", &["pid", "pname", "ptype", "risk"]));
        for (pid, pname, ptype, risk) in [
            ("fd1", "GL ESG", "Funds", "medium"),
            ("fd2", "Beta", "Stocks", "high"),
            ("fd3", "GL100", "Funds", "low"),
            ("fd4", "RainForest", "Stocks", "medium"),
        ] {
            product
                .push_values(vec![
                    Value::str(pid),
                    Value::str(pname),
                    Value::str(ptype),
                    Value::str(risk),
                ])
                .unwrap();
        }
        db.insert(product);

        // Product knowledge graph.
        let mut g = LabeledGraph::new();
        let prod_ty = g.add_vertex("ProductEntity");
        let companies = ["company1", "company1", "company2", "company2"];
        let locs = ["UK", "UK", "US", "US"];
        let names = ["GL ESG", "Beta", "GL100", "RainForest"];
        let types = ["Funds", "Stocks", "Funds", "Stocks"];
        for i in 0..4 {
            let p = g.add_vertex(&format!("pid{}", i + 1));
            g.add_edge(p, "type", prod_ty);
            let n = g.add_vertex(names[i]);
            g.add_edge(p, "name", n);
            let t = g.add_vertex(types[i]);
            g.add_edge(p, "kind", t);
            let c = g.add_vertex(companies[i]);
            g.add_edge(p, "issue", c);
            let l = g.add_vertex(locs[i]);
            g.add_edge(c, "regloc", l);
        }

        // Social graph for link joins.
        let mut gs = LabeledGraph::new();
        let people = ["Bob Jones", "Bob Brown", "Guy Ritchie", "Ada King"];
        let mut ids = Vec::new();
        for (i, name) in people.iter().enumerate() {
            let v = gs.add_vertex(&format!("person{i}"));
            let n = gs.add_vertex(name);
            gs.add_edge(v, "name", n);
            ids.push(v);
        }
        // Bob Brown - Ada King - Guy Ritchie chain.
        gs.add_edge(ids[1], "knows", ids[3]);
        gs.add_edge(ids[3], "knows", ids[2]);

        let rext_cfg = RExtConfig {
            k: 3,
            h: 10,
            m: 2,
            path: PathKind::Random,
            threads: 1,
            seed: 21,
            ..RExtConfig::default()
        };
        let rext = Arc::new(Rext::train(&g, rext_cfg.clone()).unwrap());
        let rext_s = Arc::new(Rext::train(&gs, rext_cfg).unwrap());

        let mut engine = GsqlEngine::new(db);
        engine.set_id_attr("customer", "cid");
        engine.set_id_attr("product", "pid");
        // The social graph only carries a name property per person, so a
        // third of the customer attributes can match: relax the threshold
        // (the paper configures JedAI per collection the same way).
        let her = HerConfig {
            min_score: 0.3,
            ..HerConfig::default()
        };
        engine.set_her_config(her.clone());

        let profile = GraphProfile::build(
            &g,
            &engine.db,
            vec![RelationSpec::new("product", "pid", &["company", "loc"])],
            &rext,
            &her,
            Some(&TypedConfig {
                default_keywords: vec!["name".into(), "company".into(), "loc".into()],
                ..TypedConfig::default()
            }),
        )
        .unwrap();
        let profile_s = GraphProfile::build(
            &gs,
            &engine.db,
            vec![RelationSpec::new("customer", "cid", &["name"])],
            &rext_s,
            &her,
            None,
        )
        .unwrap();
        engine.add_graph("G", g).add_graph("Gs", gs);
        engine.set_rext("G", rext).set_rext("Gs", rext_s);
        engine
            .set_profile("G", profile)
            .set_profile("Gs", profile_s);
        engine.set_k(2);
        engine
    }

    #[test]
    fn q1_static_enrichment_optimized() {
        let e = engine();
        let q = "select risk, company from product e-join G <company, loc> as T \
                 where T.pid = fd1 and T.loc = UK";
        let parsed = e.parse(q).unwrap();
        assert!(e.is_well_behaved(&parsed));
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::str("medium"));
        assert_eq!(r.tuples()[0].get(1), &Value::str("company1"));
    }

    #[test]
    fn q1_baseline_agrees_with_optimized() {
        let e = engine();
        let q = "select risk, company from product e-join G <company, loc> as T \
                 where T.pid = fd1";
        let opt = e.run(q, Strategy::Optimized).unwrap();
        let base = e.run(q, Strategy::Baseline).unwrap();
        assert_eq!(opt.len(), 1);
        assert_eq!(base.len(), 1);
        assert_eq!(opt.tuples()[0].get(0), base.tuples()[0].get(0));
    }

    #[test]
    fn q2_join_on_extracted_attribute() {
        let e = engine();
        // fd1 and fd2 share company1 via the graph.
        let q = "select T1.pid, T2.pid from \
                 product e-join G <company> as T1, product e-join G <company> as T2 \
                 where T1.pid = fd1 and T1.company = T2.company and T2.pid <> fd1";
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(1), &Value::str("fd2"));
    }

    #[test]
    fn q3_link_join_finds_connected_customers() {
        let e = engine();
        let q = "select * from customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02 and customerB.credit = good";
        let r = e.run(q, Strategy::Optimized).unwrap();
        // Within k=2 of Bob Brown: Ada (fair), Guy (good) → only Guy kept
        // ... plus Bob Brown himself (good, distance 0).
        let names: Vec<String> = r
            .column("customerB.name")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(names.contains(&"Guy Ritchie".to_string()), "{names:?}");
        assert!(!names.contains(&"Ada King".to_string()));
        // And the baseline strategy agrees.
        let rb = e.run(q, Strategy::Baseline).unwrap();
        assert_eq!(r.len(), rb.len());
    }

    #[test]
    fn link_join_cache_is_populated() {
        let e = engine();
        let q = "select * from customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02";
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 0);
        e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 1);
        // Second run hits the cache (observable: len stays 1).
        e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(e.profile("Gs").unwrap().link_cache_len(), 1);
    }

    #[test]
    fn heuristic_strategy_answers_without_her_rext() {
        let e = engine();
        let q = "select pname, company from product e-join G <company> as T \
                 where T.risk = medium";
        let r = e.run(q, Strategy::Heuristic).unwrap();
        assert!(!r.is_empty());
        assert!(r.schema().contains("company"));
    }

    #[test]
    fn non_well_behaved_keywords_fall_back() {
        let e = engine();
        // `issuer` ∉ A_R = {company, loc} → not well-behaved.
        let q = "select * from product e-join G <issuer> as T";
        let parsed = e.parse(q).unwrap();
        assert!(!e.is_well_behaved(&parsed));
        // Optimized still answers it (via heuristic fallback).
        let r = e.run(q, Strategy::Optimized);
        assert!(r.is_ok());
    }

    #[test]
    fn aggregates_and_negation() {
        let e = engine();
        let q = "select credit, count(*) as n from customer \
                 where not credit = fair";
        let r = e.run(q, Strategy::Optimized).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().attrs(), &["credit".to_string(), "n".to_string()]);
        assert_eq!(r.tuples()[0].get(1), &Value::Int(2));
    }

    #[test]
    fn dynamic_join_over_subquery() {
        let e = engine();
        let q = "select pid, company from \
                 (select pid, pname, ptype, risk from product where risk = medium) \
                 e-join G <company, loc> as T";
        let parsed = e.parse(q).unwrap();
        assert!(e.is_well_behaved(&parsed), "sub-query projects one base");
        let r = e.run(q, Strategy::Optimized).unwrap();
        // fd1 and fd4 are medium-risk.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn plain_sql_still_works() {
        let e = engine();
        let r = e
            .run(
                "select name from customer where bal >= 100000 and credit = good",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::str("Bob Brown"));
    }

    #[test]
    fn string_literals_and_bare_idents_agree() {
        let e = engine();
        let bare = e
            .run(
                "select * from customer where credit = good",
                Strategy::Optimized,
            )
            .unwrap();
        let quoted = e
            .run(
                "select * from customer where credit = 'good'",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(bare.len(), quoted.len());
    }

    #[test]
    fn order_by_and_limit() {
        let e = engine();
        let r = e
            .run(
                "select cid, bal from customer order by bal desc limit 2",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(1), &Value::Int(500_000));
        assert_eq!(r.tuples()[1].get(1), &Value::Int(110_000));
        let asc = e
            .run(
                "select cid from customer order by cid limit 1",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(asc.tuples()[0].get(0), &Value::str("cid01"));
    }

    #[test]
    fn explicit_group_by() {
        let e = engine();
        let r = e
            .run(
                "select credit, count(*) as n from customer group by credit order by n desc",
                Strategy::Optimized,
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.tuples()[0].get(1).as_int() >= r.tuples()[1].get(1).as_int());
        // A selected column outside GROUP BY is rejected.
        let bad = e.run(
            "select name, count(*) as n from customer group by credit",
            Strategy::Optimized,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn explain_names_the_rewrite() {
        let e = engine();
        let q = e
            .parse("select risk from product e-join G <company, loc> as T")
            .unwrap();
        let plan = e.explain(&q, Strategy::Optimized);
        assert!(plan.contains("static rewrite"), "{plan}");
        assert!(plan.contains("well-behaved: true"), "{plan}");
        let q2 = e
            .parse("select * from product e-join G <issuer> as T")
            .unwrap();
        let plan2 = e.explain(&q2, Strategy::Optimized);
        assert!(plan2.contains("heuristic"), "{plan2}");
        let q3 = e
            .parse("select * from customer l-join <Gs> customer as b")
            .unwrap();
        let plan3 = e.explain(&q3, Strategy::Optimized);
        assert!(plan3.contains("g_L"), "{plan3}");
    }

    #[test]
    fn explain_baseline_names_online_method() {
        let e = engine();
        let q = e
            .parse("select risk from product e-join G <company> as T")
            .unwrap();
        let plan = e.explain(&q, Strategy::Baseline);
        assert!(plan.contains("online HER + RExt"), "{plan}");
    }

    #[test]
    fn explain_analyze_reports_operator_counters() {
        let e = engine();
        let q = e
            .parse(
                "select T1.pid, T2.pid from \
                 product e-join G <company> as T1, product e-join G <company> as T2 \
                 where T1.pid = fd1 and T1.company = T2.company and T2.pid <> fd1",
            )
            .unwrap();
        let report = e.explain_analyze(&q, Strategy::Optimized).unwrap();
        // Plan section plus counters for the semantic joins, the pushed
        // filter, and the hash join of the fold.
        assert!(report.contains("static rewrite"), "{report}");
        assert!(
            report.contains("EJoin(G<company> over product, static)"),
            "{report}"
        );
        assert!(report.contains("HashJoin("), "{report}");
        assert!(report.contains("Filter(T1.pid)"), "{report}");
        assert!(report.contains("rows_in"), "{report}");
        assert!(report.contains("result: 1 row(s)"), "{report}");
    }

    #[test]
    fn explain_analyze_covers_link_joins() {
        let e = engine();
        let q = e
            .parse(
                "select * from customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02",
            )
            .unwrap();
        let report = e.explain_analyze(&q, Strategy::Optimized).unwrap();
        assert!(
            report.contains("LJoin(<Gs> customer × customer, k=2, g_L cache)"),
            "{report}"
        );
        assert!(report.contains("Filter(customer.cid)"), "{report}");
    }

    #[test]
    fn explain_analyze_unifies_operator_stats_and_stage_spans() {
        let e = engine();
        // One query exercising both semantic joins, under the online
        // (Baseline) strategy so HER + RExt actually run at query time.
        let q = e
            .parse(
                "select T.pid, customerB.name from \
                 product e-join G <company> as T, \
                 customer l-join <Gs> customer as customerB \
                 where customer.cid = cid02",
            )
            .unwrap();
        let report = e.explain_analyze(&q, Strategy::Baseline).unwrap();
        let trace = report.split("trace:\n").nth(1).expect("trace section");
        // One tree: the query root span first, everything else under it.
        assert!(trace.starts_with("gsql.query"), "{trace}");
        assert!(
            trace
                .lines()
                .skip(1)
                .all(|l| l.is_empty() || l.starts_with(' ')),
            "{trace}"
        );
        // Physical-operator stats and pipeline stage spans in the same
        // tree, not two disjoint reports.
        assert!(
            trace.contains("EJoin(G<company> over product, online)"),
            "{trace}"
        );
        assert!(trace.contains("LJoin("), "{trace}");
        assert!(trace.contains("gsql.ejoin"), "{trace}");
        assert!(trace.contains("her.match"), "{trace}");
        assert!(trace.contains("rext.discover"), "{trace}");
        assert!(trace.contains("join.link"), "{trace}");
        // Stage spans carry non-zero wall time (rendered as `[dur]`).
        let root_line = trace.lines().next().unwrap();
        assert!(root_line.contains('['), "no timing on root: {root_line}");
        let her_line = trace
            .lines()
            .find(|l| l.trim_start().starts_with("her.match"))
            .unwrap();
        assert!(her_line.contains('['), "no timing: {her_line}");
    }

    #[test]
    fn run_query_stats_counts_rows() {
        let e = engine();
        let q = e
            .parse("select name from customer where credit = good")
            .unwrap();
        let (rel, ctx) = e.run_query_stats(&q, Strategy::Optimized).unwrap();
        assert_eq!(rel.len(), 2);
        let filter = ctx
            .ops()
            .iter()
            .find(|o| o.label.starts_with("Filter"))
            .unwrap();
        assert_eq!(filter.rows_in, 4);
        assert_eq!(filter.rows_out, 2);
        let scan = ctx
            .ops()
            .iter()
            .find(|o| o.label.starts_with("Scan(customer"))
            .unwrap();
        assert_eq!(scan.rows_out, 4);
    }

    #[test]
    fn planned_strategies_match_execution() {
        use super::super::plan::ItemPlan;
        use super::super::strategies::EJoinImpl;
        let e = engine();
        let q = e
            .parse("select risk from product e-join G <company, loc> as T")
            .unwrap();
        let plan = e.plan_query(&q, Strategy::Optimized).unwrap();
        assert_eq!(plan.items.len(), 1);
        match &plan.items[0] {
            ItemPlan::EJoin(p) => assert_eq!(p.imp, EJoinImpl::Static),
            other => panic!("expected EJoin plan, got {other:?}"),
        }
        // Heuristic strategy forces the heuristic implementation.
        let plan_h = e.plan_query(&q, Strategy::Heuristic).unwrap();
        match &plan_h.items[0] {
            ItemPlan::EJoin(p) => {
                assert_eq!(p.imp, EJoinImpl::Heuristic { fallback: false })
            }
            other => panic!("expected EJoin plan, got {other:?}"),
        }
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let e = engine();
        let r = e.run(
            "select * from product e-join NoSuch <x> as T",
            Strategy::Baseline,
        );
        assert!(r.is_err());
    }
}
