//! gSQL planning and plan execution.
//!
//! [`GsqlEngine::plan_query`] turns a parsed [`Query`] into a
//! [`QueryPlan`] whose FROM items are physical: semantic joins appear as
//! first-class operators ([`ItemPlan::EJoin`], [`ItemPlan::LJoin`]) with
//! the implementation chosen up front by the strategy rewrites in
//! [`super::strategies`]. [`GsqlEngine::execute_plan`] then runs the
//! plan through the instrumented relational helpers
//! ([`gsj_relational::physical`]), so every operator — scans, semantic
//! joins, pushed-down filters, the left-to-right theta-join fold,
//! aggregation, sort, limit — records rows in/out and wall time into an
//! [`ExecContext`] for `EXPLAIN ANALYZE`.

use super::analyze::source_base;
use super::ast::{FromItem, Projection, Query, Source};
use super::exec::{GsqlEngine, Strategy};
use super::strategies::{self, EJoinImpl, LJoinImpl};
use gsj_common::{GsjError, Result, Value};
use gsj_relational::physical::{self, ExecContext};
use gsj_relational::plan::AggSpec;
use gsj_relational::{Expr, Relation, Schema};
use std::time::Instant;

/// A planned query: the original AST plus one physical item per FROM
/// entry, with every semantic join's implementation already chosen.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The parsed query (projections, WHERE, ORDER BY, ... drive the
    /// relational tail of the pipeline).
    pub query: Query,
    /// One physical operator per FROM item.
    pub items: Vec<ItemPlan>,
    /// The strategy the plan was built for.
    pub strategy: Strategy,
}

/// A planned FROM-item source.
#[derive(Debug, Clone)]
pub enum SourcePlan {
    /// A base relation scanned from the catalog.
    Base(String),
    /// A planned sub-query.
    Sub(Box<QueryPlan>),
}

/// A planned enrichment join.
#[derive(Debug, Clone)]
pub struct EJoinPlan {
    /// The input source.
    pub source: SourcePlan,
    /// The traced base relation (carries the id attribute).
    pub base: String,
    /// The graph joined against.
    pub graph: String,
    /// Requested enrichment keywords `G<A>`.
    pub keywords: Vec<String>,
    /// Output alias.
    pub alias: Option<String>,
    /// The chosen implementation.
    pub imp: EJoinImpl,
}

/// A planned link join.
#[derive(Debug, Clone)]
pub struct LJoinPlan {
    /// Left source and its traced base / qualification alias.
    pub left: SourcePlan,
    /// Left traced base relation.
    pub lbase: String,
    /// Left qualification alias.
    pub lalias: String,
    /// Right source.
    pub right: SourcePlan,
    /// Right traced base relation.
    pub rbase: String,
    /// Right qualification alias.
    pub ralias: String,
    /// The graph providing connectivity.
    pub graph: String,
    /// The chosen implementation.
    pub imp: LJoinImpl,
}

/// One physical FROM item.
#[derive(Debug, Clone)]
pub enum ItemPlan {
    /// A plain (non-semantic) source, qualified under `name`.
    Plain {
        /// The source.
        source: SourcePlan,
        /// Qualification alias.
        name: String,
    },
    /// An enrichment join.
    EJoin(EJoinPlan),
    /// A link join.
    LJoin(LJoinPlan),
}

impl ItemPlan {
    /// One-line description (the FROM-item lines of `EXPLAIN ANALYZE`).
    pub fn describe(&self, k: usize) -> String {
        match self {
            ItemPlan::Plain { source, name } => match source {
                SourcePlan::Base(b) => format!("Scan({b} as {name})"),
                SourcePlan::Sub(_) => format!("Subquery(as {name})"),
            },
            ItemPlan::EJoin(p) => format!(
                "EJoin({}<{}> over {}, {})",
                p.graph,
                p.keywords.join(", "),
                p.base,
                p.imp.tag()
            ),
            ItemPlan::LJoin(p) => format!(
                "LJoin(<{}> {} × {}, k={}, {})",
                p.graph,
                p.lbase,
                p.rbase,
                k,
                p.imp.tag()
            ),
        }
    }
}

/// `EXPLAIN ANALYZE` label for a semantic join: the planned description,
/// annotated with the implementation that actually ran when the strategy
/// degraded mid-query.
fn degraded_label(planned: String, outcome: &strategies::JoinOutcome) -> String {
    if outcome.degraded {
        format!("{planned} [degraded → {}]", outcome.used)
    } else {
        planned
    }
}

impl GsqlEngine {
    /// Plan a parsed query under a strategy: every FROM item becomes a
    /// physical [`ItemPlan`] with its semantic-join implementation fixed.
    pub fn plan_query(&self, q: &Query, strategy: Strategy) -> Result<QueryPlan> {
        let mut items = Vec::with_capacity(q.from.len());
        for (i, item) in q.from.iter().enumerate() {
            items.push(self.plan_from_item(item, i, strategy)?);
        }
        Ok(QueryPlan {
            query: q.clone(),
            items,
            strategy,
        })
    }

    fn plan_source(&self, source: &Source, strategy: Strategy) -> Result<SourcePlan> {
        Ok(match source {
            Source::Base(name) => SourcePlan::Base(name.clone()),
            Source::Sub(sub) => SourcePlan::Sub(Box::new(self.plan_query(sub, strategy)?)),
        })
    }

    fn plan_from_item(
        &self,
        item: &FromItem,
        index: usize,
        strategy: Strategy,
    ) -> Result<ItemPlan> {
        match item {
            FromItem::Plain { source, alias } => {
                let name = alias.clone().unwrap_or_else(|| match source {
                    Source::Base(b) => b.clone(),
                    Source::Sub(_) => format!("sub{index}"),
                });
                Ok(ItemPlan::Plain {
                    source: self.plan_source(source, strategy)?,
                    name,
                })
            }
            FromItem::EJoin {
                source,
                graph,
                keywords,
                alias,
            } => {
                let base = source_base(source, &self.id_attrs).ok_or_else(|| {
                    GsjError::Unsupported(
                        "e-join source is not traceable to a base relation".into(),
                    )
                })?;
                let imp = strategies::choose_ejoin(
                    self,
                    strategy,
                    Some(&base),
                    graph,
                    keywords,
                    matches!(source, Source::Base(_)),
                );
                Ok(ItemPlan::EJoin(EJoinPlan {
                    source: self.plan_source(source, strategy)?,
                    base,
                    graph: graph.clone(),
                    keywords: keywords.clone(),
                    alias: alias.clone(),
                    imp,
                }))
            }
            FromItem::LJoin {
                left,
                graph,
                right,
                right_alias,
            } => {
                let lbase = source_base(left, &self.id_attrs).ok_or_else(|| {
                    GsjError::Unsupported("l-join left source not traceable".into())
                })?;
                let rbase = source_base(right, &self.id_attrs).ok_or_else(|| {
                    GsjError::Unsupported("l-join right source not traceable".into())
                })?;
                let lalias = lbase.clone();
                let ralias = match right_alias.as_deref() {
                    Some(a) => a.to_string(),
                    None if rbase != lbase => rbase.clone(),
                    None => {
                        return Err(GsjError::Parse(
                            "self l-join requires an alias for the right side".into(),
                        ))
                    }
                };
                Ok(ItemPlan::LJoin(LJoinPlan {
                    left: self.plan_source(left, strategy)?,
                    lbase,
                    lalias,
                    right: self.plan_source(right, strategy)?,
                    rbase,
                    ralias,
                    graph: graph.clone(),
                    imp: strategies::choose_ljoin(strategy),
                }))
            }
        }
    }

    fn eval_source_plan(&self, sp: &SourcePlan, ctx: &mut ExecContext) -> Result<Relation> {
        match sp {
            SourcePlan::Base(name) => Ok(self.db.get(name)?.clone()),
            SourcePlan::Sub(plan) => self.execute_plan(plan, ctx),
        }
    }

    fn eval_item_plan(&self, item: &ItemPlan, ctx: &mut ExecContext) -> Result<Relation> {
        // Each FROM item opens an operator slot before evaluating its
        // sources, so scans and sub-plans nest under it in the trace tree.
        // (On an error `?` the slot stays pending — the ctx is discarded.)
        let token = ctx.enter();
        match item {
            ItemPlan::Plain { source, name } => {
                let t0 = Instant::now();
                let rel = self.eval_source_plan(source, ctx)?.qualified(name);
                ctx.exit(
                    token,
                    physical::external_stats(item.describe(self.k), rel.len(), rel.len(), t0),
                );
                Ok(rel)
            }
            ItemPlan::EJoin(p) => {
                let t0 = Instant::now();
                let gov = ctx.governor().clone();
                let rel = self.eval_source_plan(&p.source, ctx)?;
                let outcome = strategies::eval_ejoin(self, p, &rel, &gov)?;
                ctx.exit(
                    token,
                    physical::external_stats(
                        degraded_label(item.describe(self.k), &outcome),
                        rel.len(),
                        outcome.rel.len(),
                        t0,
                    ),
                );
                Ok(match &p.alias {
                    Some(a) => outcome.rel.qualified(a),
                    None => outcome.rel,
                })
            }
            ItemPlan::LJoin(p) => {
                let t0 = Instant::now();
                let gov = ctx.governor().clone();
                let lrel = self.eval_source_plan(&p.left, ctx)?.qualified(&p.lalias);
                let rrel = self.eval_source_plan(&p.right, ctx)?.qualified(&p.ralias);
                let outcome = strategies::eval_ljoin(self, p, &lrel, &rrel, &gov)?;
                ctx.exit(
                    token,
                    physical::external_stats(
                        degraded_label(item.describe(self.k), &outcome),
                        lrel.len() + rrel.len(),
                        outcome.rel.len(),
                        t0,
                    ),
                );
                Ok(outcome.rel)
            }
        }
    }

    /// Execute a plan, recording per-operator counters into `ctx`.
    pub fn execute_plan(&self, plan: &QueryPlan, ctx: &mut ExecContext) -> Result<Relation> {
        let q = &plan.query;

        // 1. Evaluate FROM items.
        let mut items: Vec<Relation> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            items.push(self.eval_item_plan(item, ctx)?);
        }
        if items.is_empty() {
            return Err(GsjError::Parse("empty FROM clause".into()));
        }

        // 2. Bind WHERE conjuncts against the full combined schema: bare
        //    identifiers that resolve nowhere become string literals (the
        //    paper writes `T.pid = fd1`).
        let mut all_attrs: Vec<String> = Vec::new();
        for r in &items {
            all_attrs.extend(r.schema().attrs().iter().cloned());
        }
        let full_schema = Schema::new("q".to_string(), all_attrs).map_err(|e| {
            GsjError::Schema(format!(
                "FROM items must have distinct attribute names (add aliases): {e}"
            ))
        })?;
        let conjuncts: Vec<Expr> = match &q.where_clause {
            None => Vec::new(),
            Some(w) => split_conjuncts(w)
                .into_iter()
                .map(|c| bind_expr(c, &full_schema))
                .collect::<Result<_>>()?,
        };
        let mut applied = vec![false; conjuncts.len()];

        // 3. Fold the items left-to-right with predicate pushdown.
        let mut acc = items.remove(0);
        acc = apply_applicable(acc, &conjuncts, &mut applied, ctx)?;
        for item in items {
            let item = apply_applicable(item, &conjuncts, &mut applied, ctx)?;
            // Conjuncts usable as the join predicate: resolvable on the
            // combined schema, not yet applied.
            let mut combined_attrs = acc.schema().attrs().to_vec();
            combined_attrs.extend(item.schema().attrs().iter().cloned());
            let combined = Schema::new("j".to_string(), combined_attrs)?;
            let mut join_pred: Option<Expr> = None;
            for (c, done) in conjuncts.iter().zip(applied.iter_mut()) {
                if *done || !resolves(c, &combined) {
                    continue;
                }
                *done = true;
                join_pred = Some(match join_pred {
                    None => c.clone(),
                    Some(p) => p.and(c.clone()),
                });
            }
            let pred = join_pred.unwrap_or_else(|| Expr::lit(true));
            let label = format!("{} ⋈ {}", acc.schema().name(), item.schema().name());
            acc = physical::join_rel(&acc, &item, &pred, label, ctx)?;
        }

        // 4. Any remaining conjunct must resolve now.
        for (c, done) in conjuncts.iter().zip(applied.iter()) {
            if !*done {
                if !resolves(c, acc.schema()) {
                    return Err(GsjError::NotFound(format!(
                        "WHERE references unknown columns: {:?}",
                        c.columns()
                    )));
                }
                acc = physical::filter_rel(acc, c, filter_label(c), ctx)?;
            }
        }

        // 5. Projection / aggregation, then ORDER BY / LIMIT.
        let mut rel = self.project_plan(q, acc, ctx)?;
        if !q.order_by.is_empty() {
            let label = format!(
                "Sort({}{})",
                q.order_by.join(", "),
                if q.order_desc { " desc" } else { "" }
            );
            rel = physical::sort_rel(rel, &q.order_by, q.order_desc, label, ctx)?;
        }
        if let Some(n) = q.limit {
            rel = physical::limit_rel(rel, n, format!("Limit({n})"), ctx)?;
        }
        Ok(rel)
    }

    fn project_plan(&self, q: &Query, input: Relation, ctx: &mut ExecContext) -> Result<Relation> {
        if q.projections == vec![Projection::Star] {
            return Ok(input);
        }
        let has_agg = q
            .projections
            .iter()
            .any(|p| matches!(p, Projection::Agg { .. }));
        if has_agg {
            // Explicit GROUP BY wins; otherwise SQL-style implicit
            // grouping: non-aggregate select columns become the group
            // keys.
            let explicit: Vec<String> = q
                .group_by
                .iter()
                .map(|c| {
                    Expr::resolve_column(input.schema(), c)
                        .map(|pos| input.schema().attrs()[pos].clone())
                })
                .collect::<Result<_>>()?;
            let mut group_by = Vec::new();
            let mut aggs = Vec::new();
            let mut out_names = Vec::new();
            for p in &q.projections {
                match p {
                    Projection::Col { name, alias } => {
                        let pos = Expr::resolve_column(input.schema(), name)?;
                        let resolved = input.schema().attrs()[pos].clone();
                        if !explicit.is_empty() && !explicit.contains(&resolved) {
                            return Err(GsjError::Schema(format!(
                                "column `{name}` must appear in GROUP BY"
                            )));
                        }
                        group_by.push(resolved);
                        out_names.push(alias.clone().unwrap_or_else(|| name.clone()));
                    }
                    Projection::Agg { func, col, alias } => {
                        let resolved = if col == "*" {
                            "*".to_string()
                        } else {
                            let pos = Expr::resolve_column(input.schema(), col)?;
                            input.schema().attrs()[pos].clone()
                        };
                        let default_name = format!("{func}_{}", Schema::base_name(&resolved));
                        let name = alias.clone().unwrap_or(default_name);
                        aggs.push(AggSpec::new(*func, resolved, name.clone()));
                        out_names.push(name);
                    }
                    Projection::Star => {
                        return Err(GsjError::Unsupported("cannot mix * with aggregates".into()))
                    }
                }
            }
            let label = format!("Aggregate(group_by=[{}])", group_by.join(", "));
            let rel = physical::aggregate_rel(&input, &group_by, &aggs, label, ctx)?;
            return rename_attrs(rel, &out_names);
        }
        // Plain projection with optional renaming.
        let t0 = Instant::now();
        let mut positions = Vec::new();
        let mut names = Vec::new();
        for p in &q.projections {
            if let Projection::Col { name, alias } = p {
                positions.push(Expr::resolve_column(input.schema(), name)?);
                names.push(alias.clone().unwrap_or_else(|| name.clone()));
            }
        }
        let schema = Schema::new(input.schema().name().to_string(), names.clone())?;
        let mut out = Relation::empty(schema);
        for t in input.tuples() {
            out.push(t.project(&positions))?;
        }
        physical::record_external(
            format!("Project({})", names.join(", ")),
            input.len(),
            out.len(),
            t0,
            ctx,
        );
        Ok(out)
    }
}

fn filter_label(c: &Expr) -> String {
    let cols = c.columns();
    if cols.is_empty() {
        "Filter".to_string()
    } else {
        format!("Filter({})", cols.join(", "))
    }
}

/// Split a predicate into top-level conjuncts.
fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = split_conjuncts(a);
            out.extend(split_conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Do all column references of `e` resolve in `schema`?
fn resolves(e: &Expr, schema: &Schema) -> bool {
    e.columns()
        .iter()
        .all(|c| Expr::resolve_column(schema, c).is_ok())
}

/// Rewrite unresolvable *bare* identifiers into string literals; error on
/// unresolvable qualified names.
fn bind_expr(e: Expr, schema: &Schema) -> Result<Expr> {
    Ok(match e {
        Expr::Col(name) => {
            if Expr::resolve_column(schema, &name).is_ok() {
                Expr::Col(name)
            } else if !name.contains('.') {
                Expr::Lit(Value::str(name))
            } else {
                return Err(GsjError::NotFound(format!("column `{name}`")));
            }
        }
        Expr::Lit(v) => Expr::Lit(v),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            op,
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::And(l, r) => Expr::And(
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(bind_expr(*l, schema)?),
            Box::new(bind_expr(*r, schema)?),
        ),
        Expr::Not(x) => Expr::Not(Box::new(bind_expr(*x, schema)?)),
        Expr::IsNull(x) => Expr::IsNull(Box::new(bind_expr(*x, schema)?)),
    })
}

/// Apply every not-yet-applied conjunct that fully resolves on `rel`
/// (predicate pushdown), recording each filter.
fn apply_applicable(
    rel: Relation,
    conjuncts: &[Expr],
    applied: &mut [bool],
    ctx: &mut ExecContext,
) -> Result<Relation> {
    let mut rel = rel;
    for (c, done) in conjuncts.iter().zip(applied.iter_mut()) {
        if *done || !resolves(c, rel.schema()) {
            continue;
        }
        *done = true;
        rel = physical::filter_rel(rel, c, filter_label(c), ctx)?;
    }
    Ok(rel)
}

/// Rename a relation's attributes positionally.
fn rename_attrs(rel: Relation, names: &[String]) -> Result<Relation> {
    let (schema, tuples) = rel.into_parts();
    let new = Schema::new(schema.name().to_string(), names.to_vec())?;
    Relation::new(new, tuples)
}
