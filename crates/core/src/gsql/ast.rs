//! The gSQL abstract syntax tree.

use gsj_relational::{AggFunc, Expr};

/// One entry of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `select *`
    Star,
    /// A (possibly qualified) column, optionally renamed.
    Col {
        /// Column name as written (`risk` or `T.loc`).
        name: String,
        /// `AS` alias.
        alias: Option<String>,
    },
    /// An aggregate over a column (or `*` for `count(*)`).
    Agg {
        /// The function.
        func: AggFunc,
        /// Input column (`*` allowed for count).
        col: String,
        /// `AS` alias.
        alias: Option<String>,
    },
}

/// A relation-producing source: a base table or a parenthesized sub-query.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Base relation by name.
    Base(String),
    /// `( query )`.
    Sub(Box<Query>),
}

/// One item of the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A plain relation / sub-query, optionally aliased.
    Plain {
        /// The source.
        source: Source,
        /// `AS` alias.
        alias: Option<String>,
    },
    /// `S e-join G<A1, ..., Am> [as T]` — an enrichment join.
    EJoin {
        /// The tuple source `S`.
        source: Source,
        /// Graph name `G`.
        graph: String,
        /// The keyword set `A`.
        keywords: Vec<String>,
        /// `AS` alias for the join result.
        alias: Option<String>,
    },
    /// `T1 l-join <G> T2 [as T2']` — a link join. The alias renames the
    /// right side, matching the paper's
    /// `customer l-join <G'> customer as customer'`.
    LJoin {
        /// Left source.
        left: Source,
        /// Graph name.
        graph: String,
        /// Right source.
        right: Source,
        /// Alias for the right side.
        right_alias: Option<String>,
    },
}

/// A gSQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The select list.
    pub projections: Vec<Projection>,
    /// FROM items, in order.
    pub from: Vec<FromItem>,
    /// WHERE condition (over [`gsj_relational::Expr`]; bare identifiers
    /// that do not resolve to columns are read as string literals, per the
    /// paper's `T.pid = fd1` style).
    pub where_clause: Option<Expr>,
    /// Explicit `GROUP BY` columns (empty = SQL-style implicit grouping
    /// by the non-aggregate select columns).
    pub group_by: Vec<String>,
    /// `ORDER BY` columns with a global ascending/descending flag.
    pub order_by: Vec<String>,
    /// Descending order if true.
    pub order_desc: bool,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

impl Query {
    /// All `e-join` / `l-join` items in this query, including those in
    /// sub-queries (used by the well-behaved analysis and by statistics).
    pub fn semantic_joins(&self) -> Vec<&FromItem> {
        let mut out = Vec::new();
        self.collect_joins(&mut out);
        out
    }

    fn collect_joins<'a>(&'a self, out: &mut Vec<&'a FromItem>) {
        for item in &self.from {
            match item {
                FromItem::Plain { source, .. } => {
                    if let Source::Sub(q) = source {
                        q.collect_joins(out);
                    }
                }
                FromItem::EJoin { source, .. } => {
                    out.push(item);
                    if let Source::Sub(q) = source {
                        q.collect_joins(out);
                    }
                }
                FromItem::LJoin { left, right, .. } => {
                    out.push(item);
                    if let Source::Sub(q) = left {
                        q.collect_joins(out);
                    }
                    if let Source::Sub(q) = right {
                        q.collect_joins(out);
                    }
                }
            }
        }
    }

    /// True if the query (or a sub-query) contains any semantic join.
    pub fn has_semantic_joins(&self) -> bool {
        !self.semantic_joins().is_empty()
    }
}
