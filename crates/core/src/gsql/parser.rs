//! Recursive-descent parser for gSQL.

use super::ast::{FromItem, Projection, Query, Source};
use super::lexer::{lex, Token};
use gsj_common::{GsjError, Result, Value};
use gsj_relational::{AggFunc, BinOp, CmpOp, Expr};

/// Parse a gSQL query from text.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(GsjError::Parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Kw(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(GsjError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(GsjError::Parse(format!(
                "expected `{s}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(GsjError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// `ident ( '.' ident )?`
    fn column_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let projections = self.select_list()?;
        self.expect_kw("from")?;
        let mut from = vec![self.from_item()?];
        while self.eat_sym(",") {
            from.push(self.from_item()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.column_name()?);
            while self.eat_sym(",") {
                group_by.push(self.column_name()?);
            }
        }
        let mut order_by = Vec::new();
        let mut order_desc = false;
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            order_by.push(self.column_name()?);
            while self.eat_sym(",") {
                order_by.push(self.column_name()?);
            }
            if self.eat_kw("desc") {
                order_desc = true;
            } else {
                let _ = self.eat_kw("asc");
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(GsjError::Parse(format!(
                        "expected row count after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            projections,
            from,
            where_clause,
            group_by,
            order_by,
            order_desc,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<Projection>> {
        if self.eat_sym("*") {
            return Ok(vec![Projection::Star]);
        }
        let mut out = vec![self.projection()?];
        while self.eat_sym(",") {
            out.push(self.projection()?);
        }
        Ok(out)
    }

    fn agg_func(kw: &str) -> Option<AggFunc> {
        Some(match kw {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }

    fn projection(&mut self) -> Result<Projection> {
        if let Some(Token::Kw(kw)) = self.peek() {
            if let Some(func) = Self::agg_func(kw) {
                self.pos += 1;
                self.expect_sym("(")?;
                let col = if self.eat_sym("*") {
                    "*".to_string()
                } else {
                    self.column_name()?
                };
                self.expect_sym(")")?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                return Ok(Projection::Agg { func, col, alias });
            }
        }
        let name = self.column_name()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Projection::Col { name, alias })
    }

    fn source(&mut self) -> Result<Source> {
        if self.eat_sym("(") {
            let q = self.query()?;
            self.expect_sym(")")?;
            Ok(Source::Sub(Box::new(q)))
        } else {
            Ok(Source::Base(self.ident()?))
        }
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item, not a conversion
    fn from_item(&mut self) -> Result<FromItem> {
        // `l-join <G> right` may also start with `<G>`-less left source.
        let source = self.source()?;
        match self.peek() {
            Some(Token::EJoin) => {
                self.pos += 1;
                let graph = self.ident()?;
                self.expect_sym("<")?;
                let mut keywords = vec![self.ident()?];
                while self.eat_sym(",") {
                    keywords.push(self.ident()?);
                }
                self.expect_sym(">")?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(FromItem::EJoin {
                    source,
                    graph,
                    keywords,
                    alias,
                })
            }
            Some(Token::LJoin) => {
                self.pos += 1;
                self.expect_sym("<")?;
                let graph = self.ident()?;
                self.expect_sym(">")?;
                let right = self.source()?;
                let right_alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(FromItem::LJoin {
                    left: source,
                    graph,
                    right,
                    right_alias,
                })
            }
            _ => {
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(FromItem::Plain { source, alias })
            }
        }
    }

    // ---- conditions -----------------------------------------------------

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        // Parenthesized boolean expression? Look ahead: `(` followed by
        // something that eventually contains a boolean op — we settle it
        // by attempting an operand parse first and falling back.
        let save = self.pos;
        if self.eat_sym("(") {
            // Try boolean grouping.
            if let Ok(inner) = self.or_expr() {
                if self.eat_sym(")") {
                    // Could still be part of an arithmetic expression, but
                    // gSQL conditions never compare parenthesized booleans
                    // arithmetically, so accept.
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let left = self.operand()?;
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let isnull = Expr::IsNull(Box::new(left));
            return Ok(if negated {
                Expr::Not(Box::new(isnull))
            } else {
                isnull
            });
        }
        let op = match self.next() {
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("!=")) | Some(Token::Sym("<>")) => CmpOp::Ne,
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            other => {
                return Err(GsjError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.operand()?;
        Ok(Expr::cmp(op, left, right))
    }

    fn operand(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            if self.eat_sym("+") {
                left = Expr::Bin(BinOp::Add, Box::new(left), Box::new(self.term()?));
            } else if matches!(self.peek(), Some(Token::Sym("-"))) {
                self.pos += 1;
                left = Expr::Bin(BinOp::Sub, Box::new(left), Box::new(self.term()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            if self.eat_sym("*") {
                left = Expr::Bin(BinOp::Mul, Box::new(left), Box::new(self.factor()?));
            } else if self.eat_sym("/") {
                left = Expr::Bin(BinOp::Div, Box::new(left), Box::new(self.factor()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::lit(i)),
            Some(Token::Float(f)) => Ok(Expr::lit(f)),
            Some(Token::Str(s)) => Ok(Expr::lit(Value::str(s))),
            Some(Token::Kw(k)) if k == "null" => Ok(Expr::Lit(Value::Null)),
            Some(Token::Kw(k)) if k == "true" => Ok(Expr::lit(true)),
            Some(Token::Kw(k)) if k == "false" => Ok(Expr::lit(false)),
            Some(Token::Sym("(")) => {
                let e = self.operand()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Sym("-")) => {
                let e = self.factor()?;
                Ok(Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::lit(0i64)),
                    Box::new(e),
                ))
            }
            Some(Token::Ident(first)) => {
                if self.eat_sym(".") {
                    let second = self.ident()?;
                    Ok(Expr::col(format!("{first}.{second}")))
                } else {
                    Ok(Expr::col(first))
                }
            }
            other => Err(GsjError::Parse(format!(
                "expected operand, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse_query(
            "select risk, company from product e-join G <company, loc> as T \
             where T.pid = fd1 and T.loc = UK",
        )
        .unwrap();
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.from.len(), 1);
        match &q.from[0] {
            FromItem::EJoin {
                source,
                graph,
                keywords,
                alias,
            } => {
                assert_eq!(source, &Source::Base("product".into()));
                assert_eq!(graph, "G");
                assert_eq!(keywords, &["company".to_string(), "loc".to_string()]);
                assert_eq!(alias.as_deref(), Some("T"));
            }
            other => panic!("expected e-join, got {other:?}"),
        }
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_q2_double_ejoin() {
        let q = parse_query(
            "select * from customer e-join G <stock, company> as T1, \
             customer e-join G <stock, company> as T2 \
             where T1.cid = cid04 and T2.cid = cid02 and T2.credit = good \
             and T1.company = T2.company",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.semantic_joins().len(), 2);
        assert_eq!(q.projections, vec![Projection::Star]);
    }

    #[test]
    fn parses_q3_link_join() {
        let q = parse_query(
            "select * from customer l-join <Gs> customer as customerB \
             where customer.cid = cid02 and customerB.credit = good",
        )
        .unwrap();
        match &q.from[0] {
            FromItem::LJoin {
                left,
                graph,
                right,
                right_alias,
            } => {
                assert_eq!(left, &Source::Base("customer".into()));
                assert_eq!(graph, "Gs");
                assert_eq!(right, &Source::Base("customer".into()));
                assert_eq!(right_alias.as_deref(), Some("customerB"));
            }
            other => panic!("expected l-join, got {other:?}"),
        }
    }

    #[test]
    fn parses_subquery_ejoin_q4() {
        // Example 10's dynamic join: a sub-query source.
        let q = parse_query(
            "select * from (select * from customer, product \
             where customer.cid = cid02 and product.risk = medium \
             and customer.bal >= 1000 * product.price) e-join G <company> as T",
        )
        .unwrap();
        match &q.from[0] {
            FromItem::EJoin { source, .. } => {
                assert!(matches!(source, Source::Sub(_)));
            }
            other => panic!("expected e-join, got {other:?}"),
        }
        assert!(q.has_semantic_joins());
    }

    #[test]
    fn parses_aggregates_and_negation() {
        let q = parse_query(
            "select credit, count(*) as n, max(bal) as biggest from customer \
             where not credit = bad and bal >= 100",
        )
        .unwrap();
        assert_eq!(q.projections.len(), 3);
        assert!(matches!(
            q.projections[1],
            Projection::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
        let w = q.where_clause.unwrap();
        assert!(matches!(w, Expr::And(_, _)));
    }

    #[test]
    fn parses_is_null_and_parens() {
        let q = parse_query("select * from t where (a = 1 or b = 2) and c is not null").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("select * from t extra").is_err());
        assert!(parse_query("select from t").is_err());
    }

    #[test]
    fn plain_alias() {
        let q = parse_query("select * from customer as c").unwrap();
        assert!(matches!(
            &q.from[0],
            FromItem::Plain { alias: Some(a), .. } if a == "c"
        ));
    }
}
