//! Strategy selection as plan rewrites (Section IV).
//!
//! [`choose_ejoin`] / [`choose_ljoin`] map an execution [`Strategy`] plus
//! the well-behavedness evidence (keyword coverage by `A_R`, base vs
//! sub-query source) to a concrete implementation — [`EJoinImpl`] /
//! [`LJoinImpl`] — recorded in the query plan. `EXPLAIN` prints the same
//! [`EJoinImpl::describe`] strings, so what the plan says is what runs.
//!
//! The implementations themselves ([`eval_ejoin`], [`eval_ljoin`]) wrap
//! the semantic-join machinery in [`crate::join`] and
//! [`crate::heuristic`].

use super::exec::{GsqlEngine, Strategy};
use super::plan::{EJoinPlan, LJoinPlan};
use crate::join::{connectivity_relation, enrichment_join, enrichment_join_precomputed, link_join};
use gsj_common::{FxHashSet, GsjError, Result};
use gsj_graph::VertexId;
use gsj_relational::{Relation, Schema};

/// How an enrichment join will be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EJoinImpl {
    /// Conceptual baseline: HER + RExt at query time.
    Online,
    /// Static rewrite over the materialized `f(D,G)` / `h(D,G)`.
    Static,
    /// Dynamic rewrite: the sub-query result joined with `f(D,G)` /
    /// `h(D,G)`.
    Dynamic,
    /// Heuristic join; `fallback` is true when `Optimized` degraded here
    /// because the join is not well-behaved (`A ⊄ A_R`).
    Heuristic { fallback: bool },
}

impl EJoinImpl {
    /// The `EXPLAIN` description.
    pub fn describe(self) -> &'static str {
        match self {
            EJoinImpl::Online => "online HER + RExt (conceptual baseline)",
            EJoinImpl::Static => "static rewrite: S ⋈ f(D,G) ⋈ h(D,G)",
            EJoinImpl::Dynamic => "dynamic rewrite: Q ⋈ f(D,G) ⋈ h(D,G)",
            EJoinImpl::Heuristic { fallback: false } => "heuristic join (schema match + ER)",
            EJoinImpl::Heuristic { fallback: true } => {
                "heuristic join (A ⊄ A_R → not well-behaved)"
            }
        }
    }

    /// Short tag for `EXPLAIN ANALYZE` operator labels.
    pub fn tag(self) -> &'static str {
        match self {
            EJoinImpl::Online => "online",
            EJoinImpl::Static => "static",
            EJoinImpl::Dynamic => "dynamic",
            EJoinImpl::Heuristic { .. } => "heuristic",
        }
    }
}

/// How a link join will be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LJoinImpl {
    /// Conceptual baseline: HER matching + bidirectional BFS per pair.
    Online,
    /// Pre-matched `f(D,G)` vertices + the `g_L` connectivity cache.
    Cached,
    /// Heuristic: ER against `gτ(G)` + connectivity.
    Heuristic,
}

impl LJoinImpl {
    /// The `EXPLAIN` description.
    pub fn describe(self) -> &'static str {
        match self {
            LJoinImpl::Online => "online HER + bidirectional BFS",
            LJoinImpl::Cached => "pre-matched f(D,G) + g_L connectivity cache",
            LJoinImpl::Heuristic => "heuristic: ER to gτ(G) + connectivity",
        }
    }

    /// Short tag for `EXPLAIN ANALYZE` operator labels.
    pub fn tag(self) -> &'static str {
        match self {
            LJoinImpl::Online => "online",
            LJoinImpl::Cached => "g_L cache",
            LJoinImpl::Heuristic => "heuristic",
        }
    }
}

/// Rewrite an enrichment join to its implementation under `strategy`.
/// `base` is the traced base relation (None when untraceable) and
/// `source_is_base` distinguishes static from dynamic rewrites.
pub fn choose_ejoin(
    engine: &GsqlEngine,
    strategy: Strategy,
    base: Option<&str>,
    graph: &str,
    keywords: &[String],
    source_is_base: bool,
) -> EJoinImpl {
    match strategy {
        Strategy::Baseline => EJoinImpl::Online,
        Strategy::Heuristic => EJoinImpl::Heuristic { fallback: false },
        Strategy::Optimized => {
            let covered = base
                .and_then(|b| engine.profiles.get(graph).map(|p| p.covers(b, keywords)))
                .unwrap_or(false);
            if covered {
                if source_is_base {
                    EJoinImpl::Static
                } else {
                    EJoinImpl::Dynamic
                }
            } else {
                EJoinImpl::Heuristic { fallback: true }
            }
        }
    }
}

/// Rewrite a link join to its implementation under `strategy`.
pub fn choose_ljoin(strategy: Strategy) -> LJoinImpl {
    match strategy {
        Strategy::Baseline => LJoinImpl::Online,
        Strategy::Optimized => LJoinImpl::Cached,
        Strategy::Heuristic => LJoinImpl::Heuristic,
    }
}

static GL_CACHE_HITS: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_gl_cache_hits_total");
static GL_CACHE_MISSES: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_gl_cache_misses_total");

/// Execute a planned enrichment join over an evaluated source relation.
pub(super) fn eval_ejoin(e: &GsqlEngine, p: &EJoinPlan, rel: &Relation) -> Result<Relation> {
    let mut span = gsj_obs::span("gsql.ejoin");
    span.field("impl", p.imp.tag())
        .field("graph", &p.graph)
        .field("base", &p.base);
    let id_attr = e.actual_id_attr(rel, &p.base)?;
    let g = e.the_graph(&p.graph)?;
    match p.imp {
        EJoinImpl::Online => {
            let rext = e.rexts.get(&p.graph).ok_or_else(|| {
                GsjError::Config(format!("no RExt registered for graph `{}`", p.graph))
            })?;
            let (joined, _state) =
                enrichment_join(rel, &id_attr, g, &p.keywords, rext, &e.her_cfg)?;
            Ok(joined)
        }
        EJoinImpl::Static | EJoinImpl::Dynamic => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            let ex = profile.extraction(&p.base)?;
            enrichment_join_precomputed(rel, &id_attr, &ex.matches, &ex.dg, Some(&p.keywords))
        }
        EJoinImpl::Heuristic { .. } => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            crate::heuristic::heuristic_enrichment(
                rel,
                Some(&id_attr),
                &p.keywords,
                &profile.typed,
                &e.er_cfg,
            )
        }
    }
}

/// Execute a planned link join over its two evaluated (and already
/// qualified) sides.
pub(super) fn eval_ljoin(
    e: &GsqlEngine,
    p: &LJoinPlan,
    lrel: &Relation,
    rrel: &Relation,
) -> Result<Relation> {
    let mut span = gsj_obs::span("gsql.ljoin");
    span.field("impl", p.imp.tag())
        .field("graph", &p.graph)
        .field("k", e.k);
    let lid = e.actual_id_attr(lrel, &p.lbase)?;
    let rid = e.actual_id_attr(rrel, &p.rbase)?;
    let g = e.the_graph(&p.graph)?;
    match p.imp {
        LJoinImpl::Online => link_join(lrel, &lid, rrel, &rid, g, e.k, &e.her_cfg),
        LJoinImpl::Cached => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            let m1 = &profile.extraction(&p.lbase)?.matches;
            let m2 = &profile.extraction(&p.rbase)?.matches;
            // Distinct matched vertices actually present in each side.
            let lpos = lrel.schema().require(&lid)?;
            let rpos = rrel.schema().require(&rid)?;
            let mut lv: Vec<VertexId> = lrel
                .tuples()
                .iter()
                .filter_map(|t| m1.vertex_of(t.get(lpos)))
                .collect();
            lv.sort();
            lv.dedup();
            let mut rv: Vec<VertexId> = rrel
                .tuples()
                .iter()
                .filter_map(|t| m2.vertex_of(t.get(rpos)))
                .collect();
            rv.sort();
            rv.dedup();
            let signature = link_signature(&p.graph, &p.lbase, &p.rbase, e.k, &lv, &rv);
            let gl = match profile.cached_link(&signature) {
                Some(rel) => {
                    GL_CACHE_HITS.inc();
                    gsj_obs::event("gsql.gl_cache", &[("hit", &true), ("rows", &rel.len())]);
                    rel
                }
                None => {
                    GL_CACHE_MISSES.inc();
                    let rel = connectivity_relation(g, &lv, &rv, e.k, "g_l");
                    gsj_obs::event("gsql.gl_cache", &[("hit", &false), ("rows", &rel.len())]);
                    profile.cache_link(signature, rel.clone());
                    rel
                }
            };
            let pairs: FxHashSet<(i64, i64)> = gl
                .tuples()
                .iter()
                .filter_map(|t| Some((t.get(0).as_int()?, t.get(1).as_int()?)))
                .collect();
            // Emit tuple pairs whose matched vertices are connected.
            let mut attrs = lrel.schema().attrs().to_vec();
            attrs.extend(rrel.schema().attrs().iter().cloned());
            let schema = Schema::new(format!("{}_lj_{}", p.lalias, p.ralias), attrs)?;
            let mut out = Relation::empty(schema);
            for t1 in lrel.tuples() {
                let Some(v1) = m1.vertex_of(t1.get(lpos)) else {
                    continue;
                };
                for t2 in rrel.tuples() {
                    let Some(v2) = m2.vertex_of(t2.get(rpos)) else {
                        continue;
                    };
                    if pairs.contains(&(v1.0 as i64, v2.0 as i64)) {
                        out.push(t1.concat(t2))?;
                    }
                }
            }
            Ok(out)
        }
        LJoinImpl::Heuristic => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            crate::heuristic::heuristic_link(
                lrel,
                Some(&lid),
                rrel,
                Some(&rid),
                &profile.typed,
                g,
                e.k,
                &e.er_cfg,
            )
        }
    }
}

/// `g_L` cache key: graph, bases, k, and the participating vertex sets.
fn link_signature(
    graph: &str,
    lbase: &str,
    rbase: &str,
    k: usize,
    lv: &[VertexId],
    rv: &[VertexId],
) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = gsj_common::FxHasher::default();
    lv.hash(&mut h);
    rv.hash(&mut h);
    format!("{graph}|{lbase}|{rbase}|{k}|{:x}", h.finish())
}
