//! Strategy selection as plan rewrites (Section IV).
//!
//! [`choose_ejoin`] / [`choose_ljoin`] map an execution [`Strategy`] plus
//! the well-behavedness evidence (keyword coverage by `A_R`, base vs
//! sub-query source) to a concrete implementation — [`EJoinImpl`] /
//! [`LJoinImpl`] — recorded in the query plan. `EXPLAIN` prints the same
//! [`EJoinImpl::describe`] strings, so what the plan says is what runs.
//!
//! The implementations themselves ([`eval_ejoin`], [`eval_ljoin`]) wrap
//! the semantic-join machinery in [`crate::join`] and
//! [`crate::heuristic`].

use super::exec::{GsqlEngine, Strategy};
use super::plan::{EJoinPlan, LJoinPlan};
use crate::join::{connectivity_relation, enrichment_join, enrichment_join_precomputed, link_join};
use gsj_common::{FxHashSet, GsjError, QueryGovernor, Result};
use gsj_graph::VertexId;
use gsj_relational::{Relation, Schema};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How an enrichment join will be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EJoinImpl {
    /// Conceptual baseline: HER + RExt at query time.
    Online,
    /// Static rewrite over the materialized `f(D,G)` / `h(D,G)`.
    Static,
    /// Dynamic rewrite: the sub-query result joined with `f(D,G)` /
    /// `h(D,G)`.
    Dynamic,
    /// Heuristic join; `fallback` is true when `Optimized` degraded here
    /// because the join is not well-behaved (`A ⊄ A_R`).
    Heuristic { fallback: bool },
}

impl EJoinImpl {
    /// The `EXPLAIN` description.
    pub fn describe(self) -> &'static str {
        match self {
            EJoinImpl::Online => "online HER + RExt (conceptual baseline)",
            EJoinImpl::Static => "static rewrite: S ⋈ f(D,G) ⋈ h(D,G)",
            EJoinImpl::Dynamic => "dynamic rewrite: Q ⋈ f(D,G) ⋈ h(D,G)",
            EJoinImpl::Heuristic { fallback: false } => "heuristic join (schema match + ER)",
            EJoinImpl::Heuristic { fallback: true } => {
                "heuristic join (A ⊄ A_R → not well-behaved)"
            }
        }
    }

    /// Short tag for `EXPLAIN ANALYZE` operator labels.
    pub fn tag(self) -> &'static str {
        match self {
            EJoinImpl::Online => "online",
            EJoinImpl::Static => "static",
            EJoinImpl::Dynamic => "dynamic",
            EJoinImpl::Heuristic { .. } => "heuristic",
        }
    }
}

/// How a link join will be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LJoinImpl {
    /// Conceptual baseline: HER matching + bidirectional BFS per pair.
    Online,
    /// Pre-matched `f(D,G)` vertices + the `g_L` connectivity cache.
    Cached,
    /// Heuristic: ER against `gτ(G)` + connectivity.
    Heuristic,
}

impl LJoinImpl {
    /// The `EXPLAIN` description.
    pub fn describe(self) -> &'static str {
        match self {
            LJoinImpl::Online => "online HER + bidirectional BFS",
            LJoinImpl::Cached => "pre-matched f(D,G) + g_L connectivity cache",
            LJoinImpl::Heuristic => "heuristic: ER to gτ(G) + connectivity",
        }
    }

    /// Short tag for `EXPLAIN ANALYZE` operator labels.
    pub fn tag(self) -> &'static str {
        match self {
            LJoinImpl::Online => "online",
            LJoinImpl::Cached => "g_L cache",
            LJoinImpl::Heuristic => "heuristic",
        }
    }
}

/// Rewrite an enrichment join to its implementation under `strategy`.
/// `base` is the traced base relation (None when untraceable) and
/// `source_is_base` distinguishes static from dynamic rewrites.
pub fn choose_ejoin(
    engine: &GsqlEngine,
    strategy: Strategy,
    base: Option<&str>,
    graph: &str,
    keywords: &[String],
    source_is_base: bool,
) -> EJoinImpl {
    match strategy {
        Strategy::Baseline => EJoinImpl::Online,
        Strategy::Heuristic => EJoinImpl::Heuristic { fallback: false },
        Strategy::Optimized => {
            let covered = base
                .and_then(|b| engine.profiles.get(graph).map(|p| p.covers(b, keywords)))
                .unwrap_or(false);
            if covered {
                if source_is_base {
                    EJoinImpl::Static
                } else {
                    EJoinImpl::Dynamic
                }
            } else {
                EJoinImpl::Heuristic { fallback: true }
            }
        }
    }
}

/// Rewrite a link join to its implementation under `strategy`.
pub fn choose_ljoin(strategy: Strategy) -> LJoinImpl {
    match strategy {
        Strategy::Baseline => LJoinImpl::Online,
        Strategy::Optimized => LJoinImpl::Cached,
        Strategy::Heuristic => LJoinImpl::Heuristic,
    }
}

static GL_CACHE_HITS: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_gl_cache_hits_total");
static GL_CACHE_MISSES: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_gl_cache_misses_total");
static FALLBACKS: gsj_obs::LazyCounter = gsj_obs::LazyCounter::new("gsj_core_gsql_fallback_total");

/// The result of a governed semantic-join evaluation: the relation plus
/// which implementation actually produced it. `used` differs from the
/// planned tag (and `degraded` is true) when the strategy fell back.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    pub rel: Relation,
    pub used: &'static str,
    pub degraded: bool,
}

/// Convert a caught panic payload into a typed internal error so residual
/// panics in a join implementation degrade like any other retryable fault.
fn panic_to_error(site: &str, payload: Box<dyn std::any::Any + Send>) -> GsjError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    GsjError::Internal(format!("panic in {site}: {msg}"))
}

/// Record one strategy degradation: metric + trace event.
fn note_fallback(site: &str, from: &str, to: &str, err: &GsjError) {
    FALLBACKS.inc();
    gsj_obs::event(
        "gsql.fallback",
        &[
            ("site", &site),
            ("from", &from),
            ("to", &to),
            ("error", &err),
        ],
    );
}

/// The degradation chain for a planned enrichment-join implementation:
/// dynamic → static → online, static → online, heuristic → online. The
/// online baseline is only reachable when an [`crate::rext::Rext`] is
/// registered for the graph. Always starts with the planned `imp`.
fn ejoin_chain(e: &GsqlEngine, imp: EJoinImpl, graph: &str) -> Vec<EJoinImpl> {
    let online_ok = e.rexts.contains_key(graph);
    let mut chain = vec![imp];
    match imp {
        EJoinImpl::Dynamic => chain.push(EJoinImpl::Static),
        EJoinImpl::Static | EJoinImpl::Heuristic { .. } | EJoinImpl::Online => {}
    }
    if online_ok && imp != EJoinImpl::Online {
        chain.push(EJoinImpl::Online);
    }
    chain
}

/// The degradation chain for a planned link-join implementation: cached →
/// online, heuristic → online. The online baseline needs no precomputed
/// state, so it is always reachable.
fn ljoin_chain(imp: LJoinImpl) -> Vec<LJoinImpl> {
    match imp {
        LJoinImpl::Online => vec![LJoinImpl::Online],
        other => vec![other, LJoinImpl::Online],
    }
}

/// Execute a planned enrichment join over an evaluated source relation,
/// degrading along [`ejoin_chain`] on retryable failures (injected faults,
/// panics, resource exhaustion). Governance errors — cancellation,
/// deadline — always propagate: a query past its deadline must not retry
/// its way to a slower implementation.
pub(super) fn eval_ejoin(
    e: &GsqlEngine,
    p: &EJoinPlan,
    rel: &Relation,
    gov: &QueryGovernor,
) -> Result<JoinOutcome> {
    let mut span = gsj_obs::span("gsql.ejoin");
    span.field("impl", p.imp.tag())
        .field("graph", &p.graph)
        .field("base", &p.base);
    gov.check("gsql.ejoin")?;
    let chain = ejoin_chain(e, p.imp, &p.graph);
    let mut degraded = false;
    for (i, &imp) in chain.iter().enumerate() {
        let last = i + 1 == chain.len();
        // The fault site only arms on non-final attempts: an injected
        // fault here is recoverable by construction because the chain has
        // a next implementation to absorb it. It sits *inside* the
        // catch_unwind so a panic-mode fault degrades exactly like an
        // error-mode one instead of escaping to the query boundary.
        let res = catch_unwind(AssertUnwindSafe(|| {
            if !last {
                gsj_faults::fault_point("gsql.ejoin", gsj_faults::FaultClass::Recoverable)?;
            }
            run_ejoin_impl(e, p, rel, imp, gov)
        }))
        .unwrap_or_else(|payload| Err(panic_to_error("gsql.ejoin", payload)));
        match res {
            Ok(out) => {
                span.field("used", imp.tag()).field("degraded", degraded);
                gov.charge_mem(gsj_relational::approx_rel_bytes(&out));
                return Ok(JoinOutcome {
                    rel: out,
                    used: imp.tag(),
                    degraded,
                });
            }
            Err(err) if !last && err.retryable() => {
                note_fallback("gsql.ejoin", imp.tag(), chain[i + 1].tag(), &err);
                degraded = true;
            }
            Err(err) => return Err(err),
        }
    }
    Err(GsjError::Internal("empty ejoin fallback chain".into()))
}

/// One enrichment-join implementation, ungoverned by the chain (the chain
/// owns fault injection and fallback; this owns the actual work).
fn run_ejoin_impl(
    e: &GsqlEngine,
    p: &EJoinPlan,
    rel: &Relation,
    imp: EJoinImpl,
    gov: &QueryGovernor,
) -> Result<Relation> {
    let id_attr = e.actual_id_attr(rel, &p.base)?;
    let g = e.the_graph(&p.graph)?;
    match imp {
        EJoinImpl::Online => {
            let rext = e.rexts.get(&p.graph).ok_or_else(|| {
                GsjError::Config(format!("no RExt registered for graph `{}`", p.graph))
            })?;
            let (joined, _state) =
                enrichment_join(rel, &id_attr, g, &p.keywords, rext, &e.her_cfg, gov)?;
            Ok(joined)
        }
        EJoinImpl::Static | EJoinImpl::Dynamic => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            let ex = profile.extraction(&p.base)?;
            let out =
                enrichment_join_precomputed(rel, &id_attr, &ex.matches, &ex.dg, Some(&p.keywords))?;
            gov.charge_rows(out.len() as u64);
            Ok(out)
        }
        EJoinImpl::Heuristic { .. } => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            let out = crate::heuristic::heuristic_enrichment(
                rel,
                Some(&id_attr),
                &p.keywords,
                &profile.typed,
                &e.er_cfg,
            )?;
            gov.charge_rows(out.len() as u64);
            Ok(out)
        }
    }
}

/// Execute a planned link join over its two evaluated (and already
/// qualified) sides, degrading along [`ljoin_chain`] exactly as
/// [`eval_ejoin`] does.
pub(super) fn eval_ljoin(
    e: &GsqlEngine,
    p: &LJoinPlan,
    lrel: &Relation,
    rrel: &Relation,
    gov: &QueryGovernor,
) -> Result<JoinOutcome> {
    let mut span = gsj_obs::span("gsql.ljoin");
    span.field("impl", p.imp.tag())
        .field("graph", &p.graph)
        .field("k", e.k);
    gov.check("gsql.ljoin")?;
    let chain = ljoin_chain(p.imp);
    let mut degraded = false;
    for (i, &imp) in chain.iter().enumerate() {
        let last = i + 1 == chain.len();
        // Armed only on non-final attempts; inside the catch_unwind so a
        // panic-mode fault degrades like an error-mode one (see eval_ejoin).
        let res = catch_unwind(AssertUnwindSafe(|| {
            if !last {
                gsj_faults::fault_point("gsql.ljoin", gsj_faults::FaultClass::Recoverable)?;
            }
            run_ljoin_impl(e, p, lrel, rrel, imp, gov)
        }))
        .unwrap_or_else(|payload| Err(panic_to_error("gsql.ljoin", payload)));
        match res {
            Ok(out) => {
                span.field("used", imp.tag()).field("degraded", degraded);
                gov.charge_mem(gsj_relational::approx_rel_bytes(&out));
                return Ok(JoinOutcome {
                    rel: out,
                    used: imp.tag(),
                    degraded,
                });
            }
            Err(err) if !last && err.retryable() => {
                note_fallback("gsql.ljoin", imp.tag(), chain[i + 1].tag(), &err);
                degraded = true;
            }
            Err(err) => return Err(err),
        }
    }
    Err(GsjError::Internal("empty ljoin fallback chain".into()))
}

/// One link-join implementation (see [`run_ejoin_impl`]).
fn run_ljoin_impl(
    e: &GsqlEngine,
    p: &LJoinPlan,
    lrel: &Relation,
    rrel: &Relation,
    imp: LJoinImpl,
    gov: &QueryGovernor,
) -> Result<Relation> {
    let lid = e.actual_id_attr(lrel, &p.lbase)?;
    let rid = e.actual_id_attr(rrel, &p.rbase)?;
    let g = e.the_graph(&p.graph)?;
    match imp {
        LJoinImpl::Online => link_join(lrel, &lid, rrel, &rid, g, e.k, &e.her_cfg, gov),
        LJoinImpl::Cached => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            let m1 = &profile.extraction(&p.lbase)?.matches;
            let m2 = &profile.extraction(&p.rbase)?.matches;
            // Resolve each side's id column to vertices once (reused below
            // for the pair emission), then the distinct matched vertices.
            let lpos = lrel.schema().require(&lid)?;
            let rpos = rrel.schema().require(&rid)?;
            let v1s: Vec<Option<VertexId>> = (0..lrel.len())
                .map(|i| m1.vertex_of(&lrel.value_at(i, lpos)))
                .collect();
            let v2s: Vec<Option<VertexId>> = (0..rrel.len())
                .map(|i| m2.vertex_of(&rrel.value_at(i, rpos)))
                .collect();
            let mut lv: Vec<VertexId> = v1s.iter().copied().flatten().collect();
            lv.sort();
            lv.dedup();
            let mut rv: Vec<VertexId> = v2s.iter().copied().flatten().collect();
            rv.sort();
            rv.dedup();
            let signature = link_signature(&p.graph, &p.lbase, &p.rbase, e.k, &lv, &rv);
            // An injected cache fault degrades to a miss: the cached copy
            // is distrusted and the connectivity relation is recomputed.
            let cached =
                match gsj_faults::fault_point("gsql.gl_cache", gsj_faults::FaultClass::Recoverable)
                {
                    Ok(()) => profile.cached_link(&signature),
                    Err(err) => {
                        gsj_obs::event("gsql.gl_cache", &[("fault", &true), ("error", &err)]);
                        None
                    }
                };
            let gl = match cached {
                Some(rel) => {
                    GL_CACHE_HITS.inc();
                    gsj_obs::event("gsql.gl_cache", &[("hit", &true), ("rows", &rel.len())]);
                    rel
                }
                None => {
                    GL_CACHE_MISSES.inc();
                    let rel = connectivity_relation(g, &lv, &rv, e.k, "g_l", gov)?;
                    gsj_obs::event("gsql.gl_cache", &[("hit", &false), ("rows", &rel.len())]);
                    profile.cache_link(signature, rel.clone());
                    rel
                }
            };
            let pairs: FxHashSet<(i64, i64)> = (0..gl.len())
                .filter_map(|i| Some((gl.value_at(i, 0).as_int()?, gl.value_at(i, 1).as_int()?)))
                .collect();
            // Emit tuple pairs whose matched vertices are connected:
            // resolve each side's id column once, then one columnar gather
            // per output column instead of a push per pair.
            let mut attrs = lrel.schema().attrs().to_vec();
            attrs.extend(rrel.schema().attrs().iter().cloned());
            let schema = Schema::new(format!("{}_lj_{}", p.lalias, p.ralias), attrs)?;
            let mut li: Vec<u32> = Vec::new();
            let mut ri: Vec<u32> = Vec::new();
            for (i, v1) in v1s.iter().enumerate() {
                let Some(v1) = *v1 else { continue };
                for (j, v2) in v2s.iter().enumerate() {
                    let Some(v2) = *v2 else { continue };
                    if pairs.contains(&(v1.0 as i64, v2.0 as i64)) {
                        li.push(i as u32);
                        ri.push(j as u32);
                    }
                }
            }
            Relation::gather_concat(lrel, &li, rrel, &ri, None, schema)
        }
        LJoinImpl::Heuristic => {
            let profile = e
                .profiles
                .get(&p.graph)
                .ok_or_else(|| GsjError::Config(format!("no profile for graph `{}`", p.graph)))?;
            crate::heuristic::heuristic_link(
                lrel,
                Some(&lid),
                rrel,
                Some(&rid),
                &profile.typed,
                g,
                e.k,
                &e.er_cfg,
                gov,
            )
        }
    }
}

/// `g_L` cache key: graph, bases, k, and the participating vertex sets.
fn link_signature(
    graph: &str,
    lbase: &str,
    rbase: &str,
    k: usize,
    lv: &[VertexId],
    rv: &[VertexId],
) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = gsj_common::FxHasher::default();
    lv.hash(&mut h);
    rv.hash(&mut h);
    format!("{graph}|{lbase}|{rbase}|{k}|{:x}", h.finish())
}
