//! Well-behaved query analysis (Section IV-A).
//!
//! An enrichment join `Q ⋈_A G` is *well-behaved* iff (1) `A ⊆ A_R` for
//! the traced base relation, and (2) the output schema of `Q` carries
//! exactly one base-relation tuple id, or only attributes of one base
//! relation. A link join is well-behaved iff both sides are; a gSQL query
//! is well-behaved iff every semantic join in it is. The check is a
//! bottom-up scan of the query AST, linear in its size.

use super::ast::{FromItem, Projection, Query, Source};
use crate::profile::GraphProfile;
use gsj_common::FxHashMap;
use gsj_relational::Schema;

/// Provenance of a query's output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Every output attribute comes from this base relation.
    SingleBase(String),
    /// The output contains exactly one tuple-id attribute, of this base
    /// relation.
    IdOf(String),
    /// Anything else.
    Mixed,
}

impl Origin {
    /// The base relation this origin pins down, if any.
    pub fn base(&self) -> Option<&str> {
        match self {
            Origin::SingleBase(b) | Origin::IdOf(b) => Some(b),
            Origin::Mixed => None,
        }
    }
}

/// Trace the base relation behind an `e-join` source.
pub fn source_base(source: &Source, id_attrs: &FxHashMap<String, String>) -> Option<String> {
    match source {
        Source::Base(name) => Some(name.clone()),
        Source::Sub(q) => query_origin(q, id_attrs).base().map(str::to_string),
    }
}

/// Compute the output-schema provenance of a query.
pub fn query_origin(q: &Query, id_attrs: &FxHashMap<String, String>) -> Origin {
    // alias → base relation (None = untraceable).
    let mut aliases: Vec<(String, Option<String>)> = Vec::new();
    for item in &q.from {
        match item {
            FromItem::Plain { source, alias } => {
                let base = source_base(source, id_attrs);
                let name = alias.clone().or_else(|| base.clone()).unwrap_or_default();
                aliases.push((name, base));
            }
            FromItem::EJoin { source, alias, .. } => {
                // The join extends the base's tuples; its attributes count
                // as that base's for provenance purposes.
                let base = source_base(source, id_attrs);
                let name = alias.clone().or_else(|| base.clone()).unwrap_or_default();
                aliases.push((name, base));
            }
            FromItem::LJoin {
                left,
                right,
                right_alias,
                ..
            } => {
                let lbase = source_base(left, id_attrs);
                let lname = lbase.clone().unwrap_or_default();
                aliases.push((lname, lbase));
                let rbase = source_base(right, id_attrs);
                let rname = right_alias
                    .clone()
                    .or_else(|| rbase.clone())
                    .unwrap_or_default();
                aliases.push((rname, rbase));
            }
        }
    }

    let distinct_bases: Vec<&String> = {
        let mut bs: Vec<&String> = aliases.iter().filter_map(|(_, b)| b.as_ref()).collect();
        bs.sort();
        bs.dedup();
        bs
    };
    let all_traced = aliases.iter().all(|(_, b)| b.is_some());

    if q.projections == vec![Projection::Star] {
        return if all_traced && distinct_bases.len() == 1 {
            Origin::SingleBase(distinct_bases[0].clone())
        } else {
            Origin::Mixed
        };
    }

    // Resolve each projected column to a base.
    let owner_of = |name: &str| -> Option<String> {
        if let Some((prefix, _)) = name.split_once('.') {
            aliases
                .iter()
                .find(|(a, _)| a == prefix)
                .and_then(|(_, b)| b.clone())
        } else if all_traced && distinct_bases.len() == 1 {
            Some(distinct_bases[0].clone())
        } else {
            None
        }
    };

    let mut col_bases: Vec<Option<String>> = Vec::new();
    let mut id_cols: Vec<String> = Vec::new();
    let mut has_agg = false;
    for p in &q.projections {
        match p {
            Projection::Star => return Origin::Mixed, // mixed with cols
            Projection::Agg { .. } => has_agg = true,
            Projection::Col { name, .. } => {
                let base = owner_of(name);
                if let Some(b) = &base {
                    if id_attrs.get(b).map(String::as_str) == Some(Schema::base_name(name)) {
                        id_cols.push(b.clone());
                    }
                }
                col_bases.push(base);
            }
        }
    }

    let bases: Vec<&String> = {
        let mut bs: Vec<&String> = col_bases.iter().filter_map(|b| b.as_ref()).collect();
        bs.sort();
        bs.dedup();
        bs
    };
    if !has_agg && col_bases.iter().all(|b| b.is_some()) && bases.len() == 1 {
        return Origin::SingleBase(bases[0].clone());
    }
    if id_cols.len() == 1 {
        return Origin::IdOf(id_cols[0].clone());
    }
    Origin::Mixed
}

/// Is one semantic-join item well-behaved?
fn join_well_behaved(
    item: &FromItem,
    profiles: &FxHashMap<String, GraphProfile>,
    id_attrs: &FxHashMap<String, String>,
) -> bool {
    match item {
        FromItem::EJoin {
            source,
            graph,
            keywords,
            ..
        } => {
            let Some(base) = source_base(source, id_attrs) else {
                return false;
            };
            let Some(profile) = profiles.get(graph) else {
                return false;
            };
            if !profile.covers(&base, keywords) {
                return false;
            }
            // Nested semantic joins inside the source must be well-behaved
            // too.
            if let Source::Sub(q) = source {
                if !is_well_behaved(q, profiles, id_attrs) {
                    return false;
                }
            }
            true
        }
        FromItem::LJoin { left, right, .. } => {
            let lb = source_base(left, id_attrs).is_some();
            let rb = source_base(right, id_attrs).is_some();
            if !(lb && rb) {
                return false;
            }
            for s in [left, right] {
                if let Source::Sub(q) = s {
                    if !is_well_behaved(q, profiles, id_attrs) {
                        return false;
                    }
                }
            }
            true
        }
        FromItem::Plain { .. } => true,
    }
}

/// Is the whole query well-behaved? (Every semantic join in it is.)
pub fn is_well_behaved(
    q: &Query,
    profiles: &FxHashMap<String, GraphProfile>,
    id_attrs: &FxHashMap<String, String>,
) -> bool {
    for item in &q.from {
        if !join_well_behaved(item, profiles, id_attrs) {
            return false;
        }
        // Plain sub-queries may hide semantic joins.
        if let FromItem::Plain {
            source: Source::Sub(sub),
            ..
        } = item
        {
            if !is_well_behaved(sub, profiles, id_attrs) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsql::parser::parse_query;

    fn ids() -> FxHashMap<String, String> {
        let mut m = FxHashMap::default();
        m.insert("customer".to_string(), "cid".to_string());
        m.insert("product".to_string(), "pid".to_string());
        m
    }

    #[test]
    fn base_scan_is_single_base() {
        let q = parse_query("select cid, name from customer").unwrap();
        assert_eq!(
            query_origin(&q, &ids()),
            Origin::SingleBase("customer".into())
        );
    }

    #[test]
    fn star_over_two_relations_is_mixed() {
        let q = parse_query("select * from customer, product").unwrap();
        assert_eq!(query_origin(&q, &ids()), Origin::Mixed);
    }

    #[test]
    fn single_id_projection_is_traceable() {
        let q = parse_query(
            "select customer.cid from customer, product where customer.cid = product.pid",
        )
        .unwrap();
        // The single projected column is both "attributes of one base
        // relation only" and "exactly one tuple id" — either way it pins
        // down `customer`.
        assert_eq!(query_origin(&q, &ids()).base(), Some("customer"));
    }

    #[test]
    fn id_plus_foreign_attr_is_id_of() {
        let q = parse_query("select customer.cid, product.risk from customer, product").unwrap();
        assert_eq!(query_origin(&q, &ids()), Origin::IdOf("customer".into()));
    }

    #[test]
    fn two_ids_projected_is_mixed() {
        // Example 10: Q' fetches the id attributes of both customer and
        // product → not well-behaved.
        let q = parse_query("select customer.cid, product.pid from customer, product").unwrap();
        assert_eq!(query_origin(&q, &ids()), Origin::Mixed);
    }

    #[test]
    fn subquery_origin_traces_through() {
        let q = parse_query("select * from (select cid, name from customer) as c").unwrap();
        assert_eq!(
            query_origin(&q, &ids()),
            Origin::SingleBase("customer".into())
        );
    }
}
