//! gSQL: SQL extended with `e-join` / `l-join` syntactic sugar for
//! semantic joins (Section II-C).
//!
//! ```text
//! select A1, ..., Ah
//! from   R1, ..., Rn,
//!        S1 e-join G1<A1> as T1, ...,
//!        Ta l-join <G> Tb as Tb', ...
//! where  CONDITION-1 and/or ... CONDITION-P
//! ```
//!
//! A gSQL query returns a relation and "can be rewritten into an SQL query"
//! — [`exec`] performs that rewriting against the relational engine, under
//! one of three strategies (conceptual baseline, optimized joins over
//! pre-extracted relations for well-behaved queries, heuristic joins).

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod strategies;

pub use ast::{FromItem, Projection, Query, Source};
pub use exec::{GsqlEngine, Strategy};
pub use parser::parse_query;
pub use plan::{ItemPlan, QueryPlan};
pub use strategies::{EJoinImpl, LJoinImpl};
