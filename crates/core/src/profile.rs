//! Offline preprocessing for the efficient semantic-join method
//! (Section IV-A): profile graph `G` once, materialize everything
//! well-behaved queries need, and maintain a cache of link-join
//! connectivity relations `g_L`.
//!
//! Concretely, for each input relation `D` of schema `R` the profile
//! holds: (1) the HER matches `f(D,G)`; (2) a set `A_R` of reference
//! keywords; (3) the extracted schema `R_G` and relation `h(D,G)`; and for
//! heuristic joins the typed relations `gτ(G)`.

use crate::incext::Extraction;
use crate::rext::Rext;
use crate::typed::{extract_typed, TypedConfig, TypedRelation};
use gsj_common::{FxHashMap, GsjError, Result};
use gsj_graph::LabeledGraph;
use gsj_her::{her_match, HerConfig};
use gsj_relational::{Database, Relation};
use parking_lot::Mutex;

/// What to profile for one base relation.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Base relation name in the catalog.
    pub name: String,
    /// Its tuple-id (primary key) attribute.
    pub id_attr: String,
    /// The reference keywords `A_R` (from query logs / expert users in the
    /// paper; from the workload spec here).
    pub keywords: Vec<String>,
}

impl RelationSpec {
    /// Convenience constructor.
    pub fn new(name: &str, id_attr: &str, keywords: &[&str]) -> Self {
        RelationSpec {
            name: name.into(),
            id_attr: id_attr.into(),
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// The materialized offline state.
pub struct GraphProfile {
    /// Per-relation specs (including `A_R`).
    pub specs: FxHashMap<String, RelationSpec>,
    /// Per-relation extraction state: `f(D,G)`, discovery, `h(D,G)`.
    pub extractions: FxHashMap<String, Extraction>,
    /// Typed relations `gτ(G)` for heuristic joins.
    pub typed: FxHashMap<String, TypedRelation>,
    /// The `g_L` cache, keyed by a query-shape signature.
    link_cache: Mutex<FxHashMap<String, Relation>>,
}

impl GraphProfile {
    /// Profile `g` against the given base relations: run HER, pattern
    /// discovery with `A_R`, extraction, and (optionally) typed
    /// extraction. This is the offline pre-computation of Exp-3(I)(b).
    pub fn build(
        g: &LabeledGraph,
        db: &Database,
        specs: Vec<RelationSpec>,
        rext: &Rext,
        her_cfg: &HerConfig,
        typed_cfg: Option<&TypedConfig>,
    ) -> Result<GraphProfile> {
        let mut build_span = gsj_obs::span("profile.build");
        build_span.field("relations", specs.len());
        let mut extractions = FxHashMap::default();
        let mut spec_map = FxHashMap::default();
        for spec in specs {
            let mut span = gsj_obs::span("profile.relation");
            span.field("relation", &spec.name);
            let rel = db.get(&spec.name)?;
            let cfg = HerConfig {
                id_attr: spec.id_attr.clone(),
                ..her_cfg.clone()
            };
            let matches = her_match(g, rel, &cfg)?;
            let discovery = rext.discover(
                g,
                &matches,
                Some((rel, &spec.id_attr)),
                &spec.keywords,
                &format!("h_{}", spec.name),
            )?;
            let dg = rext.extract(g, &matches, &discovery)?;
            extractions.insert(
                spec.name.clone(),
                Extraction {
                    discovery,
                    matches,
                    dg,
                },
            );
            spec_map.insert(spec.name.clone(), spec);
        }
        let typed = match typed_cfg {
            Some(cfg) => {
                let mut span = gsj_obs::span("profile.typed");
                let typed = extract_typed(g, rext, cfg)?;
                span.field("types", typed.len());
                typed
            }
            None => FxHashMap::default(),
        };
        Ok(GraphProfile {
            specs: spec_map,
            extractions,
            typed,
            link_cache: Mutex::new(FxHashMap::default()),
        })
    }

    /// The reference keywords `A_R` of a base relation.
    pub fn reference_keywords(&self, relation: &str) -> Option<&[String]> {
        self.specs.get(relation).map(|s| s.keywords.as_slice())
    }

    /// `A ⊆ A_R`? — condition (1) of well-behavedness (Section IV-A).
    pub fn covers(&self, relation: &str, keywords: &[String]) -> bool {
        match self.reference_keywords(relation) {
            None => false,
            Some(ar) => keywords.iter().all(|k| ar.contains(k)),
        }
    }

    /// The extraction state of a base relation.
    pub fn extraction(&self, relation: &str) -> Result<&Extraction> {
        self.extractions
            .get(relation)
            .ok_or_else(|| GsjError::NotFound(format!("profile for relation `{relation}`")))
    }

    /// Replace a relation's extraction state (IncExt commits through
    /// here).
    pub fn set_extraction(&mut self, relation: &str, e: Extraction) {
        self.extractions.insert(relation.to_string(), e);
        // Graph structure changed → cached connectivity is stale.
        self.link_cache.lock().clear();
    }

    /// Look up a cached `g_L` connectivity relation.
    pub fn cached_link(&self, signature: &str) -> Option<Relation> {
        self.link_cache.lock().get(signature).cloned()
    }

    /// Store a `g_L` connectivity relation ("we keep those g_L for recent
    /// queries as a cache").
    pub fn cache_link(&self, signature: String, rel: Relation) {
        self.link_cache.lock().insert(signature, rel);
    }

    /// Number of cached link relations.
    pub fn link_cache_len(&self) -> usize {
        self.link_cache.lock().len()
    }

    /// Rough materialization footprint in bytes (for the "% of raw data"
    /// statistics of Exp-3(I)): sums rendered value lengths of all
    /// materialized relations.
    pub fn materialized_bytes(&self) -> usize {
        let rel_bytes = |r: &Relation| -> usize {
            r.tuples()
                .iter()
                .flat_map(|t| t.values().iter())
                .map(|v| v.to_string().len())
                .sum()
        };
        let mut total = 0usize;
        for e in self.extractions.values() {
            total += rel_bytes(&e.dg);
            total += e.matches.len() * 16;
        }
        for t in self.typed.values() {
            total += rel_bytes(&t.relation);
        }
        total += self
            .link_cache
            .lock()
            .values()
            .map(|r| r.len() * 16)
            .sum::<usize>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PathKind, RExtConfig};
    use gsj_common::Value;
    use gsj_relational::Schema;

    fn setting() -> (LabeledGraph, Database) {
        let mut g = LabeledGraph::new();
        let ty = g.add_vertex("Product");
        for i in 0..3 {
            let p = g.add_vertex(&format!("prod-{i}"));
            g.add_edge(p, "type", ty);
            let n = g.add_vertex(&format!("Gadget {i}"));
            g.add_edge(p, "name", n);
            let c = g.add_vertex(&format!("maker{i}"));
            g.add_edge(p, "made_by", c);
        }
        let mut rel = Relation::empty(Schema::of("product", &["pid", "name"]));
        for i in 0..3 {
            rel.push_values(vec![
                Value::str(format!("fd{i}")),
                Value::str(format!("Gadget {i}")),
            ])
            .unwrap();
        }
        let mut db = Database::new();
        db.insert(rel);
        (g, db)
    }

    fn quick_rext(g: &LabeledGraph) -> Rext {
        Rext::train(
            g,
            RExtConfig {
                k: 2,
                h: 6,
                m: 2,
                path: PathKind::Random,
                threads: 1,
                ..RExtConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn build_profiles_relations_and_types() {
        let (g, db) = setting();
        let rext = quick_rext(&g);
        let profile = GraphProfile::build(
            &g,
            &db,
            vec![RelationSpec::new("product", "pid", &["company", "name"])],
            &rext,
            &HerConfig::default(),
            Some(&TypedConfig::default()),
        )
        .unwrap();
        assert!(profile.covers("product", &["company".to_string()]));
        assert!(!profile.covers("product", &["salary".to_string()]));
        assert!(!profile.covers("nonexistent", &[]));
        let e = profile.extraction("product").unwrap();
        assert_eq!(e.matches.len(), 3);
        assert_eq!(e.dg.len(), 3);
        assert!(profile.typed.contains_key("Product"));
        assert!(profile.materialized_bytes() > 0);
    }

    #[test]
    fn link_cache_roundtrip_and_invalidation() {
        let (g, db) = setting();
        let rext = quick_rext(&g);
        let mut profile = GraphProfile::build(
            &g,
            &db,
            vec![RelationSpec::new("product", "pid", &["name"])],
            &rext,
            &HerConfig::default(),
            None,
        )
        .unwrap();
        assert!(profile.cached_link("sig").is_none());
        profile.cache_link(
            "sig".into(),
            Relation::empty(Schema::of("gl", &["vid1", "vid2"])),
        );
        assert!(profile.cached_link("sig").is_some());
        assert_eq!(profile.link_cache_len(), 1);
        // Committing new extraction state clears the cache.
        let e = profile.extraction("product").unwrap().clone();
        profile.set_extraction("product", e);
        assert_eq!(profile.link_cache_len(), 0);
    }
}
