//! The RExt facade: wiring path selection, embedding, clustering,
//! refinement, ranking and extraction into the two-phase scheme of
//! Section III-A (see Fig. 4's workflow diagram).

use crate::config::{EmbedKind, PathKind, RExtConfig, SeqKind};
use crate::discover::{inject_cluster_noise, refine_patterns, select_attributes, Discovery};
use crate::extract::extract_relation;
use crate::ranking::TupleAttrEmbs;
use gsj_cluster::{kmeans, KmeansConfig};
use gsj_common::{FxHashMap, Result, Value};
use gsj_graph::random_walk::{build_corpus_governed, WalkConfig};
use gsj_graph::{LabeledGraph, Path, VertexId};
use gsj_her::normalize::value_text;
use gsj_her::MatchRelation;
use gsj_nn::lm::SequenceEmbedder;
use gsj_nn::{AttnEncoder, HashEmbedder, LanguageModel, WordEmbedder};
use gsj_relational::Relation;
use std::sync::Arc;

static EXTRACTED_ROWS: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_core_extracted_rows_total");

/// Map `f` over `items` with scoped threads, preserving order.
pub(crate) fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || items.len() < 2 * threads {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                let f = &f;
                s.spawn(move |_| slice.iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("parallel_map worker panicked"));
        }
        out
    })
    .expect("parallel_map scope panicked")
}

/// The trained extraction scheme for one graph.
///
/// Construction ([`Rext::train`]) performs the offline part: building the
/// random-walk corpus and training the language model `Mρ`. The online
/// parts are [`Rext::discover`] (pattern discovery for a match relation and
/// keyword set) and [`Rext::extract`] (Algorithm 1). Cloning shares the
/// trained models (they sit behind `Arc`s).
#[derive(Clone)]
pub struct Rext {
    cfg: RExtConfig,
    word: Arc<dyn WordEmbedder>,
    seq: Arc<dyn SequenceEmbedder>,
    lm: Option<Arc<LanguageModel>>,
}

impl Rext {
    /// Train the scheme on a graph (model training is the offline
    /// preprocessing of Exp-3(I)(a)).
    pub fn train(g: &LabeledGraph, cfg: RExtConfig) -> Result<Self> {
        let _span = gsj_obs::span("rext.train");
        cfg.validate()?;
        let needs_lm =
            cfg.path == PathKind::LmGuided || matches!(cfg.seq, SeqKind::Lstm100 | SeqKind::Lstm50);
        let lm = if needs_lm {
            // Governed so the corpus walk carries its fault point
            // (`graph.random_walk`); training itself has no deadline.
            let corpus = build_corpus_governed(
                g,
                &WalkConfig {
                    walks_per_vertex: 3,
                    max_len: cfg.k.max(2) * 2,
                    seed: cfg.seed,
                },
                &gsj_common::QueryGovernor::unlimited(),
            )?;
            let mut lm_cfg = cfg.lm.clone();
            lm_cfg.seed = cfg.seed ^ 0x1111;
            Some(Arc::new(LanguageModel::train(&corpus, g.symbols(), lm_cfg)))
        } else {
            None
        };
        let word: Arc<dyn WordEmbedder> = match cfg.embed {
            EmbedKind::Hash100 => Arc::new(HashEmbedder::new(256)),
            EmbedKind::Hash50 => Arc::new(HashEmbedder::short()),
            EmbedKind::Attn => Arc::new(AttnEncoder::for_words(256)),
        };
        let seq: Arc<dyn SequenceEmbedder> = match cfg.seq {
            SeqKind::Lstm100 | SeqKind::Lstm50 => {
                Arc::clone(lm.as_ref().expect("LM trained above")) as Arc<dyn SequenceEmbedder>
            }
            SeqKind::Attn => Arc::new(AttnEncoder::for_sequences(100, g.symbols().clone())),
        };
        Ok(Rext { cfg, word, seq, lm })
    }

    /// The configuration this scheme was built with.
    pub fn config(&self) -> &RExtConfig {
        &self.cfg
    }

    /// A shallow clone with a different attribute budget `m` (shares the
    /// trained models; used by the Exp-2 `m` sweep).
    pub fn with_m(&self, m: usize) -> Rext {
        let mut clone = self.clone();
        clone.cfg.m = m;
        clone
    }

    /// A shallow clone with a different cluster count `H` (shares the
    /// trained models; used by the Exp-2 `H` sweep — clustering happens at
    /// discovery time, not training time).
    pub fn with_h(&self, h: usize) -> Rext {
        let mut clone = self.clone();
        clone.cfg.h = h;
        clone
    }

    /// A shallow clone with a different path bound `k` (shares the trained
    /// models; the LM is trained on walks long enough for any `k` in the
    /// Exp-2 sweep range).
    pub fn with_k(&self, k: usize) -> Rext {
        let mut clone = self.clone();
        clone.cfg.k = k;
        clone
    }

    /// The word embedder `Me`.
    pub fn word_embedder(&self) -> &dyn WordEmbedder {
        self.word.as_ref()
    }

    /// The trained language model, when the variant uses one.
    pub fn language_model(&self) -> Option<&LanguageModel> {
        self.lm.as_deref()
    }

    /// Select paths from one vertex under this scheme's path strategy.
    pub fn select_paths(&self, g: &LabeledGraph, v: VertexId) -> Vec<Path> {
        crate::path_select::select_paths(
            g,
            v,
            self.cfg.k,
            self.cfg.path,
            self.lm.as_deref(),
            self.cfg.seed,
        )
    }

    /// Phase I: pattern discovery.
    ///
    /// `reference` optionally carries the tuple set `S` and its id
    /// attribute — used for the ranking function's second term; pass
    /// `None` for extraction without reference tuples (Section III-A's
    /// typed preprocessing). `schema_name` names the produced `R_G`.
    pub fn discover(
        &self,
        g: &LabeledGraph,
        matches: &MatchRelation,
        reference: Option<(&Relation, &str)>,
        keywords: &[String],
        schema_name: &str,
    ) -> Result<Discovery> {
        self.discover_with_noise(g, matches, reference, keywords, schema_name, None)
    }

    /// [`Rext::discover`] with optional clustering-noise injection
    /// `(fraction, seed)` — the Fig 5(f) robustness experiment.
    pub fn discover_with_noise(
        &self,
        g: &LabeledGraph,
        matches: &MatchRelation,
        reference: Option<(&Relation, &str)>,
        keywords: &[String],
        schema_name: &str,
        cluster_noise: Option<(f64, u64)>,
    ) -> Result<Discovery> {
        let mut disc_span = gsj_obs::span("rext.discover");
        gsj_faults::fault_point("rext.discover", gsj_faults::FaultClass::Critical)?;
        static PATHS_SELECTED: gsj_obs::LazyCounter =
            gsj_obs::LazyCounter::new("gsj_core_paths_selected_total");
        // (1) Path selection per distinct matched vertex, in parallel.
        let mut vertices: Vec<VertexId> = matches.vertices().collect();
        vertices.sort();
        vertices.dedup();
        let (paths_map, flat) = {
            let mut span = gsj_obs::span("rext.path_select");
            let per_vertex: Vec<Vec<Path>> =
                parallel_map(&vertices, self.cfg.threads, |&v| self.select_paths(g, v));
            let mut paths_map: FxHashMap<VertexId, Vec<Path>> = FxHashMap::default();
            let mut flat: Vec<Path> = Vec::new();
            for (v, paths) in vertices.iter().zip(per_vertex) {
                flat.extend(paths.iter().cloned());
                paths_map.insert(*v, paths);
            }
            span.field("vertices", vertices.len())
                .field("paths", flat.len());
            PATHS_SELECTED.add(flat.len() as u64);
            (paths_map, flat)
        };

        // (2) Vertex-path pair vectorization, in parallel.
        let word = self.word.as_ref();
        let seq = self.seq.as_ref();
        let features: Vec<Vec<f32>> = {
            let mut span = gsj_obs::span("rext.embed");
            let features: Vec<Vec<f32>> = parallel_map(&flat, self.cfg.threads, |p| {
                crate::embed_paths::embed_pair(g, p, word, seq)
            });
            span.field("pairs", features.len());
            features
        };
        let word_dim = self.word.dim();

        // (3a) KMC.
        let mut assignments = {
            let _span = gsj_obs::span("rext.cluster");
            kmeans(
                &features,
                &KmeansConfig {
                    k: self.cfg.h,
                    max_iters: self.cfg.kmeans_iters,
                    threads: self.cfg.threads,
                    seed: self.cfg.seed ^ 0x2222,
                    ..KmeansConfig::default()
                },
            )
            .assignments
        };
        if let Some((frac, seed)) = cluster_noise {
            inject_cluster_noise(&mut assignments, self.cfg.h, frac, seed);
        }

        // (3b) Majority-vote pattern refinement, then the simulated user
        // inspection dropping peer-link clusters.
        let refined = {
            let mut span = gsj_obs::span("rext.refine");
            let refined = refine_patterns(&flat, &assignments, self.cfg.h);
            let refined = if self.cfg.filter_same_type_ends {
                crate::discover::filter_link_clusters(g, refined, &flat, &self.cfg.type_edges)
            } else {
                refined
            };
            span.field("clusters", refined.len());
            refined
        };

        // (4) Ranking and attribute selection. Naming embeddings combine
        // the path's edge labels with its end label (see
        // `discover::build_w_entries` for the rationale).
        let mut rank_span = gsj_obs::span("rext.rank");
        let name_embs: Vec<Vec<f32>> =
            parallel_map(&flat, self.cfg.threads, |p| naming_embedding(g, p, word));
        let keyword_embs: Vec<(String, Vec<f32>)> = keywords
            .iter()
            .map(|k| (k.clone(), self.word.embed(k)))
            .collect();
        let tuple_attr_embs = match reference {
            Some((s, id_attr)) => self.tuple_attr_embeddings(s, id_attr, matches)?,
            None => TupleAttrEmbs::default(),
        };
        let (clusters, schema) = select_attributes(
            &refined,
            &flat,
            &name_embs,
            &tuple_attr_embs,
            &keyword_embs,
            self.cfg.m.min(keywords.len().max(1)),
            schema_name,
        )?;
        rank_span.field("attrs", schema.arity());
        drop(rank_span);
        disc_span
            .field("schema", schema_name)
            .field("paths", flat.len());

        Ok(Discovery {
            clusters,
            schema,
            refined,
            paths: paths_map,
            keyword_embs,
            total_paths: flat.len(),
            word_dim,
        })
    }

    /// Embeddings of each matched tuple's attribute values, keyed by the
    /// matched vertex (the `x_{t_j.Aφ}` of the ranking function). The id
    /// column is excluded — ids are surrogates local to `D`.
    fn tuple_attr_embeddings(
        &self,
        s: &Relation,
        id_attr: &str,
        matches: &MatchRelation,
    ) -> Result<TupleAttrEmbs> {
        let id_pos = s.schema().require(id_attr)?;
        // tid → tuple index.
        let mut by_tid: FxHashMap<Value, usize> = FxHashMap::default();
        for (i, t) in s.tuples().iter().enumerate() {
            by_tid.insert(t.get(id_pos).clone(), i);
        }
        let mut out = TupleAttrEmbs::default();
        for (tid, vid) in matches.pairs() {
            let Some(&row) = by_tid.get(tid) else {
                continue;
            };
            let embs: Vec<Option<Vec<f32>>> = s.tuples()[row]
                .values()
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    if i == id_pos {
                        return None;
                    }
                    value_text(v).map(|text| self.word.embed(&text))
                })
                .collect();
            out.insert(*vid, embs);
        }
        Ok(out)
    }

    /// Phase II: Algorithm 1 over all matches, producing `h(S,G)`.
    pub fn extract(
        &self,
        g: &LabeledGraph,
        matches: &MatchRelation,
        discovery: &Discovery,
    ) -> Result<Relation> {
        let mut span = gsj_obs::span("rext.extract");
        gsj_faults::fault_point("rext.extract", gsj_faults::FaultClass::Critical)?;
        let out = extract_relation(g, matches.vertices(), discovery, self.word.as_ref(), |v| {
            self.select_paths(g, v)
        })?;
        EXTRACTED_ROWS.add(out.len() as u64);
        span.field("rows", out.len());
        Ok(out)
    }

    /// Algorithm 1 restricted to specific vertices with *fresh* path
    /// selection (IncExt re-extraction; the discovery cache may be stale
    /// for these vertices).
    pub fn extract_vertices(
        &self,
        g: &LabeledGraph,
        vertices: &[VertexId],
        discovery: &Discovery,
    ) -> Result<Relation> {
        // Bypass the discovery cache entirely: these vertices' vicinities
        // changed.
        let mut span = gsj_obs::span("rext.extract");
        let mut stripped = discovery.clone();
        for v in vertices {
            stripped.paths.remove(v);
        }
        let out = extract_relation(
            g,
            vertices.iter().copied(),
            &stripped,
            self.word.as_ref(),
            |v| self.select_paths(g, v),
        )?;
        EXTRACTED_ROWS.add(out.len() as u64);
        span.field("rows", out.len()).field("fresh", vertices.len());
        Ok(out)
    }
}

/// The naming embedding of a path: word embedding of the end vertex's
/// label (double weight) plus the last edge label, L2-normalized. Used by
/// the ranking function's keyword and overlap terms.
///
/// The paper's formula embeds the end label alone, relying on pretrained
/// GloVe to place values near concept words (`UK` near `location`). Our
/// hash embedder has no world knowledge, so the final predicate carries
/// the concept signal instead — the paper's own motivating example: "to
/// retrieve UK from G as the country of company1, one need to select
/// semantically close regloc". Only the *last* edge participates: an
/// attribute is named by where its paths end, and including earlier hops
/// would let `treats_symptom` tokens hijack the `disease` cluster one hop
/// further down the chain.
pub(crate) fn naming_embedding(g: &LabeledGraph, path: &Path, word: &dyn WordEmbedder) -> Vec<f32> {
    let mut emb = word.embed(&g.vertex_label_str(path.end()));
    gsj_nn::vector::scale(&mut emb, 2.0);
    if let Some(&last) = path.labels().last() {
        let edge_emb = word.embed(&g.symbols().resolve(last));
        gsj_nn::vector::add_assign(&mut emb, &edge_emb);
    }
    gsj_nn::vector::l2_normalize(&mut emb);
    emb
}

/// Crate-internal access to [`Rext::tuple_attr_embeddings`] (used by
/// IncExt's keyword-update path).
pub(crate) fn tuple_attr_embeddings_for(
    rext: &Rext,
    s: &Relation,
    id_attr: &str,
    matches: &MatchRelation,
) -> Result<TupleAttrEmbs> {
    rext.tuple_attr_embeddings(s, id_attr, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_nn::LmConfig;
    use gsj_relational::Schema;

    /// A small two-product fintech graph in the shape of Fig. 1, plus the
    /// product relation and a perfect match relation.
    fn setting() -> (LabeledGraph, Relation, MatchRelation) {
        let mut g = LabeledGraph::new();
        let mut matches = MatchRelation::new();
        let mut s = Relation::empty(Schema::of("product", &["pid", "name", "type"]));
        let countries = ["UK", "US", "DE", "FR"];
        #[allow(clippy::needless_range_loop)] // i indexes several parallel pools
        for i in 0..4 {
            let pid = g.add_vertex(&format!("pid{i}"));
            let name = g.add_vertex(&format!("Fund {i}"));
            let company = g.add_vertex(&format!("company{i}"));
            let country = g.add_vertex(countries[i]);
            let ty = g.add_vertex(if i % 2 == 0 { "Funds" } else { "Stocks" });
            g.add_edge(pid, "name", name);
            g.add_edge(pid, "issue", company);
            g.add_edge(company, "regloc", country);
            g.add_edge(pid, "type", ty);
            s.push_values(vec![
                Value::str(format!("fd{i}")),
                Value::str(format!("Fund {i}")),
                Value::str(if i % 2 == 0 { "Funds" } else { "Stocks" }),
            ])
            .unwrap();
            matches.push(Value::str(format!("fd{i}")), pid);
        }
        (g, s, matches)
    }

    fn quick_cfg(path: PathKind) -> RExtConfig {
        RExtConfig {
            k: 3,
            h: 8,
            m: 2,
            path,
            lm: LmConfig {
                embed_dim: 8,
                hidden: 24,
                epochs: 20,
                seed: 5,
                ..LmConfig::default()
            },
            threads: 1,
            seed: 77,
            ..RExtConfig::default()
        }
    }

    #[test]
    fn end_to_end_discovery_and_extraction_guided() {
        let (g, s, matches) = setting();
        let rext = Rext::train(&g, quick_cfg(PathKind::LmGuided)).unwrap();
        let keywords = vec!["loc".to_string(), "company".to_string()];
        let disc = rext
            .discover(&g, &matches, Some((&s, "pid")), &keywords, "h_product")
            .unwrap();
        assert!(!disc.clusters.is_empty());
        assert!(disc.schema.contains("vid"));
        let dg = rext.extract(&g, &matches, &disc).unwrap();
        assert_eq!(dg.len(), 4);
        // The loc attribute must recover the countries for most products.
        if let Some(loc_col) = disc.schema.attrs().iter().find(|a| a.as_str() == "loc") {
            let vals = dg.column(loc_col).unwrap();
            let recovered = vals
                .iter()
                .filter(|v| matches!(v.as_str(), Some("UK" | "US" | "DE" | "FR")))
                .count();
            assert!(recovered >= 3, "recovered {recovered} locs: {vals:?}");
        } else {
            panic!("`loc` not selected; schema = {:?}", disc.schema.attrs());
        }
    }

    #[test]
    fn random_path_variant_also_extracts() {
        let (g, s, matches) = setting();
        let rext = Rext::train(&g, quick_cfg(PathKind::Random)).unwrap();
        let disc = rext
            .discover(
                &g,
                &matches,
                Some((&s, "pid")),
                &["company".to_string()],
                "h_product",
            )
            .unwrap();
        let dg = rext.extract(&g, &matches, &disc).unwrap();
        assert_eq!(dg.len(), 4);
        assert_eq!(dg.schema().attrs()[0], "vid");
    }

    #[test]
    fn empty_matches_give_empty_extraction() {
        let (g, s, _) = setting();
        let rext = Rext::train(&g, quick_cfg(PathKind::Random)).unwrap();
        let empty = MatchRelation::new();
        let disc = rext
            .discover(&g, &empty, Some((&s, "pid")), &["loc".to_string()], "h_p")
            .unwrap();
        let dg = rext.extract(&g, &empty, &disc).unwrap();
        assert!(dg.is_empty());
    }

    #[test]
    fn noise_injection_path_is_exercised() {
        let (g, s, matches) = setting();
        let rext = Rext::train(&g, quick_cfg(PathKind::Random)).unwrap();
        let disc = rext
            .discover_with_noise(
                &g,
                &matches,
                Some((&s, "pid")),
                &["loc".to_string()],
                "h_p",
                Some((0.3, 1)),
            )
            .unwrap();
        // Refinement keeps the pipeline functional despite 30% noise.
        let dg = rext.extract(&g, &matches, &disc).unwrap();
        assert_eq!(dg.len(), 4);
    }

    #[test]
    fn extract_vertices_matches_full_extraction() {
        let (g, s, matches) = setting();
        let rext = Rext::train(&g, quick_cfg(PathKind::Random)).unwrap();
        let disc = rext
            .discover(
                &g,
                &matches,
                Some((&s, "pid")),
                &["loc".to_string(), "company".to_string()],
                "h_p",
            )
            .unwrap();
        let full = rext.extract(&g, &matches, &disc).unwrap();
        let vids: Vec<VertexId> = matches.vertices().collect();
        let partial = rext.extract_vertices(&g, &vids, &disc).unwrap();
        // Same rows (order may differ) — fresh selection is deterministic
        // and the graph is unchanged.
        let mut a: Vec<_> = full.tuples().to_vec();
        let mut b: Vec<_> = partial.tuples().to_vec();
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let small = parallel_map(&items[..3], 8, |&x| x + 1);
        assert_eq!(small, vec![1, 2, 3]);
    }
}
