//! `SelectPath`: model-guided path selection (Section III-A step 1).
//!
//! From a matched entity vertex `vi`, paths are grown per incident edge
//! (undirected view). At each step the language model is queried for the
//! next-token distribution and the incident edges whose *labels* the model
//! rates highest are taken — the top `BRANCH` (2) distinct labels, each
//! through one deterministic representative edge. The walk stops when (a)
//! the model rates `<eos>` above every feasible continuation, (b) there is
//! no edge to take, (c) the length bound `k` is reached, or (d) the only
//! continuations would close a cycle. Every prefix of a grown path is
//! retained in the output, so properties at all depths `1..=k` are
//! reachable by pattern matching later.
//!
//! The small distinct-label branching factor is a deliberate refinement of
//! the paper's strictly greedy rule: in graphs where value vertices are
//! shared hubs, the majority incident label at a hub points *back into
//! other entities*, and a single greedy chain would never descend to the
//! deeper properties (symptoms, diseases, countries). Branching over
//! distinct labels keeps the selection LM-guided and non-enumerative
//! (≤ `BRANCH^k` chains per seed edge, hard-capped) while restoring
//! coverage of legitimate property chains.
//!
//! The `RndPath` baseline replaces the model's choice with a uniformly
//! random single chain (same stop conditions minus `<eos>`).

use gsj_graph::{Direction, Edge, LabeledGraph, Path, VertexId};
use gsj_nn::lm::EOS;
use gsj_nn::{LanguageModel, LmSession};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// How many paths to retain per start vertex at most (a safety valve for
/// very high-degree vertices).
const MAX_PATHS_PER_VERTEX: usize = 128;

/// Distinct incident labels expanded per step.
const BRANCH: usize = 2;

/// Is taking `(edge, dir)` after having arrived via `(prev_label,
/// prev_dir)` a *sibling bounce* — entering and leaving a shared vertex
/// over the same predicate with flipped orientation (`X -p-> V <-p- Y`)?
/// Such hops connect peers of the hub, not properties, and are excluded
/// from selection. Same label with the *same* orientation is a genuine
/// transitive chain (`A -cites-> B -cites-> C`) and stays allowed.
#[inline]
fn is_sibling_bounce(
    prev: Option<(gsj_common::Symbol, Direction)>,
    edge: &Edge,
    dir: Direction,
) -> bool {
    match prev {
        Some((pl, pd)) => pl == edge.label && pd != dir,
        None => false,
    }
}

/// Select paths from `start`, guided by `lm`.
pub fn select_paths_guided(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    lm: &LanguageModel,
) -> Vec<Path> {
    let mut out = Vec::new();
    let Some(start_label) = g.vertex_label(start) else {
        return out;
    };
    for (first_edge, first_dir) in g.incident(start) {
        if out.len() >= MAX_PATHS_PER_VERTEX {
            break;
        }
        let mut path = Path::new(start);
        if !path.push(first_edge.label, first_edge.to) {
            continue;
        }
        // Keep the session consistent with the training distribution:
        // vertex label, edge label, vertex label, ...
        let mut session = lm.session();
        session.feed(start_label);
        session.feed(first_edge.label);
        out.push(path.clone());
        grow(
            g,
            lm,
            path,
            session,
            first_edge.to,
            (first_edge.label, first_dir),
            k,
            &mut out,
        );
    }
    out
}

/// Recursively extend `path` from `current`, branching over the top
/// distinct labels.
#[allow(clippy::too_many_arguments)]
fn grow(
    g: &LabeledGraph,
    lm: &LanguageModel,
    path: Path,
    mut session: LmSession<'_>,
    current: VertexId,
    arrived_via: (gsj_common::Symbol, Direction),
    k: usize,
    out: &mut Vec<Path>,
) {
    if path.len() >= k || out.len() >= MAX_PATHS_PER_VERTEX {
        return;
    }
    let Some(cur_label) = g.vertex_label(current) else {
        return;
    };
    let dist = session.feed(cur_label);
    // One representative edge per distinct incident (label, orientation),
    // skipping cycle-closing hops (stop condition (d)) and sibling
    // bounces; representative = the smallest (label, target) for
    // determinism.
    let mut candidates: Vec<(f32, gsj_graph::Edge, Direction)> = Vec::new();
    for (e, d) in g.incident(current) {
        if path.would_cycle(e.to) || is_sibling_bounce(Some(arrived_via), &e, d) {
            continue;
        }
        let p = dist[lm.token_of(e.label)];
        match candidates
            .iter_mut()
            .find(|(_, c, cd)| c.label == e.label && *cd == d)
        {
            Some((_, c, _)) => {
                if (e.label, e.to) < (c.label, c.to) {
                    *c = e;
                }
            }
            None => candidates.push((p, e, d)),
        }
    }
    // Stop condition (b): nowhere to go.
    if candidates.is_empty() {
        return;
    }
    candidates.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1.label, a.1.to).cmp(&(b.1.label, b.1.to)))
    });
    // Stop condition (a): the model emits the stop signal — <eos> is the
    // argmax of the whole next-token distribution (the paper's literal
    // rule; mass on infeasible labels must not suppress feasible ones).
    // With a *single* feasible continuation the stop signal must be
    // near-certain to prune it: the signal arbitrates between
    // alternatives, and single-continuation contexts are exactly where a
    // small LM's <eos> estimate is least reliable.
    let global_max = dist.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let eos_stops = dist[EOS] >= global_max && dist[EOS] > candidates[0].0;
    if eos_stops && (candidates.len() > 1 || dist[EOS] > 0.9) {
        return;
    }
    for (_, edge, dir) in candidates.into_iter().take(BRANCH) {
        if out.len() >= MAX_PATHS_PER_VERTEX {
            break;
        }
        let mut next_path = path.clone();
        if !next_path.push(edge.label, edge.to) {
            continue;
        }
        let mut next_session = session.fork();
        next_session.feed(edge.label);
        out.push(next_path.clone());
        grow(
            g,
            lm,
            next_path,
            next_session,
            edge.to,
            (edge.label, dir),
            k,
            out,
        );
    }
}

/// The `RndPath` baseline: random next edges, no model.
pub fn select_paths_random(g: &LabeledGraph, start: VertexId, k: usize, seed: u64) -> Vec<Path> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (start.0 as u64).wrapping_mul(0x9e37_79b9));
    let mut out = Vec::new();
    if !g.is_live(start) {
        return out;
    }
    for (first_edge, _dir) in g.incident(start) {
        if out.len() >= MAX_PATHS_PER_VERTEX {
            break;
        }
        let mut path = Path::new(start);
        if !path.push(first_edge.label, first_edge.to) {
            continue;
        }
        out.push(path.clone());
        let mut current = first_edge.to;
        let mut prev = (first_edge.label, _dir);
        while path.len() < k {
            let options: Vec<(gsj_graph::Edge, Direction)> = g
                .incident(current)
                .filter(|(e, d)| !path.would_cycle(e.to) && !is_sibling_bounce(Some(prev), e, *d))
                .collect();
            if options.is_empty() {
                break;
            }
            let (edge, dir) = options[rng.random_range(0..options.len())];
            if !path.push(edge.label, edge.to) {
                break;
            }
            out.push(path.clone());
            prev = (edge.label, dir);
            current = edge.to;
        }
    }
    out
}

/// Dispatch on [`crate::config::PathKind`].
pub fn select_paths(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    kind: crate::config::PathKind,
    lm: Option<&LanguageModel>,
    seed: u64,
) -> Vec<Path> {
    match kind {
        crate::config::PathKind::LmGuided => {
            let lm = lm.expect("LmGuided path selection requires a trained model");
            select_paths_guided(g, start, k, lm)
        }
        crate::config::PathKind::Random => select_paths_random(g, start, k, seed),
    }
}

/// The `_dir` binding above is deliberate: selection treats the graph as
/// undirected, per Section II-A.
#[allow(dead_code)]
fn _doc(_: Direction) {}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_graph::random_walk::{build_corpus, WalkConfig};
    use gsj_nn::LmConfig;

    /// pid --issue--> company --regloc--> country, plus a distracting
    /// self-contained "noise" branch.
    fn fintech() -> (LabeledGraph, VertexId) {
        let mut g = LabeledGraph::new();
        let pid = g.add_vertex("pid1");
        let company = g.add_vertex("company1");
        let country = g.add_vertex("UK");
        g.add_edge(pid, "issue", company);
        g.add_edge(company, "regloc", country);
        let noise = g.add_vertex("noise-hub");
        g.add_edge(pid, "clicked", noise);
        (g, pid)
    }

    fn tiny_lm(g: &LabeledGraph) -> LanguageModel {
        let corpus = build_corpus(g, &WalkConfig::default());
        LanguageModel::train(
            &corpus,
            g.symbols(),
            LmConfig {
                embed_dim: 8,
                hidden: 16,
                epochs: 8,
                seed: 3,
                ..LmConfig::default()
            },
        )
    }

    #[test]
    fn guided_selection_reaches_deep_properties() {
        let (g, pid) = fintech();
        let lm = tiny_lm(&g);
        let paths = select_paths_guided(&g, pid, 3, &lm);
        assert!(!paths.is_empty());
        // All prefixes retained → a 1-hop path to company1 must exist.
        assert!(paths.iter().any(|p| p.len() == 1));
        // The 2-hop chain issue→regloc must be among the grown paths.
        let issue = g.symbols().get("issue").unwrap();
        let regloc = g.symbols().get("regloc").unwrap();
        assert!(
            paths.iter().any(|p| p.labels() == [issue, regloc]),
            "paths: {:?}",
            paths
                .iter()
                .map(|p| p.labels().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paths_respect_length_bound() {
        let (g, pid) = fintech();
        let lm = tiny_lm(&g);
        for p in select_paths_guided(&g, pid, 1, &lm) {
            assert!(p.len() <= 1);
        }
        for p in select_paths_random(&g, pid, 2, 5) {
            assert!(p.len() <= 2);
        }
    }

    #[test]
    fn paths_are_simple() {
        // A triangle invites cycles; selection must never revisit.
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, "e1", b);
        g.add_edge(b, "e2", c);
        g.add_edge(c, "e3", a);
        for p in select_paths_random(&g, a, 5, 1) {
            let mut vs = p.vertices().to_vec();
            vs.sort();
            vs.dedup();
            assert_eq!(vs.len(), p.vertices().len(), "cycle in {p:?}");
        }
    }

    #[test]
    fn random_selection_is_deterministic_per_seed() {
        let (g, pid) = fintech();
        assert_eq!(
            select_paths_random(&g, pid, 3, 9),
            select_paths_random(&g, pid, 3, 9)
        );
    }

    #[test]
    fn isolated_vertex_has_no_paths() {
        let mut g = LabeledGraph::new();
        let v = g.add_vertex("alone");
        assert!(select_paths_random(&g, v, 3, 1).is_empty());
    }

    #[test]
    fn dead_vertex_has_no_paths() {
        let (mut g, pid) = fintech();
        g.remove_vertex(pid);
        assert!(select_paths_random(&g, pid, 3, 1).is_empty());
        let lm = tiny_lm(&g);
        assert!(select_paths_guided(&g, pid, 3, &lm).is_empty());
    }
}
