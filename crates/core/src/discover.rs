//! Pattern discovery phase I (Section III-A): clustering, refinement and
//! selection data structures. The orchestration lives in [`crate::rext`].

use crate::ranking::{rank_cluster_full, RankResult, TupleAttrEmbs, WEntry};
use gsj_common::{FxHashMap, Result};
use gsj_graph::{Path, PathPattern, VertexId};
use gsj_relational::Schema;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A selected pattern cluster `P_i`, carrying the attribute it populates.
#[derive(Debug, Clone)]
pub struct PatternCluster {
    /// The path patterns in this cluster.
    pub patterns: Vec<PathPattern>,
    /// The attribute name `A_i` (the keyword maximizing the ranking
    /// function's third term).
    pub attr: String,
    /// Word embedding of the attribute keyword — the `x_Aj` used by
    /// Algorithm 1's value-ranking function.
    pub attr_emb: Vec<f32>,
    /// The cluster's `r(W_i)` score.
    pub score: f64,
}

/// Everything phase I produces, kept around for phase II (extraction) and
/// for IncExt's keyword updates.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The selected clusters `P = {P_1, ..., P_m}`, highest score first.
    pub clusters: Vec<PatternCluster>,
    /// The extracted schema `R_G(vid, A_1, ..., A_m)`.
    pub schema: Schema,
    /// *All* refined pattern clusters `P'` (before selection) — keyword
    /// updates re-rank these without re-clustering (Section III-B).
    pub refined: Vec<Vec<PathPattern>>,
    /// Cached selected paths per matched vertex ("It caches and reuses the
    /// paths found during pattern discovery", Algorithm 1).
    pub paths: FxHashMap<VertexId, Vec<Path>>,
    /// Embeddings of the user keywords, aligned with `keywords`.
    pub keyword_embs: Vec<(String, Vec<f32>)>,
    /// `|P|`: total number of selected paths.
    pub total_paths: usize,
    /// Width of the word-embedding half of each feature vector.
    pub word_dim: usize,
}

impl Discovery {
    /// Names of the extracted attributes (without `vid`).
    pub fn attr_names(&self) -> Vec<&str> {
        self.clusters.iter().map(|c| c.attr.as_str()).collect()
    }
}

/// Path pattern refinement (step 3): convert a point clustering into a
/// pattern clustering and keep each pattern only in the cluster holding
/// the majority of its paths (ties → lowest cluster id). Clusters that
/// lose all their patterns vanish (`m' ≤ H`).
pub fn refine_patterns(paths: &[Path], assignments: &[usize], h: usize) -> Vec<Vec<PathPattern>> {
    debug_assert_eq!(paths.len(), assignments.len());
    // counter[pattern][cluster] = #paths of that pattern in that cluster.
    let mut counters: FxHashMap<PathPattern, FxHashMap<usize, usize>> = FxHashMap::default();
    for (p, &c) in paths.iter().zip(assignments) {
        *counters
            .entry(p.pattern())
            .or_default()
            .entry(c)
            .or_insert(0) += 1;
    }
    let mut clusters: Vec<Vec<PathPattern>> = vec![Vec::new(); h];
    // Deterministic iteration: sort patterns.
    let mut patterns: Vec<(PathPattern, FxHashMap<usize, usize>)> = counters.into_iter().collect();
    patterns.sort_by(|a, b| a.0.cmp(&b.0));
    for (pattern, by_cluster) in patterns {
        let winner = by_cluster
            .iter()
            .map(|(&c, &n)| (n, std::cmp::Reverse(c)))
            .max()
            .map(|(_, std::cmp::Reverse(c))| c)
            .expect("pattern seen at least once");
        clusters[winner].push(pattern);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

/// Experiment hook (Fig 5(f)): randomly reassign a fraction of points to a
/// uniformly random *other* cluster before refinement, to measure RExt's
/// robustness to clustering noise.
pub fn inject_cluster_noise(assignments: &mut [usize], h: usize, fraction: f64, seed: u64) {
    if h < 2 {
        return;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_corrupt = ((assignments.len() as f64) * fraction).round() as usize;
    let mut order: Vec<usize> = (0..assignments.len()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    for &i in order.iter().take(n_corrupt) {
        loop {
            let c = rng.random_range(0..h);
            if c != assignments[i] {
                assignments[i] = c;
                break;
            }
        }
    }
}

/// The simulated user-inspection step of pattern/attribute selection
/// (Section III-A: "RExt may interact with the user by presenting matching
/// result ... If the user is satisfied ..."): drop patterns whose paths
/// mostly *end at* — or take their first hop *through* — an entity of the
/// same type as their start vertex. Such paths are peer links
/// (drug→drug, movie→movie) or a peer's properties; both belong to link
/// joins, not to attribute extraction.
pub fn filter_link_clusters(
    g: &gsj_graph::LabeledGraph,
    refined: Vec<Vec<PathPattern>>,
    paths: &[Path],
    type_edges: &[String],
) -> Vec<Vec<PathPattern>> {
    let type_syms: Vec<gsj_common::Symbol> = type_edges
        .iter()
        .filter_map(|l| g.symbols().get(l))
        .collect();
    if type_syms.is_empty() {
        return refined;
    }
    let vtype = |v: VertexId| -> Option<VertexId> {
        g.out_edges(v)
            .iter()
            .find(|e| type_syms.contains(&e.label))
            .map(|e| e.to)
    };
    // Per-pattern (peer-ish, total) counters. A path is peer-ish if it
    // ends at a same-type entity or its first hop lands on one.
    let mut stats: FxHashMap<PathPattern, (usize, usize)> = FxHashMap::default();
    for p in paths {
        let entry = stats.entry(p.pattern()).or_insert((0, 0));
        entry.1 += 1;
        let st = vtype(p.start());
        let peer_end = st.is_some() && st == vtype(p.end());
        let peer_first = p.len() >= 2 && st.is_some() && st == vtype(p.vertices()[1]);
        if peer_end || peer_first {
            entry.0 += 1;
        }
    }
    refined
        .into_iter()
        .filter_map(|mut cluster| {
            // Typing edges classify entities; a path *ending* on one leads
            // to a type vertex, not a property value. And per-pattern,
            // majority-peer-ish patterns are dropped.
            cluster.retain(|pat| {
                let last_ok = pat
                    .labels()
                    .last()
                    .map(|l| !type_syms.contains(l))
                    .unwrap_or(false);
                if !last_ok {
                    return false;
                }
                let (peer, total) = stats.get(pat).copied().unwrap_or((0, 0));
                total == 0 || 2 * peer <= total
            });
            if cluster.is_empty() {
                None
            } else {
                Some(cluster)
            }
        })
        .collect()
}

/// Build the match set `W_i` for one refined cluster: every selected path
/// conforming to one of the cluster's patterns contributes its start
/// vertex and *naming embedding* — the word embedding of the path's edge
/// labels together with its end label.
///
/// The paper's formula embeds the end label alone, relying on pretrained
/// GloVe to place values near concept words (`UK` near `location`). Our
/// hash embedder has no such world knowledge, so the edge labels carry the
/// concept signal instead — which is the paper's own motivating example:
/// "to retrieve UK from G as the country of company1, one need to select
/// semantically close regloc". See DESIGN.md §2.
pub fn build_w_entries(
    cluster: &[PathPattern],
    paths: &[Path],
    name_embs: &[Vec<f32>],
) -> Vec<WEntry> {
    let pattern_set: std::collections::HashSet<&PathPattern> = cluster.iter().collect();
    paths
        .iter()
        .zip(name_embs)
        .filter(|(p, _)| pattern_set.contains(&p.pattern()))
        .map(|(p, x)| WEntry {
            start: p.start(),
            end_emb: x.clone(),
        })
        .collect()
}

/// Minimum mean keyword similarity for a cluster to claim a keyword as
/// its attribute name. Below this the cluster is semantically unrelated
/// to every remaining user interest and is skipped.
pub const MIN_KEYWORD_AFFINITY: f64 = 0.10;

/// Step 4: rank all refined clusters and greedily select up to `m`
/// attributes, one cluster per (still-unused) keyword. Returns the chosen
/// clusters (score-descending) and the schema `R_G`.
///
/// The paper optionally interacts with the user here; we model the user
/// with auto-acceptance of the top-ranked presentation order.
pub fn select_attributes(
    refined: &[Vec<PathPattern>],
    paths: &[Path],
    name_embs: &[Vec<f32>],
    tuple_attr_embs: &TupleAttrEmbs,
    keywords: &[(String, Vec<f32>)],
    m: usize,
    schema_name: &str,
) -> Result<(Vec<PatternCluster>, Schema)> {
    // Score every cluster (decomposed, so the assignment below can
    // evaluate the ranking function per keyword).
    let total = paths.len();
    let mut scored: Vec<(usize, RankResult)> = Vec::new();
    for (idx, cluster) in refined.iter().enumerate() {
        let entries = build_w_entries(cluster, paths, name_embs);
        if entries.is_empty() {
            continue;
        }
        let r = rank_cluster_full(&entries, total, tuple_attr_embs, keywords);
        scored.push((idx, r));
    }

    // Global greedy assignment over (cluster, keyword) pairs, each scored
    // by the ranking function evaluated at that keyword:
    // `coverage − overlap + cos-to-keyword`. This models the paper's
    // user-inspection loop: each keyword goes to the cluster whose
    // matches both look like that attribute *and* cover many entities
    // (few NULLs), so a sparse neighbor-chain fragment cannot outrank the
    // dense direct pattern.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new(); // (score_for, scored idx, kw idx)
    for (si, (_, r)) in scored.iter().enumerate() {
        for ki in 0..keywords.len() {
            if r.kw_means[ki] >= MIN_KEYWORD_AFFINITY {
                pairs.push((r.score_for(ki), si, ki));
            }
        }
    }
    pairs.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut used_kw = vec![false; keywords.len()];
    let mut used_cluster = vec![false; scored.len()];
    let mut chosen: Vec<PatternCluster> = Vec::new();
    for (_, si, ki) in pairs {
        if chosen.len() >= m {
            break;
        }
        if used_kw[ki] || used_cluster[si] {
            continue;
        }
        used_kw[ki] = true;
        used_cluster[si] = true;
        let (name, emb) = &keywords[ki];
        chosen.push(PatternCluster {
            patterns: refined[scored[si].0].clone(),
            attr: name.clone(),
            attr_emb: emb.clone(),
            score: scored[si].1.score,
        });
    }
    chosen.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut attrs = vec!["vid".to_string()];
    attrs.extend(chosen.iter().map(|c| c.attr.clone()));
    let schema = Schema::new(schema_name.to_string(), attrs)?;
    Ok((chosen, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::SymbolTable;

    fn mk_path(table: &SymbolTable, start: u32, labels: &[&str]) -> Path {
        let mut p = Path::new(VertexId(start));
        for (i, l) in labels.iter().enumerate() {
            p.push(table.intern(l), VertexId(1000 + start * 10 + i as u32));
        }
        p
    }

    #[test]
    fn refinement_keeps_pattern_in_majority_cluster() {
        let t = SymbolTable::new();
        // Pattern [type]: twice in cluster 0, once in cluster 1 (the
        // misclassified (pid3, type, Trust) of Example 5/6).
        let paths = vec![
            mk_path(&t, 0, &["type"]),
            mk_path(&t, 1, &["type"]),
            mk_path(&t, 2, &["type"]),
            mk_path(&t, 3, &["based_on", "type"]),
        ];
        let assignments = vec![0, 0, 1, 1];
        let refined = refine_patterns(&paths, &assignments, 2);
        assert_eq!(refined.len(), 2);
        let type_pat = paths[0].pattern();
        let long_pat = paths[3].pattern();
        // [type] must live only in cluster 0's refined set.
        let holders: Vec<usize> = refined
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains(&type_pat))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(holders.len(), 1);
        let other: Vec<usize> = refined
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains(&long_pat))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(other.len(), 1);
        assert_ne!(holders[0], other[0]);
    }

    #[test]
    fn refinement_tie_breaks_deterministically() {
        let t = SymbolTable::new();
        let paths = vec![mk_path(&t, 0, &["x"]), mk_path(&t, 1, &["x"])];
        let refined = refine_patterns(&paths, &[0, 1], 2);
        // 1-1 tie → lowest cluster id wins → exactly one cluster remains.
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].len(), 1);
    }

    #[test]
    fn empty_clusters_vanish() {
        let t = SymbolTable::new();
        let paths = vec![mk_path(&t, 0, &["a"])];
        let refined = refine_patterns(&paths, &[3], 5);
        assert_eq!(refined.len(), 1);
    }

    #[test]
    fn noise_injection_changes_requested_fraction() {
        let mut asg = vec![0usize; 100];
        inject_cluster_noise(&mut asg, 4, 0.2, 9);
        let changed = asg.iter().filter(|&&c| c != 0).count();
        assert_eq!(changed, 20);
        // h < 2 is a no-op.
        let mut asg1 = vec![0usize; 10];
        inject_cluster_noise(&mut asg1, 1, 1.0, 9);
        assert!(asg1.iter().all(|&c| c == 0));
    }

    #[test]
    fn w_entries_only_from_conforming_paths() {
        let t = SymbolTable::new();
        let paths = vec![mk_path(&t, 0, &["a"]), mk_path(&t, 1, &["b"])];
        let name_embs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let cluster = vec![paths[0].pattern()];
        let w = build_w_entries(&cluster, &paths, &name_embs);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start, VertexId(0));
        assert_eq!(w[0].end_emb, vec![1.0, 0.0]);
    }
}
