//! Criterion microbench: LSTM language model — one prediction step, one
//! sequence embedding, and one training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_common::SymbolTable;
use gsj_nn::{LanguageModel, LmConfig};

fn corpus(table: &SymbolTable) -> Vec<Vec<gsj_common::Symbol>> {
    let toks: Vec<_> = (0..40)
        .map(|i| {
            table.intern(&format!(
                "{}{}",
                (b'a' + (i / 26) as u8) as char,
                (b'a' + (i % 26) as u8) as char
            ))
        })
        .collect();
    (0..400)
        .map(|i| (0..8).map(|j| toks[(i * 7 + j * 3) % toks.len()]).collect())
        .collect()
}

fn bench_lstm(c: &mut Criterion) {
    let table = SymbolTable::new();
    let data = corpus(&table);
    let cfg = LmConfig {
        epochs: 1,
        ..LmConfig::default()
    };
    let model = LanguageModel::train(&data, &table, cfg.clone());
    let sample: Vec<_> = data[0].clone();

    c.bench_function("lm_session_feed", |b| {
        b.iter(|| {
            let mut s = model.session();
            for &t in &sample {
                std::hint::black_box(s.feed(t));
            }
        })
    });
    c.bench_function("lm_embed_sequence", |b| {
        b.iter(|| std::hint::black_box(model.embed_sequence(&sample)))
    });
    c.bench_function("lm_train_epoch_400x8", |b| {
        b.iter(|| {
            let mut m = LanguageModel::untrained(&data, &table, cfg.clone());
            m.fit(&data);
            std::hint::black_box(&m);
        })
    });
}

criterion_group!(benches, bench_lstm);
criterion_main!(benches);
