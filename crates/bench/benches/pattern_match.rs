//! Criterion microbench: path-pattern matching `M(ρ, p)` — the inner loop
//! of Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_common::SymbolTable;
use gsj_graph::{Path, PathPattern, VertexId};

fn bench_pattern_match(c: &mut Criterion) {
    let t = SymbolTable::new();
    let labels: Vec<_> = (0..10).map(|i| t.intern(&format!("edge{i}"))).collect();
    // 10k paths of length 1..=3.
    let paths: Vec<Path> = (0..10_000u32)
        .map(|i| {
            let mut p = Path::new(VertexId(i));
            for j in 0..=(i % 3) {
                p.push(
                    labels[((i + j) % 10) as usize],
                    VertexId(100_000 + i * 4 + j),
                );
            }
            p
        })
        .collect();
    let pattern = PathPattern(vec![labels[1], labels[2]]);

    c.bench_function("pattern_match_10k_paths", |b| {
        b.iter(|| {
            let hits = paths.iter().filter(|p| p.matches(&pattern)).count();
            std::hint::black_box(hits)
        })
    });

    c.bench_function("pattern_of_1k_paths", |b| {
        b.iter(|| {
            for p in &paths[..1000] {
                std::hint::black_box(p.pattern());
            }
        })
    });
}

criterion_group!(benches, bench_pattern_match);
criterion_main!(benches);
