//! Criterion ablation benches for the design choices DESIGN.md §4 calls
//! out: LM-guided vs random path selection, hash vs attention embeddings,
//! LSTM vs attention sequence embedding, and pattern refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_core::discover::refine_patterns;
use gsj_core::path_select::{select_paths_guided, select_paths_random};
use gsj_datagen::{collections, Scale};
use gsj_nn::lm::SequenceEmbedder;
use gsj_nn::{AttnEncoder, HashEmbedder, LanguageModel, LmConfig, WordEmbedder};

fn bench_ablation(c: &mut Criterion) {
    let col = collections::build("Drugs", Scale(60), 3).unwrap();
    let g = &col.graph;
    let corpus = gsj_graph::random_walk::build_corpus(g, &Default::default());
    let lm = LanguageModel::train(
        &corpus,
        g.symbols(),
        LmConfig {
            epochs: 1,
            ..LmConfig::default()
        },
    );
    let starts: Vec<_> = col.entity_vertices.iter().copied().take(30).collect();

    // --- Path selection: guided vs random -------------------------------
    c.bench_function("select_paths_guided_30v", |b| {
        b.iter(|| {
            for &v in &starts {
                std::hint::black_box(select_paths_guided(g, v, 3, &lm));
            }
        })
    });
    c.bench_function("select_paths_random_30v", |b| {
        b.iter(|| {
            for &v in &starts {
                std::hint::black_box(select_paths_random(g, v, 3, 7));
            }
        })
    });

    // --- Word embedding: hash (GloVe stand-in) vs attention (BERT
    // stand-in) — the cost relation behind RExt vs RExtBertEmb.
    let hash = HashEmbedder::new(256);
    let attn = AttnEncoder::for_words(100);
    let labels = ["registered location", "company name", "Coral Savanna 12"];
    c.bench_function("embed_hash_3labels", |b| {
        b.iter(|| {
            for l in labels {
                std::hint::black_box(hash.embed(l));
            }
        })
    });
    c.bench_function("embed_attn_3labels", |b| {
        b.iter(|| {
            for l in labels {
                std::hint::black_box(attn.embed(l));
            }
        })
    });

    // --- Sequence embedding: LSTM vs attention --------------------------
    let seq_attn = AttnEncoder::for_sequences(100, g.symbols().clone());
    let seq: Vec<_> = corpus[0].iter().copied().take(5).collect();
    c.bench_function("seq_embed_lstm", |b| {
        b.iter(|| std::hint::black_box(lm.embed_symbols(&seq)))
    });
    c.bench_function("seq_embed_attn", |b| {
        b.iter(|| std::hint::black_box(seq_attn.embed_symbols(&seq)))
    });

    // --- Pattern refinement ----------------------------------------------
    let paths: Vec<_> = starts
        .iter()
        .flat_map(|&v| select_paths_random(g, v, 3, 7))
        .collect();
    let assignments: Vec<usize> = (0..paths.len()).map(|i| i % 30).collect();
    c.bench_function("refine_patterns", |b| {
        b.iter(|| std::hint::black_box(refine_patterns(&paths, &assignments, 30)))
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
