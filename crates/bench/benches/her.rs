//! Criterion microbench: HER matching (blocking + vicinity scoring), full
//! vs localized index construction.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_datagen::{collections, Scale};
use gsj_her::{her_match, her_match_local};

fn bench_her(c: &mut Criterion) {
    let col = collections::build("Movie", Scale(60), 3).unwrap();
    let cfg = col.her_config();
    c.bench_function("her_match_full", |b| {
        b.iter(|| std::hint::black_box(her_match(&col.graph, col.entity_relation(), &cfg).unwrap()))
    });
    // Localized index over the entity vertices only (~10% of the graph).
    c.bench_function("her_match_local_entities", |b| {
        b.iter(|| {
            std::hint::black_box(
                her_match_local(
                    &col.graph,
                    col.entity_relation(),
                    &cfg,
                    col.entity_vertices.iter().copied(),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_her);
criterion_main!(benches);
