//! Criterion microbench: the relational engine's hash joins — the
//! operators the optimized semantic-join rewrite reduces to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsj_common::Value;
use gsj_relational::exec::natural_join;
use gsj_relational::{Relation, Schema};

fn table(name: &str, rows: usize, key_mod: usize) -> Relation {
    let mut r = Relation::empty(Schema::of(name, &["k", name]));
    for i in 0..rows {
        r.push_values(vec![
            Value::Int((i % key_mod) as i64),
            Value::str(format!("{name}-{i}")),
        ])
        .unwrap();
    }
    r
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("natural_join");
    for &n in &[1_000usize, 10_000, 100_000] {
        let l = table("l", n, n / 2);
        let r = table("r", n, n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(l, r), |b, (l, r)| {
            b.iter(|| std::hint::black_box(natural_join(l, r).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
