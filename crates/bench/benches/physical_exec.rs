//! Criterion microbench: the logical interpreter vs the physical
//! operator path on the same plans — the lowering overhead plus the
//! row-index (non-cloning) hash-join build tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsj_common::Value;
use gsj_relational::physical::{execute_physical, lower, ExecContext};
use gsj_relational::{execute, CmpOp, Database, Expr, LogicalPlan, Relation, Schema};

fn table(name: &str, rows: usize, key_mod: usize) -> Relation {
    let mut r = Relation::empty(Schema::of(name, &["k", name]));
    for i in 0..rows {
        r.push_values(vec![
            Value::Int((i % key_mod) as i64),
            Value::str(format!("{name}-{i}")),
        ])
        .unwrap();
    }
    r
}

fn join_db(n: usize) -> Database {
    let mut db = Database::new();
    db.insert(table("l", n, n / 2));
    db.insert(table("r", n, n / 2));
    db
}

/// Scan ⋈ scan (natural hash join), filtered and projected: the shape
/// the gSQL fold produces for plain relational queries.
fn pipeline_plan() -> LogicalPlan {
    LogicalPlan::scan("l")
        .natural_join(LogicalPlan::scan("r"))
        .select(Expr::cmp(CmpOp::Ge, Expr::col("k"), Expr::lit(2i64)))
        .project(&["k"])
}

/// Equi theta join with a residual conjunct: exercises key mining at
/// lower time vs per-execution mining in the interpreter.
fn theta_plan() -> LogicalPlan {
    LogicalPlan::scan("l").qualify("L").theta_join(
        LogicalPlan::scan("r").qualify("R"),
        Expr::cmp(CmpOp::Eq, Expr::col("L.k"), Expr::col("R.k")).and(Expr::cmp(
            CmpOp::Ne,
            Expr::col("L.l"),
            Expr::col("R.r"),
        )),
    )
}

fn bench_exec_paths(c: &mut Criterion) {
    for (plan_name, plan) in [("pipeline", pipeline_plan()), ("theta", theta_plan())] {
        let mut group = c.benchmark_group(format!("physical_exec/{plan_name}"));
        for &n in &[1_000usize, 10_000, 100_000] {
            let db = join_db(n);
            group.bench_with_input(BenchmarkId::new("logical", n), &db, |b, db| {
                b.iter(|| std::hint::black_box(execute(&plan, db).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("physical", n), &db, |b, db| {
                b.iter(|| {
                    let physical = lower(&plan, db).unwrap();
                    let mut ctx = ExecContext::new();
                    std::hint::black_box(execute_physical(&physical, db, &mut ctx).unwrap())
                })
            });
            // Lowered once, executed many times (the prepared-plan case).
            let lowered = lower(&plan, &db).unwrap();
            group.bench_with_input(
                BenchmarkId::new("physical_prelowered", n),
                &(db, lowered),
                |b, (db, lowered)| {
                    b.iter(|| {
                        let mut ctx = ExecContext::new();
                        std::hint::black_box(execute_physical(lowered, db, &mut ctx).unwrap())
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_exec_paths);
criterion_main!(benches);
