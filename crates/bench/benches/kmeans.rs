//! Criterion microbench: K-means clustering (the KMC step of pattern
//! discovery), serial vs parallel assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsj_cluster::{kmeans, KmeansConfig};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn points(n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[500usize, 2000] {
        let data = points(n, 200);
        group.bench_with_input(BenchmarkId::new("serial_h30", n), &data, |b, d| {
            b.iter(|| {
                kmeans(
                    d,
                    &KmeansConfig {
                        k: 30,
                        max_iters: 10,
                        threads: 1,
                        ..KmeansConfig::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_h30", n), &data, |b, d| {
            b.iter(|| {
                kmeans(
                    d,
                    &KmeansConfig {
                        k: 30,
                        max_iters: 10,
                        threads: 0,
                        ..KmeansConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
