//! Instrumentation-overhead microbench (DESIGN.md §10).
//!
//! Compares the hot loops that carry gsj-obs instrumentation — BFS
//! frontier expansion and a hash-join probe — against uninstrumented
//! copies, with tracing **off**. Documented threshold: the instrumented
//! variants must stay within **2%** of the plain ones, which holds
//! because the disabled span path is a single atomic load and the
//! aggregate counters are bumped once per *call*, never inside the
//! inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_common::{FxHashMap, FxHashSet, Value};
use gsj_graph::traversal::k_hop_set;
use gsj_graph::{LabeledGraph, VertexId};
use gsj_obs::LazyCounter;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

fn random_graph(n: usize, avg_deg: usize) -> (LabeledGraph, Vec<VertexId>) {
    let mut g = LabeledGraph::new();
    let vs: Vec<_> = (0..n).map(|i| g.add_vertex(&format!("v{i}"))).collect();
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..n * avg_deg / 2 {
        let a = vs[rng.random_range(0..n)];
        let b = vs[rng.random_range(0..n)];
        if a != b {
            g.add_edge(a, "e", b);
        }
    }
    (g, vs)
}

/// `traversal::k_hop_set` with the metrics calls removed — the
/// uninstrumented baseline for the BFS frontier expansion.
fn k_hop_set_plain(g: &LabeledGraph, start: VertexId, k: usize) -> FxHashSet<VertexId> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    if !g.is_live(start) {
        return seen;
    }
    let mut frontier = VecDeque::new();
    seen.insert(start);
    frontier.push_back((start, 0usize));
    while let Some((v, d)) = frontier.pop_front() {
        if d == k {
            continue;
        }
        for (e, _) in g.incident(v) {
            if seen.insert(e.to) {
                frontier.push_back((e.to, d + 1));
            }
        }
    }
    seen
}

fn bench_bfs_frontier(c: &mut Criterion) {
    let (g, vs) = random_graph(20_000, 6);
    let mut group = c.benchmark_group("bfs_frontier");
    group.bench_function("plain", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 37) % vs.len();
            std::hint::black_box(k_hop_set_plain(&g, vs[i], 3))
        })
    });
    group.bench_function("instrumented", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 37) % vs.len();
            std::hint::black_box(k_hop_set(&g, vs[i], 3))
        })
    });
    group.finish();
}

static PROBE_CALLS: LazyCounter = LazyCounter::new("gsj_bench_probe_calls_total");
static PROBE_MATCHES: LazyCounter = LazyCounter::new("gsj_bench_probe_matches_total");

fn probe_table(n: usize) -> (FxHashMap<Value, Vec<usize>>, Vec<Value>) {
    let mut build: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
    for i in 0..n {
        build
            .entry(Value::str(format!("key{}", i % (n / 4))))
            .or_default()
            .push(i);
    }
    let probes: Vec<Value> = (0..n)
        .map(|i| Value::str(format!("key{}", i % n)))
        .collect();
    (build, probes)
}

/// The hash-join probe loop, uninstrumented.
fn probe_plain(build: &FxHashMap<Value, Vec<usize>>, probes: &[Value]) -> usize {
    let mut matches = 0usize;
    for p in probes {
        if let Some(rows) = build.get(p) {
            matches += rows.len();
        }
    }
    matches
}

/// The same probe loop carrying the instrumentation pattern used across
/// the engine: one disabled span at call granularity, counters bumped
/// once per call with the aggregated totals.
fn probe_instrumented(build: &FxHashMap<Value, Vec<usize>>, probes: &[Value]) -> usize {
    let _span = gsj_obs::span("bench.probe");
    let mut matches = 0usize;
    for p in probes {
        if let Some(rows) = build.get(p) {
            matches += rows.len();
        }
    }
    PROBE_CALLS.inc();
    PROBE_MATCHES.add(matches as u64);
    matches
}

fn bench_hash_join_probe(c: &mut Criterion) {
    let (build, probes) = probe_table(40_000);
    let mut group = c.benchmark_group("hash_join_probe");
    group.bench_function("plain", |b| {
        b.iter(|| std::hint::black_box(probe_plain(&build, &probes)))
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| std::hint::black_box(probe_instrumented(&build, &probes)))
    });
    group.finish();
}

criterion_group!(benches, bench_bfs_frontier, bench_hash_join_probe);
criterion_main!(benches);
