//! Criterion microbench: k-hop BFS and bidirectional connectivity — the
//! link-join primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_graph::traversal::{k_hop_set, within_k_hops};
use gsj_graph::{LabeledGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_graph(n: usize, avg_deg: usize) -> (LabeledGraph, Vec<VertexId>) {
    let mut g = LabeledGraph::new();
    let vs: Vec<_> = (0..n).map(|i| g.add_vertex(&format!("v{i}"))).collect();
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..n * avg_deg / 2 {
        let a = vs[rng.random_range(0..n)];
        let b = vs[rng.random_range(0..n)];
        if a != b {
            g.add_edge(a, "e", b);
        }
    }
    (g, vs)
}

fn bench_traversal(c: &mut Criterion) {
    let (g, vs) = random_graph(20_000, 6);
    c.bench_function("k_hop_set_k3", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 37) % vs.len();
            std::hint::black_box(k_hop_set(&g, vs[i], 3))
        })
    });
    c.bench_function("within_k_hops_bidirectional_k3", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 41) % (vs.len() - 1);
            std::hint::black_box(within_k_hops(&g, vs[i], vs[i + 1], 3))
        })
    });
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
