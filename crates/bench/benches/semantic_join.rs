//! Criterion microbench: the end-to-end optimized enrichment join
//! (`S ⋈ f(D,G) ⋈ h(D,G)`) and a full gSQL query — the online fast path of
//! Section IV-A.

use criterion::{criterion_group, criterion_main, Criterion};
use gsj_bench::engine_for;
use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::Strategy;
use gsj_core::join::enrichment_join_precomputed;
use gsj_datagen::{collections, Scale};

fn bench_semantic_join(c: &mut Criterion) {
    let col = collections::build("Drugs", Scale(60), 3).unwrap();
    let (engine, _) = engine_for(&col, RExtConfig::standard());
    let profile = engine.profile("G").unwrap();
    let ex = profile.extraction(&col.spec.rel_name).unwrap();

    c.bench_function("enrichment_join_precomputed", |b| {
        b.iter(|| {
            std::hint::black_box(
                enrichment_join_precomputed(
                    col.entity_relation(),
                    &col.spec.id_attr,
                    &ex.matches,
                    &ex.dg,
                    None,
                )
                .unwrap(),
            )
        })
    });

    let q1 = format!(
        "select {id}, efficacy from drug e-join G <efficacy, symptom> as T where T.{id} = {some}",
        id = col.spec.id_attr,
        some = col.id_of(0)
    );
    c.bench_function("gsql_q1_optimized", |b| {
        b.iter(|| std::hint::black_box(engine.run(&q1, Strategy::Optimized).unwrap()))
    });
    c.bench_function("gsql_q1_heuristic", |b| {
        b.iter(|| std::hint::black_box(engine.run(&q1, Strategy::Heuristic).unwrap()))
    });
}

criterion_group!(benches, bench_semantic_join);
criterion_main!(benches);
