//! Observability plumbing for the experiment binaries: a `--trace`
//! command-line toggle (equivalent to `GSJ_TRACE=1`) and an end-of-run
//! dump that renders the collected span tree and writes a
//! machine-readable JSON snapshot of spans plus metrics.

/// Enable span collection when `--trace` appears on the command line.
/// (`GSJ_TRACE=1` enables it too, inside gsj-obs itself.) Returns
/// whether tracing is on, so callers can skip trace-only work.
pub fn init_tracing() -> bool {
    if std::env::args().any(|a| a == "--trace") {
        gsj_obs::set_tracing(true);
    }
    gsj_obs::tracing_enabled()
}

/// When tracing is on: drain the collected spans, print the rendered
/// stage tree to stderr, and write a JSON snapshot
/// `{"tag", "spans", "metrics"}` to `$GSJ_TRACE_OUT` (or
/// `gsj-trace-<tag>.json` in the working directory). No-op otherwise.
pub fn dump_trace(tag: &str) {
    if !gsj_obs::tracing_enabled() {
        return;
    }
    let spans = gsj_obs::take_spans();
    eprintln!(
        "\n--- gsj-obs trace: {tag} ({} spans, {} dropped) ---",
        spans.len(),
        gsj_obs::dropped_spans()
    );
    eprint!("{}", gsj_obs::render_tree(&spans));
    let json = trace_snapshot_json(tag, &spans);
    let path = std::env::var("GSJ_TRACE_OUT").unwrap_or_else(|_| format!("gsj-trace-{tag}.json"));
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("trace snapshot written to {path}"),
        Err(e) => eprintln!("could not write trace snapshot to {path}: {e}"),
    }
}

/// RAII harness hook for experiment binaries: enables tracing per the
/// command line on construction and dumps the trace when dropped, so a
/// binary opts in with one line at the top of `main`:
/// `let _obs = gsj_bench::obs_scope("exp_fig5a");`
pub struct TraceDump(&'static str);

impl Drop for TraceDump {
    fn drop(&mut self) {
        dump_trace(self.0);
    }
}

/// Install the observability hook for an experiment binary run.
pub fn obs_scope(tag: &'static str) -> TraceDump {
    init_tracing();
    TraceDump(tag)
}

/// The machine-readable snapshot the experiment binaries emit: the run
/// tag, every collected span, and the global metrics registry.
pub fn trace_snapshot_json(tag: &str, spans: &[gsj_obs::SpanRecord]) -> String {
    format!(
        "{{\"tag\":\"{}\",\"spans\":{},\"metrics\":{}}}",
        gsj_obs::escape_json(tag),
        gsj_obs::spans_json(spans),
        gsj_obs::metrics_json(gsj_obs::Registry::global()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_parses() {
        let spans = vec![gsj_obs::SpanRecord {
            id: 1,
            parent: None,
            label: "gsql.query".into(),
            fields: vec![("rows".into(), "3".into())],
            start_ns: 0,
            dur_ns: 10,
            thread: 0,
        }];
        let json = trace_snapshot_json("smoke", &spans);
        let v = gsj_obs::parse_json(&json).expect("snapshot must be valid JSON");
        assert_eq!(v.get("tag").unwrap().as_str(), Some("smoke"));
        let labels: Vec<&str> = v
            .get("spans")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|s| s.get("label").and_then(|l| l.as_str()))
            .collect();
        assert_eq!(labels, vec!["gsql.query"]);
        assert!(v.get("metrics").unwrap().as_arr().is_some());
    }
}
