//! Shared experiment machinery beyond the recover protocol: variant lists,
//! engine construction, result-set comparison, and scale handling.

use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::GsqlEngine;
use gsj_core::profile::GraphProfile;
use gsj_core::rext::Rext;
use gsj_core::typed::TypedConfig;
use gsj_datagen::{Collection, Scale};
use gsj_relational::Relation;
use std::sync::Arc;

/// The six method variants of Exp-2(b) / Exp-3(III), in the paper's
/// legend order.
pub fn variants() -> Vec<(&'static str, RExtConfig)> {
    vec![
        ("RExt", RExtConfig::standard()),
        ("RExtBertEmb", RExtConfig::bert_emb()),
        ("RExtShortEmb", RExtConfig::short_emb()),
        ("RExtBertSeq", RExtConfig::bert_seq()),
        ("RExtShortSeq", RExtConfig::short_seq()),
        ("RndPath", RExtConfig::rnd_path()),
    ]
}

/// The benchmark scale: `GSJ_SCALE` env var or the given default.
pub fn scale_from_env(default: usize) -> Scale {
    std::env::var("GSJ_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Scale)
        .unwrap_or(Scale(default))
}

/// Build a fully-provisioned gSQL engine for a collection: trained RExt,
/// offline profile (including typed relations), registered graph `G`.
/// Returns the engine and the offline preparation time in seconds.
pub fn engine_for(col: &Collection, rext_cfg: RExtConfig) -> (GsqlEngine, f64) {
    let t0 = std::time::Instant::now();
    let rext = Arc::new(Rext::train(&col.graph, rext_cfg).expect("training"));
    let mut engine = GsqlEngine::new(col.db.clone());
    engine.set_id_attr(&col.spec.rel_name, &col.spec.id_attr);
    engine.set_her_config(col.her_config());
    let typed_cfg = TypedConfig {
        default_keywords: col.spec.reference_keywords(),
        ..TypedConfig::default()
    };
    let profile = GraphProfile::build(
        &col.graph,
        &engine.db,
        vec![col.relation_spec()],
        &rext,
        &col.her_config(),
        Some(&typed_cfg),
    )
    .expect("profile");
    engine.add_graph("G", col.graph.clone());
    engine.set_rext("G", rext);
    engine.set_profile("G", profile);
    engine.set_k(2);
    (engine, t0.elapsed().as_secs_f64())
}

/// Row-multiset F1 between two query results (the "relative accuracy" of
/// Table III: exact join results as ground truth).
pub fn result_f1(approx: &Relation, exact: &Relation) -> f64 {
    use std::collections::HashMap;
    let keyed = |r: &Relation| -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for t in r.tuples() {
            let key: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
            *m.entry(key.join("\u{1}")).or_insert(0) += 1;
        }
        m
    };
    let (ha, he) = (keyed(approx), keyed(exact));
    let inter: usize = ha
        .iter()
        .map(|(k, &n)| n.min(he.get(k).copied().unwrap_or(0)))
        .sum();
    let (na, ne) = (approx.len(), exact.len());
    if ne == 0 && na == 0 {
        return 1.0;
    }
    if na == 0 || ne == 0 {
        return 0.0;
    }
    let p = inter as f64 / na as f64;
    let r = inter as f64 / ne as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::Value;
    use gsj_relational::Schema;

    fn rel(rows: &[&str]) -> Relation {
        let mut r = Relation::empty(Schema::of("t", &["x"]));
        for row in rows {
            r.push_values(vec![Value::str(*row)]).unwrap();
        }
        r
    }

    #[test]
    fn result_f1_basics() {
        assert_eq!(result_f1(&rel(&["a", "b"]), &rel(&["a", "b"])), 1.0);
        assert_eq!(result_f1(&rel(&[]), &rel(&[])), 1.0);
        assert_eq!(result_f1(&rel(&["a"]), &rel(&[])), 0.0);
        let f = result_f1(&rel(&["a"]), &rel(&["a", "b"]));
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn result_f1_respects_multiplicity() {
        let f = result_f1(&rel(&["a", "a"]), &rel(&["a"]));
        assert!(f < 1.0);
    }

    #[test]
    fn six_variants_in_order() {
        let v = variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0].0, "RExt");
        assert_eq!(v[5].0, "RndPath");
    }
}
