//! Plain-text experiment reporting helpers.

use std::fmt::Write as _;

/// A simple aligned table writer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Render aligned.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            let line = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(out, "{}", line.trim_end());
        };
        fmt_row(&self.headers, &widths, &mut out);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        );
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Format a duration in seconds with 2 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Format an f64 with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// A standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("    (reproduces {paper_ref})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["col", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("col"));
        assert!(s.contains("long-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }
}
