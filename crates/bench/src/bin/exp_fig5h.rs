//! **Fig 5(h)** / **Exp-4**: IncExt vs from-scratch RExt under graph
//! updates `|ΔG|` from 5% to 45% of `|G|`, on every collection.
//!
//! Paper's numbers: at 5% updates IncExt is 8.1–17.5× faster (14.2× mean);
//! it stays faster up to 35–45% depending on the collection.

use gsj_bench::report::{banner, Table};
use gsj_bench::{prepared, scale_from_env, timed};
use gsj_core::config::RExtConfig;
use gsj_core::incext::{inc_update_graph, Extraction};
use gsj_datagen::collections;
use gsj_datagen::updates::balanced_updates;
use gsj_graph::update::apply_updates;
use gsj_her::her_match;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5h");
    let scale = scale_from_env(150);
    banner(
        "Fig 5(h) — IncExt: vary |ΔG| (all datasets)",
        "Fig 5(h) / Exp-4",
    );
    println!(
        "scale = {} (speedup of IncExt over scratch re-extraction)\n",
        scale.0
    );
    let fractions = [0.05, 0.15, 0.25, 0.35, 0.45];

    let mut t = Table::new(&["collection", "5%", "15%", "25%", "35%", "45%", "crossover"]);
    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let prep = prepared(&col, RExtConfig::standard());
        // Initial extraction state.
        let discovery = prep
            .rext
            .discover(
                &col.graph,
                &prep.matches,
                Some((col.entity_relation(), &col.spec.id_attr)),
                &col.spec.reference_keywords(),
                "h_x",
            )
            .unwrap();
        let dg = prep
            .rext
            .extract(&col.graph, &prep.matches, &discovery)
            .unwrap();
        let initial = Extraction {
            discovery,
            matches: prep.matches.clone(),
            dg,
        };

        let mut cells = vec![name.to_string()];
        let mut crossover = "> 45%".to_string();
        for &frac in &fractions {
            let mut g = col.graph.clone();
            let ups = balanced_updates(&g, frac, 31);
            let report = apply_updates(&mut g, &ups);

            let (_, inc_secs) = timed(|| {
                inc_update_graph(
                    &prep.rext,
                    &g,
                    col.entity_relation(),
                    &col.her_config(),
                    &initial,
                    &report,
                )
                .unwrap()
            });
            // From scratch: full HER + full pattern re-discovery + full
            // re-extraction on the updated graph — the paper's comparator
            // ("RExt that re-computes HER matches and extracted data").
            let (_, scratch_secs) = timed(|| {
                let matches = her_match(&g, col.entity_relation(), &col.her_config()).unwrap();
                let disc = prep
                    .rext
                    .discover(
                        &g,
                        &matches,
                        Some((col.entity_relation(), &col.spec.id_attr)),
                        &col.spec.reference_keywords(),
                        "h_x",
                    )
                    .unwrap();
                prep.rext.extract(&g, &matches, &disc).unwrap()
            });
            let speedup = scratch_secs / inc_secs.max(1e-9);
            if speedup < 1.0 && crossover == "> 45%" {
                crossover = format!("{:.0}%", frac * 100.0);
            }
            cells.push(format!("{speedup:.1}x"));
        }
        cells.push(crossover);
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper: 8.1–17.5x at 5% (mean 14.2x); crossover at 35–45%.");
}
