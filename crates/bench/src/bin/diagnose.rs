//! Developer diagnostic: dump discovery details for one collection.

use gsj_bench::{prepared, ExpConfig};
use gsj_core::join::enrichment_join_precomputed;
use gsj_core::quality::f_measure;
use gsj_datagen::{collections, Scale};

fn main() {
    let _obs = gsj_bench::obs_scope("diagnose");
    let name = std::env::args().nth(1).unwrap_or_else(|| "Drugs".into());
    let scale = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let seed = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let col = collections::build(&name, Scale(scale), seed).expect("collection");
    let prep = prepared(&col, ExpConfig::standard().rext);
    let kws = col.spec.reference_keywords();
    let disc = prep
        .rext
        .discover(
            &col.graph,
            &prep.matches,
            Some((col.entity_relation(), &col.spec.id_attr)),
            &kws,
            "h_x",
        )
        .unwrap();
    println!("keywords: {kws:?}");
    println!("refined clusters: {}", disc.refined.len());
    for (i, rc) in disc.refined.iter().enumerate() {
        let pats: Vec<Vec<String>> = rc
            .iter()
            .map(|p| {
                p.labels()
                    .iter()
                    .map(|l| col.graph.symbols().resolve(*l).to_string())
                    .collect()
            })
            .collect();
        println!("  refined[{i}]: {pats:?}");
    }
    for c in &disc.clusters {
        let pats: Vec<Vec<String>> = c
            .patterns
            .iter()
            .map(|p| {
                p.labels()
                    .iter()
                    .map(|l| col.graph.symbols().resolve(*l).to_string())
                    .collect()
            })
            .collect();
        println!(
            "SELECTED attr={} score={:.3} patterns={pats:?}",
            c.attr, c.score
        );
    }
    let dg = prep.rext.extract(&col.graph, &prep.matches, &disc).unwrap();
    println!("\nDG sample:\n{}", sample(&dg, 5));
    println!("truth sample:\n{}", sample(&col.truth, 5));
    let predicted = enrichment_join_precomputed(
        col.entity_relation(),
        &col.spec.id_attr,
        &prep.matches,
        &dg,
        None,
    )
    .unwrap();
    for k in &kws {
        if !predicted.schema().contains(k) {
            println!("attr {k}: MISSING from prediction");
            continue;
        }
        let f = f_measure(
            &predicted,
            &col.truth,
            &col.spec.id_attr,
            &[(k.clone(), k.clone())],
        )
        .unwrap();
        println!(
            "attr {k}: P={:.3} R={:.3} F1={:.3} (correct {}, predicted {}, expected {})",
            f.precision, f.recall, f.f1, f.correct, f.predicted, f.expected
        );
    }
    // Path stats for the first matched vertex.
    if let Some((_, v)) = prep.matches.pairs().first() {
        let paths = prep.rext.select_paths(&col.graph, *v);
        println!("\npaths from {v}:");
        for p in paths.iter().take(12) {
            let labels: Vec<String> = p
                .labels()
                .iter()
                .map(|l| col.graph.symbols().resolve(*l).to_string())
                .collect();
            println!("  {labels:?} -> {}", col.graph.vertex_label_str(p.end()));
        }
    }
}

fn sample(r: &gsj_relational::Relation, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&r.schema().attrs().join(" | "));
    out.push('\n');
    for t in r.tuples().iter().take(n) {
        let cells: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
        out.push_str(&cells.join(" | "));
        out.push('\n');
    }
    out
}
