//! Developer diagnostic: time the components of one IncExt update.

use gsj_bench::{prepared, timed};
use gsj_core::config::RExtConfig;
use gsj_core::incext::{inc_update_graph, pattern_affected_zone, Extraction};
use gsj_datagen::updates::balanced_updates;
use gsj_datagen::{collections, Scale};
use gsj_graph::update::apply_updates;
use gsj_her::her_match;

fn main() {
    let _obs = gsj_bench::obs_scope("incprobe");
    let scale = Scale(
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(60),
    );
    let frac: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let col = collections::build("Movie", scale, 5).unwrap();
    let prep = prepared(&col, RExtConfig::standard());
    let discovery = prep
        .rext
        .discover(
            &col.graph,
            &prep.matches,
            Some((col.entity_relation(), &col.spec.id_attr)),
            &col.spec.reference_keywords(),
            "h_x",
        )
        .unwrap();
    let dg = prep
        .rext
        .extract(&col.graph, &prep.matches, &discovery)
        .unwrap();
    let initial = Extraction {
        discovery,
        matches: prep.matches.clone(),
        dg,
    };
    let mut g = col.graph.clone();
    let ups = balanced_updates(&g, frac, 31);
    let report = apply_updates(&mut g, &ups);
    println!(
        "graph: {} vertices {} edges; updates: {}; touched: {}",
        gsj_graph::stats::graph_stats(&g).vertices,
        g.edge_count(),
        ups.len(),
        report.touched.len()
    );
    let (zone, z_secs) = timed(|| pattern_affected_zone(&g, &report.touched, &initial.discovery));
    println!("pattern zone: {} vertices in {z_secs:.3}s", zone.len());
    let matched: std::collections::HashSet<_> = initial.matches.vertices().collect();
    let affected_matched = matched.iter().filter(|v| zone.contains(v)).count();
    println!(
        "matched: {}; affected matched: {affected_matched}",
        matched.len()
    );
    let (_, inc_secs) = timed(|| {
        inc_update_graph(
            &prep.rext,
            &g,
            col.entity_relation(),
            &col.her_config(),
            &initial,
            &report,
        )
        .unwrap()
    });
    println!("inc total: {inc_secs:.3}s");
    let (_, her_secs) = timed(|| her_match(&g, col.entity_relation(), &col.her_config()).unwrap());
    let (_, disc_secs) = timed(|| {
        prep.rext
            .discover(
                &g,
                &her_match(&g, col.entity_relation(), &col.her_config()).unwrap(),
                Some((col.entity_relation(), &col.spec.id_attr)),
                &col.spec.reference_keywords(),
                "h_x",
            )
            .unwrap()
    });
    println!("scratch: her {her_secs:.3}s, her+discover {disc_secs:.3}s");
}
