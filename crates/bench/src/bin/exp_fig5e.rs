//! **Fig 5(e)**: RExt extraction efficiency vs path bound `k` on the
//! MovKB collection, all six variants.
//!
//! Paper's shape: time grows with `k` (more paths examined; 132s → 263s
//! from k=1 to 4 on their testbed); runtime is insensitive to `m`/`|A|`.

use gsj_bench::report::{banner, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, variants, ExpConfig};
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5e");
    let scale = scale_from_env(150);
    banner("Fig 5(e) — RExt efficiency: vary k (MovKB)", "Fig 5(e)");
    println!("scale = {} (seconds per extraction)\n", scale.0);
    let col = collections::build("MovKB", scale, 5).unwrap();
    let ks = [1usize, 2, 3, 4];

    let mut t = Table::new(&["variant", "k=1", "k=2", "k=3", "k=4"]);
    for (name, mut cfg) in variants() {
        cfg.k = *ks.last().unwrap();
        let mut prep = prepared(&col, cfg);
        let base = prep.rext.clone();
        let mut cells = vec![name.to_string()];
        for &k in &ks {
            prep.rext = base.with_k(k);
            let out = recover_f_measure(&col, &prep, &ExpConfig::standard());
            let secs = out.discover_time.as_secs_f64() + out.extract_time.as_secs_f64();
            cells.push(format!("{secs:.2}s"));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: monotone growth with k (~2x from k=1 to k=4).");
}
