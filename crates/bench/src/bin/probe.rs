//! Quick pipeline probe (developer tool, not a paper experiment): run the
//! recover protocol on every collection at tiny scale and print F1.

use gsj_bench::{prepared, recover_f_measure, ExpConfig};
use gsj_datagen::{collections, Scale};

fn main() {
    let _obs = gsj_bench::obs_scope("probe");
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(Scale)
        .unwrap_or(Scale::tiny());
    for col in collections::build_all(scale, 1) {
        let t0 = std::time::Instant::now();
        let prep = prepared(&col, ExpConfig::standard().rext);
        let out = recover_f_measure(&col, &prep, &ExpConfig::standard());
        println!(
            "{:<10} entities={:<6} edges={:<7} matched={:<6} P={:.3} R={:.3} F1={:.3}  (prep {:.1}s, disc {:.1}s, extr {:.1}s, total {:.1}s)",
            col.name,
            col.entity_relation().len(),
            col.graph.edge_count(),
            out.matched,
            out.f.precision,
            out.f.recall,
            out.f.f1,
            prep.prep_time.as_secs_f64(),
            out.discover_time.as_secs_f64(),
            out.extract_time.as_secs_f64(),
            t0.elapsed().as_secs_f64(),
        );
    }
}
