//! **Fig 5(a)**: RExt quality (F-measure) vs the number of clusters
//! `H ∈ {10..50}` on the Paper collection, for all six method variants.
//!
//! Paper's shape: F first increases with `H`, then plateaus at the top
//! (pattern refinement absorbs the extra noisy clusters); RndPath sits
//! ~21% below the ML-guided variants throughout.

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, variants, ExpConfig};
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5a");
    let scale = scale_from_env(150);
    banner("Fig 5(a) — RExt quality: vary H (Paper)", "Fig 5(a)");
    println!("scale = {}\n", scale.0);
    let col = collections::build("Paper", scale, 5).unwrap();
    let hs = [10usize, 20, 30, 40, 50];

    let mut t = Table::new(&["variant", "H=10", "H=20", "H=30", "H=40", "H=50"]);
    for (name, cfg) in variants() {
        let mut prep = prepared(&col, cfg);
        let base = prep.rext.clone();
        let mut cells = vec![name.to_string()];
        for &h in &hs {
            prep.rext = base.with_h(h);
            let out = recover_f_measure(&col, &prep, &ExpConfig::standard());
            cells.push(f3(out.f.f1));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: rises to a plateau ~0.95 by H=30; RndPath lowest.");
}
