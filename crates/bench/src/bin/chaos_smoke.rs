//! CI smoke test for the fault-injection + governance layer (DESIGN.md
//! §11): run the full gSQL workload of one collection under a blanket
//! recoverable-fault spec and assert (1) no panic escapes, (2) every
//! query still answers, (3) faults actually injected, and (4) the
//! degradation counters moved. Exits non-zero on any failure so CI
//! catches chaos regressions.
//!
//! The spec comes from `GSJ_FAULTS` when set (as the CI job does), else
//! defaults to `all:p=0.05,seed=42`.

use gsj_bench::engine_for;
use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::Strategy;
use gsj_datagen::collections;
use gsj_datagen::queries::workload;
use gsj_datagen::Scale;

fn main() {
    let spec = std::env::var("GSJ_FAULTS").unwrap_or_else(|_| "all:p=0.05,seed=42".into());

    // Build the collection and engine *before* arming faults so offline
    // preparation (HER training, profile build) is deterministic.
    let col = collections::build(collections::ALL[0], Scale(12), 5).expect("collection");
    let (engine, _prep_secs) = engine_for(&col, RExtConfig::standard());

    gsj_faults::set_spec(Some(&spec)).expect("GSJ_FAULTS parses");
    let mut failures: Vec<String> = Vec::new();
    let mut ran = 0usize;
    for q in workload(&col) {
        for strategy in [Strategy::Baseline, Strategy::Optimized, Strategy::Heuristic] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.run(&q.text, strategy)
            }));
            ran += 1;
            match result {
                Ok(Ok(_)) => {}
                // Heuristic refuses queries with no relevant typed
                // relation by design; that refusal is not a chaos failure.
                Ok(Err(gsj_common::GsjError::Unsupported(_)))
                    if matches!(strategy, Strategy::Heuristic) => {}
                Ok(Err(e)) => failures.push(format!(
                    "{} [{strategy:?}] failed under `{spec}`: {e}",
                    q.name
                )),
                Err(_) => {
                    failures.push(format!("{} [{strategy:?}] PANICKED under `{spec}`", q.name))
                }
            }
        }
    }
    // Read the per-site stats before clearing the spec — set_spec resets
    // the counters. The spec must have actually injected somewhere, or
    // the run proved nothing.
    let stats = gsj_faults::sites();
    gsj_faults::set_spec(None).unwrap();
    let injected: u64 = stats.iter().map(|s| s.injected).sum();
    let hit = stats.iter().filter(|s| s.hits > 0).count();
    if injected == 0 {
        failures.push(format!("spec `{spec}` never injected a fault"));
    }

    let fallbacks = gsj_obs::Registry::global()
        .counter("gsj_core_gsql_fallback_total", &[])
        .get();

    if failures.is_empty() {
        println!(
            "chaos smoke ok: {ran} query runs green under `{spec}` \
             ({hit} sites hit, {injected} faults injected, {fallbacks} fallbacks)"
        );
    } else {
        for f in &failures {
            eprintln!("chaos smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
