//! **Table II**: dataset collections — relation tuple counts and graph
//! vertex/edge counts, plus the 36-query workload composition the paper
//! describes alongside it.
//!
//! Usage: `cargo run -p gsj-bench --bin exp_table2 --release [-- scale]`
//! (or set `GSJ_SCALE`).

use gsj_bench::report::{banner, Table};
use gsj_bench::scale_from_env;
use gsj_datagen::collections;
use gsj_datagen::queries::{composition, workload};
use gsj_graph::stats::graph_stats;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_table2");
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(gsj_datagen::Scale)
        .unwrap_or_else(|| scale_from_env(300));
    banner("Table II — dataset collections", "Table II of the paper");
    println!(
        "scale = {} (synthetic stand-ins; see DESIGN.md §2)\n",
        scale.0
    );

    let cols = collections::build_all(scale, 1);
    let mut t = Table::new(&[
        "Data coll.",
        "Relations",
        "Tuples",
        "Graph vertices",
        "Graph edges",
        "Avg degree",
    ]);
    for c in &cols {
        let s = graph_stats(&c.graph);
        let mut names = c.db.names();
        names.sort();
        t.row(vec![
            c.name.clone(),
            names.join("/"),
            c.db.total_tuples().to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.avg_degree),
        ]);
    }
    println!("{}", t.render());

    let all: Vec<_> = cols.iter().flat_map(workload).collect();
    let comp = composition(&all);
    println!(
        "workload: {} queries — {} enrichment, {} link, {} dynamic, {} multi-join, {} negation, {} aggregation",
        comp.total, comp.enrichment, comp.link, comp.dynamic, comp.multi_join, comp.negation, comp.aggregation
    );
    println!(
        "(paper: 36 queries — 32 enrichment, 4 link, 4 dynamic, 10 multi-join, 17 negation, 4 aggregation)"
    );
}
