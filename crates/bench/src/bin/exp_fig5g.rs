//! **Fig 5(g)**: cascading HER error — inject a fraction `η` of mismatches
//! into `f(S,G)` and measure extraction F on every collection.
//!
//! Paper's shape: F degrades roughly *proportionally* to `η` ("mismatches
//! only cause RExt to extract properties for the wrong target tuple,
//! without affecting the extraction for other correctly matched tuples").

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, ExpConfig};
use gsj_core::config::RExtConfig;
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5g");
    let scale = scale_from_env(100);
    banner("Fig 5(g) — cascading HER error (all datasets)", "Fig 5(g)");
    println!("scale = {}\n", scale.0);
    let etas = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];

    let mut t = Table::new(&["collection", "η=0%", "5%", "10%", "15%", "20%", "25%"]);
    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let prep = prepared(&col, RExtConfig::standard());
        let mut cells = vec![name.to_string()];
        for &eta in &etas {
            let out = recover_f_measure(
                &col,
                &prep,
                &ExpConfig {
                    her_eta: eta,
                    ..ExpConfig::standard()
                },
            );
            cells.push(f3(out.f.f1));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: near-linear degradation in η.");
}
