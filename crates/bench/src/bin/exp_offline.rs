//! **Exp-3(I)**: offline preprocessing costs — (a) language-model training
//! time per graph; (b) pre-extraction time and materialization footprint
//! per collection; (c) link-join cache (`g_L`) size.
//!
//! Paper's numbers: training 32–220s per graph; pre-extraction 17–677s,
//! materializing 0.03%–39.5% of raw collection size; g_L ≈ 0.01% of the
//! graph.

use gsj_bench::report::{banner, Table};
use gsj_bench::{scale_from_env, timed};
use gsj_core::config::RExtConfig;
use gsj_core::profile::GraphProfile;
use gsj_core::rext::Rext;
use gsj_core::typed::TypedConfig;
use gsj_datagen::collections;
use gsj_relational::Relation;

/// Rendered byte size of a relation (same measure as
/// `GraphProfile::materialized_bytes`).
fn rel_bytes(r: &Relation) -> usize {
    r.tuples()
        .iter()
        .flat_map(|t| t.values().iter())
        .map(|v| v.to_string().len())
        .sum()
}

fn main() {
    let _obs = gsj_bench::obs_scope("exp_offline");
    let scale = scale_from_env(150);
    banner("Exp-3(I) — offline preprocessing", "Exp-3(I)(a)(b)");
    println!("scale = {}\n", scale.0);

    let mut t = Table::new(&[
        "collection",
        "LM training",
        "pre-extraction",
        "materialized",
        "% of raw",
    ]);
    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let (rext, train_secs) = timed(|| Rext::train(&col.graph, RExtConfig::standard()).unwrap());
        let (profile, extract_secs) = timed(|| {
            GraphProfile::build(
                &col.graph,
                &col.db,
                vec![col.relation_spec()],
                &rext,
                &col.her_config(),
                Some(&TypedConfig {
                    default_keywords: col.spec.reference_keywords(),
                    ..TypedConfig::default()
                }),
            )
            .unwrap()
        });
        // Raw collection size: all relations + a vertex/edge-list
        // rendering of the graph.
        let mut raw = 0usize;
        for rel_name in col.db.names() {
            raw += rel_bytes(col.db.get(rel_name).unwrap());
        }
        for v in col.graph.vertices() {
            raw += col.graph.vertex_label_str(v).len();
            for e in col.graph.out_edges(v) {
                raw += col.graph.symbols().resolve(e.label).len() + 8;
            }
        }
        let mat = profile.materialized_bytes();
        t.row(vec![
            name.to_string(),
            format!("{train_secs:.1}s"),
            format!("{extract_secs:.1}s"),
            format!("{} B", mat),
            format!("{:.1}%", 100.0 * mat as f64 / raw.max(1) as f64),
        ]);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!(
        "paper: training 32–220s; pre-extraction 17–677s; materialization 0.03%–39.5% of raw; g_L ≈ 0.01% of |G| (cold: cache starts empty)."
    );
}
