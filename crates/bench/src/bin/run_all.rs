//! Run every experiment of the evaluation (Section V) at a reduced default
//! scale, in paper order. Equivalent to running the `exp_*` binaries one
//! after another; see DESIGN.md §3 for the experiment index.
//!
//! Usage: `cargo run -p gsj-bench --bin run_all --release`
//! (`GSJ_SCALE` scales every experiment.)

use std::process::Command;

fn main() {
    // `--trace` here forwards to every child via the env toggle, so each
    // experiment writes its own `gsj-trace-<bin>.json` snapshot.
    let tracing = gsj_bench::init_tracing();
    let exps = [
        ("exp_table2", "Table II — dataset collections"),
        ("exp_fig5a", "Fig 5(a) quality vs H"),
        ("exp_fig5b", "Fig 5(b) quality vs m"),
        ("exp_fig5c", "Fig 5(c) quality vs k"),
        ("exp_fig5d", "Fig 5(d) efficiency vs H"),
        ("exp_fig5e", "Fig 5(e) efficiency vs k"),
        ("exp_fig5f", "Fig 5(f) clustering noise"),
        ("exp_fig5g", "Fig 5(g) cascading HER error"),
        ("exp_table3", "Table III heuristic-join accuracy"),
        ("exp_offline", "Exp-3(I) offline preprocessing"),
        ("exp_e2e", "Exp-3(II) end-to-end queries"),
        ("exp_fig5h", "Fig 5(h) / Exp-4 IncExt"),
    ];
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    for (bin, label) in exps {
        eprintln!("\n##### running {bin} ({label}) #####");
        let mut cmd = Command::new(bin_dir.join(bin));
        if tracing {
            cmd.env("GSJ_TRACE", "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
        }
    }
    eprintln!("\nall experiments complete.");
}
