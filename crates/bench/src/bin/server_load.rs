//! `server_load` — load benchmark for the gSQL server: an in-process
//! `gsj_server::Server` over a fixture collection, swept at 1/2/4/8
//! concurrent clients each replaying the collection's query workload
//! over the wire. Records exact p50/p99/mean round-trip latency
//! (computed from the sorted sample set, not an approximation) plus
//! aggregate queries-per-second into `BENCH_server.json`.
//!
//! Usage:
//!   server_load [--quick] [--out FILE]
//!
//! `--quick` cuts the rounds-per-client so CI can smoke it; the
//! committed snapshot is generated without it via
//! `scripts/bench_snapshot.sh --server`.

use gsj_server::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

const COLLECTION: &str = "Celebrity";
const CLIENT_COUNTS: &[usize] = &[1, 2, 4, 8];

/// One measured sweep: metric name -> value.
type Results = Vec<(String, f64)>;

/// Latencies (ns) from one client-count sweep plus its wall time.
struct Sweep {
    latencies_ns: Vec<u64>,
    wall_secs: f64,
}

fn percentile_ns(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Run `clients` concurrent clients, each replaying the workload
/// `rounds` times against the server at `addr`, timing every round trip.
fn sweep(addr: std::net::SocketAddr, queries: &[String], clients: usize, rounds: usize) -> Sweep {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(rounds * queries.len());
                for round in 0..rounds {
                    // Stagger the starting query so clients don't run in
                    // lockstep over the same plan.
                    for j in 0..queries.len() {
                        let q = &queries[(i + round + j) % queries.len()];
                        let t = Instant::now();
                        c.query(q).unwrap_or_else(|e| panic!("client {i}: {e}"));
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies_ns = Vec::new();
    for w in workers {
        latencies_ns.extend(w.join().expect("load client panicked"));
    }
    Sweep {
        latencies_ns,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

fn section(clients: usize, s: &Sweep) -> (String, Results) {
    let mut sorted = s.latencies_ns.clone();
    sorted.sort_unstable();
    let n = sorted.len();
    let mean = sorted.iter().sum::<u64>() as f64 / n.max(1) as f64;
    let metrics: Results = vec![
        ("queries".into(), n as f64),
        ("p50_us".into(), percentile_ns(&sorted, 50.0) / 1e3),
        ("p99_us".into(), percentile_ns(&sorted, 99.0) / 1e3),
        ("mean_us".into(), mean / 1e3),
        ("qps".into(), n as f64 / s.wall_secs.max(1e-9)),
    ];
    (format!("clients_{clients}"), metrics)
}

fn section_json(name: &str, results: &[(String, f64)]) -> String {
    let body: Vec<String> = results
        .iter()
        .map(|(k, v)| format!("    \"{}\": {:.1}", gsj_obs::escape_json(k), v))
        .collect();
    format!("  \"{name}\": {{\n{}\n  }}", body.join(",\n"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_server.json".into());
    let rounds = if quick { 3 } else { 20 };

    eprintln!("server_load: loading {COLLECTION} (tiny, seed 42)");
    let col = gsj_datagen::collections::build(COLLECTION, gsj_datagen::Scale::tiny(), 42)
        .expect("known collection");
    let queries: Vec<String> = gsj_datagen::queries::workload(&col)
        .into_iter()
        .map(|q| q.text)
        .collect();
    let engine = Arc::new(gsj_server::engine_for_collection(&col).expect("build engine"));
    let handle = Server::start(
        engine,
        ServerConfig {
            sessions: 8,
            queue: 8,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();
    eprintln!(
        "server_load: serving on {addr}, {} workload queries",
        queries.len()
    );

    // Warm the engine (first-touch caches, lazy metrics) off the clock.
    sweep(addr, &queries, 1, 1);

    let mut sections: Vec<String> = Vec::new();
    for &clients in CLIENT_COUNTS {
        let s = sweep(addr, &queries, clients, rounds);
        let (name, metrics) = section(clients, &s);
        let fmt = |key: &str| {
            metrics
                .iter()
                .find(|(k, _)| k == key)
                .map_or(0.0, |(_, v)| *v)
        };
        eprintln!(
            "[{clients} client(s)] {} queries: p50 {:.0}µs p99 {:.0}µs mean {:.0}µs {:.0} qps",
            fmt("queries"),
            fmt("p50_us"),
            fmt("p99_us"),
            fmt("mean_us"),
            fmt("qps"),
        );
        sections.push(section_json(&name, &metrics));
    }
    handle.shutdown();

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let doc = format!(
        "{{\n  \"note\": \"round-trip latency (µs) and throughput per concurrent-client count over the GSJ/1 wire protocol; p50/p99 are exact order statistics; regenerate with scripts/bench_snapshot.sh --server\",\n  \"collection\": \"{COLLECTION}\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n{}\n}}\n",
        sections.join(",\n"),
    );
    std::fs::write(&out, doc).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out} (host_cores = {cores})");
}
