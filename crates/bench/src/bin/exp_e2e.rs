//! **Exp-3(II)**: end-to-end gSQL evaluation time of the 36-query workload
//! under the three strategies — conceptual baseline (HER + RExt online),
//! optimized (pre-extracted relations for well-behaved joins), and
//! heuristic joins.
//!
//! Paper's numbers: optimized ≤ 9.2s on the largest collection and
//! 114.9× faster than the baseline on average (88.9% of queries
//! well-behaved); heuristic 8.19× faster than baseline (up to 27.9×);
//! link joins 6.13× without the g_L cache, 23.8× on cache hits.

use gsj_bench::report::{banner, Table};
use gsj_bench::{engine_for, scale_from_env, timed};
use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::Strategy;
use gsj_datagen::collections;
use gsj_datagen::queries::workload;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_e2e");
    let scale = scale_from_env(60);
    banner("Exp-3(II) — end-to-end query evaluation", "Exp-3(II)");
    println!(
        "scale = {} (baseline runs HER+RExt online; keep the scale modest)\n",
        scale.0
    );

    let mut t = Table::new(&[
        "collection",
        "well-behaved",
        "baseline avg",
        "optimized avg",
        "heuristic avg",
        "opt speedup",
        "heur speedup",
    ]);
    let mut grand_speedup = Vec::new();
    let mut link_cold = Vec::new();
    let mut link_warm = Vec::new();

    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let (engine, prep_secs) = engine_for(&col, RExtConfig::standard());
        eprintln!("  {name}: offline prep {prep_secs:.1}s");
        let queries = workload(&col);
        let mut wb = 0usize;
        let (mut base_sum, mut opt_sum, mut heur_sum) = (0.0f64, 0.0f64, 0.0f64);
        let mut counted = 0usize;
        for q in &queries {
            let parsed = engine.parse(&q.text).unwrap();
            if engine.is_well_behaved(&parsed) {
                wb += 1;
            }
            let (base, base_secs) = timed(|| engine.run(&q.text, Strategy::Baseline));
            let (opt, opt_secs) = timed(|| engine.run(&q.text, Strategy::Optimized));
            let (heur, heur_secs) = timed(|| engine.run(&q.text, Strategy::Heuristic));
            if base.is_err() || opt.is_err() || heur.is_err() {
                eprintln!(
                    "    {} skipped: base={:?} opt={:?} heur={:?}",
                    q.name,
                    base.err(),
                    opt.err(),
                    heur.err()
                );
                continue;
            }
            counted += 1;
            base_sum += base_secs;
            opt_sum += opt_secs;
            heur_sum += heur_secs;
            if q.link {
                link_cold.push(base_secs / opt_secs.max(1e-9));
                // Second run hits the g_L cache.
                let (_, warm_secs) = timed(|| engine.run(&q.text, Strategy::Optimized));
                link_warm.push(base_secs / warm_secs.max(1e-9));
            }
        }
        let n = counted.max(1) as f64;
        let opt_speedup = base_sum / opt_sum.max(1e-9);
        grand_speedup.push(opt_speedup);
        t.row(vec![
            name.to_string(),
            format!("{wb}/{}", queries.len()),
            format!("{:.3}s", base_sum / n),
            format!("{:.4}s", opt_sum / n),
            format!("{:.4}s", heur_sum / n),
            format!("{opt_speedup:.1}x"),
            format!("{:.1}x", base_sum / heur_sum.max(1e-9)),
        ]);
    }
    println!("{}", t.render());
    let gmean = grand_speedup.iter().sum::<f64>() / grand_speedup.len().max(1) as f64;
    println!("mean optimized speedup over baseline: {gmean:.1}x (paper: 114.9x)");
    if !link_cold.is_empty() {
        println!(
            "link joins: cold (no g_L) {:.1}x, warm (g_L hit) {:.1}x (paper: 6.13x / 23.8x)",
            link_cold.iter().sum::<f64>() / link_cold.len() as f64,
            link_warm.iter().sum::<f64>() / link_warm.len() as f64
        );
    }
}
