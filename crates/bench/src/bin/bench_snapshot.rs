//! Relational-kernel benchmark snapshot: times the hot paths the
//! columnar refactor targets (`relational_join`, `physical_exec`,
//! `semantic_join`) at 10k/100k rows and records them as JSON, so the
//! perf trajectory is committed (`BENCH_relational.json`) and CI can
//! fail on regressions.
//!
//! Usage:
//!   bench_snapshot [--quick] [--out FILE]          measure, write JSON
//!   bench_snapshot [--quick] --merge FILE          measure, keep FILE's
//!                                                  "before" section, update
//!                                                  "after" + "speedup"
//!   bench_snapshot --quick --check FILE [--tol F]  measure, compare against
//!                                                  FILE's "after" section;
//!                                                  exit 1 on a relative
//!                                                  regression > F (def 0.25)
//!   bench_snapshot --parallel [--quick] [--out F]  measure the morsel-
//!                                                  parallel kernels at
//!                                                  1/2/4/8 workers, write
//!                                                  per-worker-count sections
//!                                                  plus speedups and the
//!                                                  host core count
//!                                                  (BENCH_parallel.json)
//!   bench_snapshot --assert-speedup F              CI smoke: 4-worker
//!                                                  physical_exec must be
//!                                                  ≥F× over 1-worker; exits
//!                                                  0 with a notice when the
//!                                                  host has <4 cores
//!
//! The check normalizes by the median ratio across benches before
//! applying the tolerance, so a uniformly slower CI machine does not
//! trip it — only a kernel that regressed *relative to the others* does.

use gsj_common::Value;
use gsj_graph::VertexId;
use gsj_her::MatchRelation;
use gsj_relational::exec::natural_join;
use gsj_relational::physical::{execute_physical, lower, ExecContext};
use gsj_relational::{CmpOp, Database, Expr, LogicalPlan, Relation, Schema};
use std::time::Instant;

/// One measured bench: name -> nanoseconds per iteration (min over runs).
type Results = Vec<(String, f64)>;

fn table(name: &str, rows: usize, key_mod: usize) -> Relation {
    let mut r = Relation::empty(Schema::of(name, &["k", name]));
    for i in 0..rows {
        r.push_values(vec![
            Value::Int((i % key_mod) as i64),
            Value::str(format!("{name}-{i}")),
        ])
        .unwrap();
    }
    r
}

fn join_db(n: usize) -> Database {
    let mut db = Database::new();
    db.insert(table("l", n, n / 2));
    db.insert(table("r", n, n / 2));
    db
}

fn pipeline_plan() -> LogicalPlan {
    LogicalPlan::scan("l")
        .natural_join(LogicalPlan::scan("r"))
        .select(Expr::cmp(CmpOp::Ge, Expr::col("k"), Expr::lit(2i64)))
        .project(&["k"])
}

fn theta_plan() -> LogicalPlan {
    LogicalPlan::scan("l").qualify("L").theta_join(
        LogicalPlan::scan("r").qualify("R"),
        Expr::cmp(CmpOp::Eq, Expr::col("L.k"), Expr::col("R.k")).and(Expr::cmp(
            CmpOp::Ne,
            Expr::col("L.l"),
            Expr::col("R.r"),
        )),
    )
}

/// Synthetic enrichment-join inputs at scale: S(pid, risk), a match
/// relation pid -> vertex, and an extracted h(D,G)(vid, loc, company).
fn enrichment_inputs(n: usize) -> (Relation, MatchRelation, Relation) {
    let mut s = Relation::empty(Schema::of("product", &["pid", "risk"]));
    let mut m = MatchRelation::new();
    let mut dg = Relation::empty(Schema::of("h_product", &["vid", "loc", "company"]));
    for i in 0..n {
        let pid = Value::str(format!("p{i}"));
        s.push_values(vec![
            pid.clone(),
            Value::str(if i % 3 == 0 { "high" } else { "low" }),
        ])
        .unwrap();
        // ~90% of tuples match a vertex; extraction misses ~10% of those.
        if i % 10 != 9 {
            m.push(pid, VertexId(i as u32));
        }
        if i % 9 != 8 {
            dg.push_values(vec![
                Value::Int(i as i64),
                Value::str(if i % 2 == 0 { "UK" } else { "US" }),
                Value::str(format!("company{}", i % 50)),
            ])
            .unwrap();
        }
    }
    (s, m, dg)
}

/// Time `f`: warm up, then take the fastest of `runs` timed runs of
/// `iters` iterations each. Returns ns/iter.
fn time<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    let target_ns: u128 = if quick { 60_000_000 } else { 400_000_000 };
    // One untimed warmup iteration that also calibrates the batch size.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1);
    let iters = ((target_ns / 4) / once).clamp(1, 1_000_000) as u64;
    let runs = if quick { 3 } else { 5 };
    let mut best = f64::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
    }
    best
}

fn run_benches(quick: bool) -> Results {
    let mut out: Results = Vec::new();
    let sizes: &[usize] = &[10_000, 100_000];

    for &n in sizes {
        let l = table("l", n, n / 2);
        let r = table("r", n, n / 2);
        let ns = time(
            || {
                std::hint::black_box(natural_join(&l, &r).unwrap());
            },
            quick,
        );
        out.push((format!("relational_join/natural_join/{n}"), ns));
        eprintln!("relational_join/natural_join/{n}: {}", human(ns));
    }

    for (plan_name, plan) in [("pipeline", pipeline_plan()), ("theta", theta_plan())] {
        for &n in sizes {
            let db = join_db(n);
            let lowered = lower(&plan, &db).unwrap();
            let ns = time(
                || {
                    let mut ctx = ExecContext::new();
                    std::hint::black_box(execute_physical(&lowered, &db, &mut ctx).unwrap());
                },
                quick,
            );
            out.push((format!("physical_exec/{plan_name}/{n}"), ns));
            eprintln!("physical_exec/{plan_name}/{n}: {}", human(ns));
        }
    }

    for &n in sizes {
        let (s, m, dg) = enrichment_inputs(n);
        let ns = time(
            || {
                std::hint::black_box(
                    gsj_core::join::enrichment_join_precomputed(&s, "pid", &m, &dg, None).unwrap(),
                );
            },
            quick,
        );
        out.push((format!("semantic_join/enrichment_precomputed/{n}"), ns));
        eprintln!("semantic_join/enrichment_precomputed/{n}: {}", human(ns));
    }

    out
}

/// A deterministic graph at `n` vertices with 8 out-edges each (ring +
/// strided skips), so a six-hop BFS floods most of the graph and its
/// frontiers grow far past the parallel engagement threshold.
fn bench_graph(n: usize) -> gsj_graph::LabeledGraph {
    let mut g = gsj_graph::LabeledGraph::new();
    let vs: Vec<gsj_graph::VertexId> = (0..n).map(|i| g.add_vertex(&format!("v{i}"))).collect();
    for i in 0..n {
        for stride in [1usize, 3, 17, 97, 331, 1031, 3301, 10037] {
            g.add_edge(vs[i], "e", vs[(i + stride) % n]);
        }
    }
    g
}

/// The morsel-parallel kernels, timed at a fixed worker count: the
/// physical pipeline and natural join at 100k rows, and a k-hop
/// traversal over a 100k-vertex graph.
fn run_parallel_benches(workers: usize, quick: bool) -> Results {
    use gsj_common::pool;
    let mut out: Results = Vec::new();
    let n = 100_000;

    let l = table("l", n, n / 2);
    let r = table("r", n, n / 2);
    let ns = time(
        || {
            pool::with_threads(workers, || {
                std::hint::black_box(natural_join(&l, &r).unwrap());
            })
        },
        quick,
    );
    out.push((format!("relational_join/natural_join/{n}"), ns));
    eprintln!(
        "[{workers}w] relational_join/natural_join/{n}: {}",
        human(ns)
    );

    let db = join_db(n);
    let lowered = lower(&pipeline_plan(), &db).unwrap();
    let ns = time(
        || {
            pool::with_threads(workers, || {
                let mut ctx = ExecContext::new();
                std::hint::black_box(execute_physical(&lowered, &db, &mut ctx).unwrap());
            })
        },
        quick,
    );
    out.push((format!("physical_exec/pipeline/{n}"), ns));
    eprintln!("[{workers}w] physical_exec/pipeline/{n}: {}", human(ns));

    let g = bench_graph(n);
    let start = g.vertices().next().unwrap();
    let ns = time(
        || {
            pool::with_threads(workers, || {
                std::hint::black_box(gsj_graph::traversal::k_hop_set(&g, start, 6));
            })
        },
        quick,
    );
    out.push((format!("traversal/k_hop/{n}"), ns));
    eprintln!("[{workers}w] traversal/k_hop/{n}: {}", human(ns));

    out
}

fn write_parallel_snapshot(path: &str, runs: &[(usize, Results)], quick: bool) {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let base = &runs[0].1;
    let mut sections: Vec<String> = runs
        .iter()
        .map(|(w, res)| section_json(&format!("workers_{w}"), res))
        .collect();
    for (w, res) in runs.iter().skip(1) {
        let speedup: Results = base
            .iter()
            .filter_map(|(k, b)| {
                res.iter()
                    .find(|(k2, _)| k2 == k)
                    .map(|(_, a)| (k.clone(), if *a > 0.0 { b / a } else { 0.0 }))
            })
            .collect();
        sections.push(section_json(&format!("speedup_{w}_vs_1"), &speedup));
    }
    let doc = format!(
        "{{\n  \"note\": \"ns/iter per worker count; speedups are vs the 1-worker run on the same host; regenerate with scripts/bench_snapshot.sh --parallel\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n{}\n}}\n",
        sections.join(",\n"),
    );
    std::fs::write(path, doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path} (host_cores = {cores})");
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn section_json(name: &str, results: &[(String, f64)]) -> String {
    let body: Vec<String> = results
        .iter()
        .map(|(k, v)| format!("    \"{}\": {:.1}", gsj_obs::escape_json(k), v))
        .collect();
    format!("  \"{name}\": {{\n{}\n  }}", body.join(",\n"))
}

/// Read a `{bench: ns}` section out of a snapshot file.
fn read_section(json: &gsj_obs::Json, section: &str) -> Option<Results> {
    let obj = json.get(section)?;
    match obj {
        gsj_obs::Json::Obj(fields) => Some(
            fields
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect(),
        ),
        _ => None,
    }
}

fn write_snapshot(path: &str, before: &Results, after: &Results, quick: bool) {
    let speedup: Results = before
        .iter()
        .filter_map(|(k, b)| {
            after
                .iter()
                .find(|(k2, _)| k2 == k)
                .map(|(_, a)| (k.clone(), if *a > 0.0 { b / a } else { 0.0 }))
        })
        .collect();
    let doc = format!(
        "{{\n  \"note\": \"ns/iter; before = row-oriented Vec<Tuple> storage, after = columnar; regenerate with scripts/bench_snapshot.sh\",\n  \"quick\": {quick},\n{},\n{},\n{}\n}}\n",
        section_json("before", before),
        section_json("after", after),
        section_json("speedup", &speedup),
    );
    std::fs::write(path, doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Compare a fresh run against the committed "after" numbers. Ratios are
/// normalized by their median so absolute machine speed cancels out.
fn check(fresh: &Results, committed: &Results, tol: f64) -> bool {
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (k, ns) in fresh {
        if let Some((_, base)) = committed.iter().find(|(k2, _)| k2 == k) {
            if *base > 0.0 {
                ratios.push((k.clone(), ns / base));
            }
        }
    }
    if ratios.is_empty() {
        eprintln!("check: no overlapping benches; failing");
        return false;
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mut ok = true;
    for (k, r) in &ratios {
        let normalized = r / median;
        let status = if normalized > 1.0 + tol {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!("check {k}: ratio {r:.3} (normalized {normalized:.3}) {status}");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_val = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let merge = flag_val("--merge");
    let check_path = flag_val("--check");
    let tol: f64 = flag_val("--tol")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    if let Some(f) = flag_val("--assert-speedup") {
        let need: f64 = f.parse().expect("--assert-speedup takes a float");
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores < 4 {
            eprintln!(
                "assert-speedup: host has {cores} core(s), a 4-worker pool \
                 cannot speed up; skipping"
            );
            return;
        }
        let bench = "physical_exec/pipeline/100000";
        let one = run_parallel_benches(1, true);
        let four = run_parallel_benches(4, true);
        let base = one.iter().find(|(k, _)| k == bench).unwrap().1;
        let par = four.iter().find(|(k, _)| k == bench).unwrap().1;
        let speedup = base / par;
        eprintln!("{bench}: 4-worker speedup {speedup:.2}x (need >= {need:.2}x)");
        if speedup < need {
            eprintln!("parallel speedup smoke FAILED");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--parallel") {
        let out = flag_val("--out").unwrap_or_else(|| "BENCH_parallel.json".into());
        let runs: Vec<(usize, Results)> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| (w, run_parallel_benches(w, quick)))
            .collect();
        write_parallel_snapshot(&out, &runs, quick);
        return;
    }
    let out = flag_val("--out").unwrap_or_else(|| "BENCH_relational.json".into());

    let fresh = run_benches(quick);

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let json = gsj_obs::parse_json(&text).expect("committed snapshot parses");
        let committed = read_section(&json, "after").expect("snapshot has an `after` section");
        if !check(&fresh, &committed, tol) {
            eprintln!(
                "bench check FAILED (>{:.0}% normalized regression)",
                tol * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("bench check passed");
        return;
    }

    if let Some(path) = merge {
        let before = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| gsj_obs::parse_json(&text).ok())
            .and_then(|json| read_section(&json, "before"))
            .unwrap_or_else(|| fresh.clone());
        write_snapshot(&path, &before, &fresh, quick);
        return;
    }

    write_snapshot(&out, &fresh, &fresh, quick);
}
