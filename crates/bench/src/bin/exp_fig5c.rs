//! **Fig 5(c)**: RExt quality vs the path length bound `k ∈ {1..4}` on the
//! MovKB collection, all six variants.
//!
//! Paper's shape: F increases with `k` (longer paths reach more candidate
//! attributes, 0.91 → 0.96 on MovKB) and plateaus from k=3 to 4.

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, variants, ExpConfig};
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5c");
    let scale = scale_from_env(100);
    banner("Fig 5(c) — RExt quality: vary k (MovKB)", "Fig 5(c)");
    println!("scale = {}\n", scale.0);
    let col = collections::build("MovKB", scale, 5).unwrap();
    let ks = [1usize, 2, 3, 4];

    let mut t = Table::new(&["variant", "k=1", "k=2", "k=3", "k=4"]);
    for (name, mut cfg) in variants() {
        // Train with the largest k so the walk corpus covers every sweep
        // point.
        cfg.k = *ks.last().unwrap();
        let mut prep = prepared(&col, cfg);
        let base = prep.rext.clone();
        let mut cells = vec![name.to_string()];
        for &k in &ks {
            prep.rext = base.with_k(k);
            let out = recover_f_measure(&col, &prep, &ExpConfig::standard());
            cells.push(f3(out.f.f1));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: rises with k, plateaus by k=3 (0.91 → 0.96 on MovKB).");
}
