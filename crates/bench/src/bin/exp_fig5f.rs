//! **Fig 5(f)**: robustness to clustering noise — inject noisy labels into
//! the KMC assignment and measure extraction F on every collection.
//!
//! Paper's shape: accuracy does not significantly drop until ~20% noise
//! (majority-vote pattern refinement absorbs clustering errors).

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, ExpConfig};
use gsj_core::config::RExtConfig;
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5f");
    let scale = scale_from_env(100);
    banner("Fig 5(f) — clustering quality (all datasets)", "Fig 5(f)");
    println!("scale = {}\n", scale.0);
    let noises = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

    let mut t = Table::new(&["collection", "0%", "5%", "10%", "15%", "20%", "25%", "30%"]);
    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let prep = prepared(&col, RExtConfig::standard());
        let mut cells = vec![name.to_string()];
        for &noise in &noises {
            let out = recover_f_measure(
                &col,
                &prep,
                &ExpConfig {
                    cluster_noise: noise,
                    ..ExpConfig::standard()
                },
            );
            cells.push(f3(out.f.f1));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: flat until ~20% noise, then degrades.");
}
