//! CI smoke test for the observability layer: run a small end-to-end
//! gSQL query with tracing forced on, export the span + metrics
//! snapshot as JSON, parse it back with the gsj-obs parsers, and assert
//! the expected pipeline stage labels are present. Exits non-zero on
//! any failure so CI catches trace regressions.

use gsj_bench::engine_for;
use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::Strategy;
use gsj_datagen::collections;
use gsj_datagen::Scale;

fn main() {
    // This binary exists to verify the trace pipeline: always collect.
    gsj_bench::init_tracing();
    gsj_obs::set_tracing(true);

    let col = collections::build(collections::ALL[0], Scale(12), 5).expect("collection");
    let (engine, _prep_secs) = engine_for(&col, RExtConfig::standard());
    let kw = &col.spec.reference_keywords()[0];
    let query = format!("select * from {} e-join G <{}> as T", col.spec.rel_name, kw);
    let rel = engine.run(&query, Strategy::Optimized).expect("query runs");
    gsj_obs::set_tracing(false);

    let spans = gsj_obs::take_spans();
    let json = gsj_bench::trace_snapshot_json("trace_smoke", &spans);
    let mut failures: Vec<String> = Vec::new();

    // 1. The JSON snapshot must parse with the bundled parser.
    let parsed = match gsj_obs::parse_json(&json) {
        Ok(v) => Some(v),
        Err(e) => {
            failures.push(format!("snapshot JSON does not parse: {e}"));
            None
        }
    };

    // 2. The parsed snapshot must contain the expected stage labels
    //    (offline profiling ran HER + RExt; the query ran an e-join).
    if let Some(v) = &parsed {
        let labels: Vec<&str> = v
            .get("spans")
            .and_then(|s| s.as_arr())
            .map(|arr| {
                arr.iter()
                    .filter_map(|s| s.get("label").and_then(|l| l.as_str()))
                    .collect()
            })
            .unwrap_or_default();
        for want in [
            "profile.build",
            "her.match",
            "rext.discover",
            "rext.extract",
            "gsql.query",
            "gsql.ejoin",
        ] {
            if !labels.contains(&want) {
                failures.push(format!("missing stage label `{want}` in trace"));
            }
        }
        if v.get("metrics").and_then(|m| m.as_arr()).is_none() {
            failures.push("snapshot has no metrics array".into());
        }
    }

    // 3. The Prometheus export must round-trip through its parser and
    //    carry at least one gsj_ metric from the run.
    let prom = gsj_obs::prometheus_text(gsj_obs::Registry::global());
    match gsj_obs::parse_prometheus_text(&prom) {
        Ok(snap) => {
            if !snap.samples.iter().any(|s| s.name.starts_with("gsj_")) {
                failures.push("no gsj_ metric in Prometheus export".into());
            }
        }
        Err(e) => failures.push(format!("Prometheus export does not parse: {e}")),
    }

    if failures.is_empty() {
        println!(
            "trace smoke ok: {} spans collected, {} result row(s), snapshot parses",
            spans.len(),
            rel.len()
        );
    } else {
        for f in &failures {
            eprintln!("trace smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
