//! **Table III**: relative accuracy of heuristic joins.
//!
//! Protocol (Exp-2(II)): heuristic joins are *enforced* on all workload
//! queries; exact join results (the optimized implementation, which equals
//! the conceptual baseline on well-behaved queries) serve as ground truth;
//! the F-measure of the heuristic result sets is reported by join type and
//! by collection. Non-well-behaved joins are exercised with extra queries
//! whose keywords fall outside `A_R`, scored against the online baseline.
//!
//! Paper's numbers: all 0.88 · non-well-behaved 0.81 · enrichment 0.89 ·
//! link 0.81; per collection 0.95/0.82/0.84/0.89/0.88/0.90.

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{engine_for, result_f1, scale_from_env};
use gsj_core::config::RExtConfig;
use gsj_core::gsql::exec::Strategy;
use gsj_datagen::collections;
use gsj_datagen::queries::workload;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_table3");
    let scale = scale_from_env(120);
    banner(
        "Table III — relative accuracy of heuristic joins",
        "Table III",
    );
    println!("scale = {}\n", scale.0);

    let mut per_collection: Vec<(String, f64, usize)> = Vec::new();
    let mut enrich_scores = Vec::new();
    let mut link_scores = Vec::new();
    let mut nwb_scores = Vec::new();

    for name in collections::ALL {
        let col = collections::build(name, scale, 5).unwrap();
        let (engine, _) = engine_for(&col, RExtConfig::standard());
        let mut scores = Vec::new();
        for q in workload(&col) {
            let exact = match engine.run(&q.text, Strategy::Optimized) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  {} exact failed: {e}", q.name);
                    continue;
                }
            };
            let approx = match engine.run(&q.text, Strategy::Heuristic) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  {} heuristic failed: {e}", q.name);
                    scores.push(0.0);
                    if q.link {
                        link_scores.push(0.0);
                    } else {
                        enrich_scores.push(0.0);
                    }
                    continue;
                }
            };
            let f = result_f1(&approx, &exact);
            scores.push(f);
            if q.link {
                link_scores.push(f);
            } else {
                enrich_scores.push(f);
            }
        }

        // Non-well-behaved probe: ask for a keyword outside A_R (a noise
        // property); exact answer comes from the online baseline.
        let noise_kw = &col.spec.noise_props[0].keyword;
        let nwb = format!(
            "select {id}, {kw} from {rel} e-join G <{kw}> as T",
            id = col.spec.id_attr,
            kw = noise_kw,
            rel = col.spec.rel_name
        );
        if let (Ok(exact), Ok(approx)) = (
            engine.run(&nwb, Strategy::Baseline),
            engine.run(&nwb, Strategy::Heuristic),
        ) {
            nwb_scores.push(result_f1(&approx, &exact));
        }

        let avg = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        per_collection.push((name.to_string(), avg, scores.len()));
    }

    let avg = |v: &[f64]| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let all: Vec<f64> = enrich_scores
        .iter()
        .chain(link_scores.iter())
        .copied()
        .collect();

    let mut t = Table::new(&["join type", "measured F", "paper F"]);
    t.row(vec!["all".into(), f3(avg(&all)), "0.88".into()]);
    t.row(vec![
        "non-well-behaved".into(),
        f3(avg(&nwb_scores)),
        "0.81".into(),
    ]);
    t.row(vec![
        "enrichment".into(),
        f3(avg(&enrich_scores)),
        "0.89".into(),
    ]);
    t.row(vec!["link".into(), f3(avg(&link_scores)), "0.81".into()]);
    println!("{}", t.render());

    let paper = [0.95, 0.82, 0.84, 0.89, 0.88, 0.90];
    let mut t2 = Table::new(&["data coll.", "measured F", "paper F", "queries"]);
    for ((name, f, n), p) in per_collection.iter().zip(paper) {
        t2.row(vec![name.clone(), f3(*f), format!("{p:.2}"), n.to_string()]);
    }
    println!("{}", t2.render());
}
