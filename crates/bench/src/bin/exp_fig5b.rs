//! **Fig 5(b)**: RExt quality vs the number of extracted attributes
//! `m ∈ {1..4}` on the Movie collection, all six variants.
//!
//! Paper's shape: quality decreases slightly with larger `m`
//! (e.g. 0.94 → 0.88 on Movie) — more attributes, more uncertainty.

use gsj_bench::report::{banner, f3, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, variants, ExpConfig};
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5b");
    let scale = scale_from_env(100);
    banner("Fig 5(b) — RExt quality: vary m (Movie)", "Fig 5(b)");
    println!("scale = {}\n", scale.0);
    let col = collections::build("Movie", scale, 5).unwrap();
    let ms = [1usize, 2, 3];

    let mut t = Table::new(&["variant", "m=1", "m=2", "m=3"]);
    for (name, cfg) in variants() {
        let prep = prepared(&col, cfg);
        let mut cells = vec![name.to_string()];
        for &m in &ms {
            let out = recover_f_measure(
                &col,
                &prep,
                &ExpConfig {
                    m,
                    ..ExpConfig::standard()
                },
            );
            cells.push(f3(out.f.f1));
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("paper shape: mild decrease with m (0.94 → 0.88 on Movie).");
}
