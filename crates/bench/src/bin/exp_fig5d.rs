//! **Fig 5(d)**: RExt extraction efficiency vs cluster count `H` on the
//! Paper collection, all six variants (wall time of pattern discovery +
//! Algorithm-1 extraction).
//!
//! Paper's shape: time grows with `H` (KMC and ranking cost); the Bert
//! variants are the slowest ML methods (RExt ~3× faster than RExtBertEmb);
//! RndPath is fastest of all ("due to its simpler design but lower
//! accuracy").

use gsj_bench::report::{banner, Table};
use gsj_bench::{prepared, recover_f_measure, scale_from_env, variants, ExpConfig};
use gsj_datagen::collections;

fn main() {
    let _obs = gsj_bench::obs_scope("exp_fig5d");
    let scale = scale_from_env(150);
    banner("Fig 5(d) — RExt efficiency: vary H (Paper)", "Fig 5(d)");
    println!("scale = {} (seconds per extraction)\n", scale.0);
    let col = collections::build("Paper", scale, 5).unwrap();
    let hs = [10usize, 20, 30, 40, 50];

    let mut t = Table::new(&["variant", "H=10", "H=20", "H=30", "H=40", "H=50"]);
    let mut rext_mean = 0.0f64;
    let mut bert_emb_mean = 0.0f64;
    let mut bert_seq_mean = 0.0f64;
    for (name, cfg) in variants() {
        let mut prep = prepared(&col, cfg);
        let base = prep.rext.clone();
        let mut cells = vec![name.to_string()];
        let mut sum = 0.0;
        for &h in &hs {
            prep.rext = base.with_h(h);
            let out = recover_f_measure(&col, &prep, &ExpConfig::standard());
            let secs = out.discover_time.as_secs_f64() + out.extract_time.as_secs_f64();
            sum += secs;
            cells.push(format!("{secs:.2}s"));
        }
        match name {
            "RExt" => rext_mean = sum / hs.len() as f64,
            "RExtBertEmb" => bert_emb_mean = sum / hs.len() as f64,
            "RExtBertSeq" => bert_seq_mean = sum / hs.len() as f64,
            _ => {}
        }
        t.row(cells);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    if rext_mean > 0.0 {
        println!(
            "RExt vs RExtBertEmb: {:.2}x faster (paper: 3.03x on MovKB); vs RExtBertSeq: {:.2}x (paper: 1.78x)",
            bert_emb_mean / rext_mean,
            bert_seq_mean / rext_mean
        );
    }
}
