//! # gsj-bench
//!
//! The experiment harness: shared measurement machinery ([`harness`]) plus
//! one binary per table/figure of the paper's Section V (see DESIGN.md §3
//! for the experiment index) and criterion microbenches.

pub mod exps;
pub mod harness;
pub mod obs;
pub mod report;

pub use exps::{engine_for, result_f1, scale_from_env, timed, variants};
pub use harness::{prepared, recover_f_measure, ExpConfig, Prepared, RecoverOutcome};
pub use obs::{dump_trace, init_tracing, obs_scope, trace_snapshot_json, TraceDump};
