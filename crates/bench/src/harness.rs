//! Shared experiment machinery: the drop-and-recover protocol of Exp-2 and
//! timing helpers.

use gsj_core::config::RExtConfig;
use gsj_core::join::enrichment_join_precomputed;
use gsj_core::quality::{f_measure, FMeasure};
use gsj_core::rext::Rext;
use gsj_datagen::Collection;
use gsj_her::noise::inject_mismatches;
use gsj_her::{her_match, MatchRelation};
use std::time::{Duration, Instant};

/// Knobs of one recover run.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// The RExt variant under test.
    pub rext: RExtConfig,
    /// How many of the collection's keywords to recover (`m` in Exp-2);
    /// `0` = all.
    pub m: usize,
    /// Extra user keywords appended to `A` (the `|A|` sweep pads with
    /// sampled attribute *values*, per the paper).
    pub extra_keywords: Vec<String>,
    /// Fraction of clustering noise to inject (Fig 5(f)).
    pub cluster_noise: f64,
    /// Fraction of HER mismatches to inject (Fig 5(g)).
    pub her_eta: f64,
    /// Seed for the noise injections.
    pub noise_seed: u64,
}

impl ExpConfig {
    /// Standard RExt, all keywords, no noise.
    pub fn standard() -> Self {
        ExpConfig {
            rext: RExtConfig::standard(),
            m: 0,
            extra_keywords: Vec::new(),
            cluster_noise: 0.0,
            her_eta: 0.0,
            noise_seed: 7,
        }
    }
}

/// Reusable per-collection state: the trained scheme and HER matches
/// (training is offline; sweeps over `H`/`m`/`k` that do not retrain can
/// share it).
pub struct Prepared {
    /// The trained extraction scheme.
    pub rext: Rext,
    /// `f(S,G)` for the entity relation.
    pub matches: MatchRelation,
    /// Model training + matching wall time.
    pub prep_time: Duration,
}

/// Train RExt and run HER for a collection.
pub fn prepared(col: &Collection, rext_cfg: RExtConfig) -> Prepared {
    let t0 = Instant::now();
    let rext = Rext::train(&col.graph, rext_cfg).expect("valid config");
    let matches =
        her_match(&col.graph, col.entity_relation(), &col.her_config()).expect("id attr exists");
    Prepared {
        rext,
        matches,
        prep_time: t0.elapsed(),
    }
}

/// The outcome of a drop-and-recover run.
#[derive(Debug, Clone)]
pub struct RecoverOutcome {
    /// Extraction quality against the generator's ground truth.
    pub f: FMeasure,
    /// Pattern-discovery wall time.
    pub discover_time: Duration,
    /// Algorithm-1 extraction wall time.
    pub extract_time: Duration,
    /// HER match count.
    pub matched: usize,
}

/// Run the Exp-2 protocol on a prepared collection: discover patterns for
/// the first `m` keywords (plus any extra), extract, join, and score
/// against ground truth.
pub fn recover_f_measure(col: &Collection, prep: &Prepared, exp: &ExpConfig) -> RecoverOutcome {
    let all_kws = col.spec.reference_keywords();
    let m = if exp.m == 0 {
        all_kws.len()
    } else {
        exp.m.min(all_kws.len())
    };
    let mut keywords: Vec<String> = all_kws[..m].to_vec();
    keywords.extend(exp.extra_keywords.iter().cloned());
    // The attribute budget follows the number of dropped columns under
    // recovery (the paper sets m to the number of dropped attributes).
    let rext = prep.rext.with_m(m);

    let matches = if exp.her_eta > 0.0 {
        inject_mismatches(&prep.matches, &col.graph, exp.her_eta, exp.noise_seed)
    } else {
        prep.matches.clone()
    };
    let s = col.entity_relation();
    let id = &col.spec.id_attr;

    let t0 = Instant::now();
    let noise = if exp.cluster_noise > 0.0 {
        Some((exp.cluster_noise, exp.noise_seed))
    } else {
        None
    };
    let discovery = rext
        .discover_with_noise(
            &col.graph,
            &matches,
            Some((s, id)),
            &keywords,
            &format!("h_{}", col.spec.rel_name),
            noise,
        )
        .expect("discovery");
    let discover_time = t0.elapsed();

    let t1 = Instant::now();
    let dg = rext
        .extract(&col.graph, &matches, &discovery)
        .expect("extract");
    let extract_time = t1.elapsed();

    let predicted = enrichment_join_precomputed(s, id, &matches, &dg, None).expect("join");
    let pairs: Vec<(String, String)> = all_kws[..m]
        .iter()
        .filter(|k| predicted.schema().contains(k.as_str()))
        .map(|k| (k.clone(), k.clone()))
        .collect();
    let f = if pairs.is_empty() {
        // Nothing extracted at all: zero quality over the requested cells.
        FMeasure {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            correct: 0,
            predicted: 0,
            expected: col.truth.len() * m,
        }
    } else {
        let mut f = f_measure(&predicted, &col.truth, id, &pairs).expect("measure");
        if pairs.len() < m {
            // Penalize silently-missing attributes: their truth cells
            // count as missed.
            let missing: usize = all_kws[..m]
                .iter()
                .filter(|k| !predicted.schema().contains(k.as_str()))
                .map(|k| {
                    col.truth
                        .column(k)
                        .map(|col| col.iter().filter(|v| !v.is_null()).count())
                        .unwrap_or(0)
                })
                .sum();
            let expected = f.expected + missing;
            let recall = if expected == 0 {
                0.0
            } else {
                f.correct as f64 / expected as f64
            };
            let f1 = if f.precision + recall == 0.0 {
                0.0
            } else {
                2.0 * f.precision * recall / (f.precision + recall)
            };
            f = FMeasure {
                recall,
                f1,
                expected,
                ..f
            };
        }
        f
    };

    RecoverOutcome {
        f,
        discover_time,
        extract_time,
        matched: matches.len(),
    }
}
