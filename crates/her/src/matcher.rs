//! The HER matcher: tuples of a relation against vertices of a graph.

use crate::blocking::BlockIndex;
use crate::match_relation::MatchRelation;
use crate::normalize::{tokens, value_text};
use crate::similarity::{containment, jaccard};
use gsj_common::{FxHashSet, Result};
use gsj_graph::{LabeledGraph, VertexId};
use gsj_relational::Relation;

/// HER parameters.
#[derive(Debug, Clone)]
pub struct HerConfig {
    /// Tuple-id attribute of the input relation (the primary key of
    /// Section II-A).
    pub id_attr: String,
    /// Vicinity radius for blocking/scoring.
    pub hops: usize,
    /// Minimum fraction of non-null attributes that must be found in a
    /// vertex's vicinity to accept the match.
    pub min_score: f64,
    /// Token blocks larger than this are treated as stop words.
    pub max_block: usize,
    /// Token-similarity threshold for a fuzzy attribute hit.
    pub fuzzy_threshold: f64,
}

impl Default for HerConfig {
    fn default() -> Self {
        HerConfig {
            id_attr: "id".into(),
            hops: 1,
            min_score: 0.5,
            max_block: 256,
            fuzzy_threshold: 0.5,
        }
    }
}

impl HerConfig {
    /// Config keyed on a specific id attribute.
    pub fn with_id(id_attr: impl Into<String>) -> Self {
        HerConfig {
            id_attr: id_attr.into(),
            ..HerConfig::default()
        }
    }
}

/// Score one tuple against one vertex vicinity: the fraction of the
/// tuple's non-null, non-id attribute values found in the vicinity either
/// exactly, by token containment, or by token Jaccard above the fuzzy
/// threshold.
fn score_tuple(
    values: &[(String, FxHashSet<String>)],
    vicinity: &FxHashSet<String>,
    vicinity_tokens: &FxHashSet<String>,
    fuzzy: f64,
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for (text, toks) in values {
        if vicinity.contains(text) {
            hits += 1;
            continue;
        }
        if !toks.is_empty() && containment(toks, vicinity_tokens) >= 0.99 {
            hits += 1;
            continue;
        }
        if vicinity.iter().any(|label| {
            let lt: FxHashSet<String> = tokens(label).into_iter().collect();
            jaccard(toks, &lt) >= fuzzy
        }) {
            hits += 1;
        }
    }
    hits as f64 / values.len() as f64
}

/// Compute the match relation `f(S,G)`.
///
/// For each tuple: block on its value tokens, score every candidate
/// vertex's vicinity, and accept the best candidate scoring at least
/// `min_score` (ties broken by lower vertex id, deterministically).
pub fn her_match(g: &LabeledGraph, s: &Relation, cfg: &HerConfig) -> Result<MatchRelation> {
    let index = {
        let mut span = gsj_obs::span("her.block_index");
        let index = BlockIndex::build(g, cfg.hops, cfg.max_block);
        span.field("hops", cfg.hops);
        index
    };
    her_match_indexed(g, s, cfg, &index)
}

/// [`her_match`] over a restricted candidate vertex set: the block index
/// covers only `candidates`. IncExt uses this to re-match tuples against
/// the vertices an update could have affected (plus their previous
/// matches) without re-indexing the whole graph.
pub fn her_match_local(
    g: &LabeledGraph,
    s: &Relation,
    cfg: &HerConfig,
    candidates: impl IntoIterator<Item = VertexId>,
) -> Result<MatchRelation> {
    let index = BlockIndex::build_over(g, candidates, cfg.hops, cfg.max_block);
    her_match_indexed(g, s, cfg, &index)
}

fn her_match_indexed(
    g: &LabeledGraph,
    s: &Relation,
    cfg: &HerConfig,
    index: &BlockIndex,
) -> Result<MatchRelation> {
    static TUPLES: gsj_obs::LazyCounter = gsj_obs::LazyCounter::new("gsj_her_tuples_total");
    static SCORED: gsj_obs::LazyCounter =
        gsj_obs::LazyCounter::new("gsj_her_candidates_scored_total");
    static MATCHED: gsj_obs::LazyCounter = gsj_obs::LazyCounter::new("gsj_her_matched_total");
    let mut span = gsj_obs::span("her.match");
    // Fault site DESIGN.md §11: critical — a failed HER match has no
    // in-stage recovery; the strategy layer above decides whether to
    // degrade to a different join implementation.
    gsj_faults::fault_point("her.match", gsj_faults::FaultClass::Critical)?;
    let mut scored = 0u64;
    let id_pos = s.schema().require(&cfg.id_attr)?;
    let _ = g;
    let mut matches = MatchRelation::new();
    for t in s.tuples() {
        // Normalized attribute values (id excluded — ids are local to D).
        let mut values: Vec<(String, FxHashSet<String>)> = Vec::new();
        let mut query_tokens: Vec<String> = Vec::new();
        for (i, v) in t.values().iter().enumerate() {
            if i == id_pos {
                continue;
            }
            if let Some(text) = value_text(v) {
                let toks: FxHashSet<String> = tokens(&text).into_iter().collect();
                query_tokens.extend(toks.iter().cloned());
                values.push((text, toks));
            }
        }
        if values.is_empty() {
            continue;
        }
        let mut best: Option<(f64, VertexId)> = None;
        for v in index.candidates(&query_tokens) {
            scored += 1;
            let vicinity = &index.vicinity[&v];
            let vicinity_tokens: FxHashSet<String> =
                vicinity.iter().flat_map(|l| tokens(l)).collect();
            let score = score_tuple(&values, vicinity, &vicinity_tokens, cfg.fuzzy_threshold);
            let better = match best {
                None => score >= cfg.min_score,
                Some((bs, bv)) => score > bs || (score == bs && v < bv),
            };
            if better && score >= cfg.min_score {
                best = Some((score, v));
            }
        }
        if let Some((_, v)) = best {
            matches.push(t.get(id_pos).clone(), v);
        }
    }
    TUPLES.add(s.len() as u64);
    SCORED.add(scored);
    MATCHED.add(matches.len() as u64);
    span.field("tuples", s.len())
        .field("scored", scored)
        .field("matched", matches.len());
    Ok(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::Value;
    use gsj_relational::Schema;

    /// The running example: products in D and product vertices in G whose
    /// name/issuer/type live one hop away.
    fn setting() -> (LabeledGraph, Relation, VertexId, VertexId) {
        let mut g = LabeledGraph::new();
        let pid1 = g.add_vertex("pid1");
        for (lab, val) in [("name", "G&L ESG"), ("issue", "G&L"), ("type", "Funds")] {
            let v = g.add_vertex(val);
            g.add_edge(pid1, lab, v);
        }
        let pid2 = g.add_vertex("pid2");
        for (lab, val) in [("name", "Beta"), ("issue", "company1"), ("type", "Stocks")] {
            let v = g.add_vertex(val);
            g.add_edge(pid2, lab, v);
        }
        let mut s = Relation::empty(Schema::of("product", &["pid", "name", "issuer", "type"]));
        s.push_values(vec![
            Value::str("fd1"),
            Value::str("G&L ESG"),
            Value::str("G&L"),
            Value::str("Funds"),
        ])
        .unwrap();
        s.push_values(vec![
            Value::str("fd2"),
            Value::str("Beta"),
            Value::str("company1"),
            Value::str("Stocks"),
        ])
        .unwrap();
        (g, s, pid1, pid2)
    }

    #[test]
    fn matches_products_to_vertices() {
        let (g, s, pid1, pid2) = setting();
        let m = her_match(&g, &s, &HerConfig::with_id("pid")).unwrap();
        assert_eq!(m.vertex_of(&Value::str("fd1")), Some(pid1));
        assert_eq!(m.vertex_of(&Value::str("fd2")), Some(pid2));
    }

    #[test]
    fn unmatched_tuple_is_absent() {
        let (g, mut s, _, _) = setting();
        s.push_values(vec![
            Value::str("fd9"),
            Value::str("Nonexistent Fund"),
            Value::str("Nobody"),
            Value::str("Mystery"),
        ])
        .unwrap();
        let m = her_match(&g, &s, &HerConfig::with_id("pid")).unwrap();
        assert_eq!(m.vertex_of(&Value::str("fd9")), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn all_null_tuple_is_skipped() {
        let (g, mut s, _, _) = setting();
        s.push_values(vec![
            Value::str("fdx"),
            Value::Null,
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        let m = her_match(&g, &s, &HerConfig::with_id("pid")).unwrap();
        assert_eq!(m.vertex_of(&Value::str("fdx")), None);
    }

    #[test]
    fn min_score_gates_partial_matches() {
        let (g, _, _, _) = setting();
        let mut s = Relation::empty(Schema::of("product", &["pid", "name", "issuer", "type"]));
        // Only one of three attributes matches pid1's vicinity.
        s.push_values(vec![
            Value::str("fdz"),
            Value::str("G&L ESG"),
            Value::str("Wrong Issuer"),
            Value::str("Wrong Type"),
        ])
        .unwrap();
        let strict = HerConfig {
            min_score: 0.9,
            ..HerConfig::with_id("pid")
        };
        assert!(her_match(&g, &s, &strict).unwrap().is_empty());
        let lenient = HerConfig {
            min_score: 0.3,
            ..HerConfig::with_id("pid")
        };
        assert_eq!(her_match(&g, &s, &lenient).unwrap().len(), 1);
    }

    #[test]
    fn missing_id_attr_is_an_error() {
        let (g, s, _, _) = setting();
        let bad = HerConfig::with_id("nope");
        assert!(her_match(&g, &s, &bad).is_err());
    }
}
