//! Controlled corruption of a match relation.
//!
//! Exp-2(c) studies the cascading error from HER by injecting a fraction
//! `η` of mismatches into `f(S,G)` and measuring the extraction F-measure
//! (Fig 5(g)). This module performs exactly that perturbation.

use crate::match_relation::MatchRelation;
use gsj_graph::{LabeledGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Replace a fraction `eta` of the matched vertices with uniformly random
/// *wrong* live vertices. Deterministic per seed. `eta` is clamped to
/// `[0, 1]`.
pub fn inject_mismatches(
    matches: &MatchRelation,
    g: &LabeledGraph,
    eta: f64,
    seed: u64,
) -> MatchRelation {
    let eta = eta.clamp(0.0, 1.0);
    let vertices: Vec<VertexId> = g.vertices().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs: Vec<(gsj_common::Value, VertexId)> = matches.pairs().to_vec();
    let n_corrupt = ((pairs.len() as f64) * eta).round() as usize;
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.shuffle(&mut rng);
    for &i in order.iter().take(n_corrupt) {
        if vertices.len() < 2 {
            break;
        }
        loop {
            let wrong = vertices[rng.random_range(0..vertices.len())];
            if wrong != pairs[i].1 {
                pairs[i].1 = wrong;
                break;
            }
        }
    }
    MatchRelation::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::Value;

    fn setting() -> (LabeledGraph, MatchRelation) {
        let mut g = LabeledGraph::new();
        let vs: Vec<VertexId> = (0..10).map(|i| g.add_vertex(&format!("v{i}"))).collect();
        let mut m = MatchRelation::new();
        for (i, v) in vs.iter().enumerate().take(8) {
            m.push(Value::Int(i as i64), *v);
        }
        (g, m)
    }

    #[test]
    fn eta_zero_is_identity() {
        let (g, m) = setting();
        let out = inject_mismatches(&m, &g, 0.0, 1);
        assert_eq!(out.pairs(), m.pairs());
    }

    #[test]
    fn eta_one_corrupts_everything() {
        let (g, m) = setting();
        let out = inject_mismatches(&m, &g, 1.0, 1);
        let changed = m
            .pairs()
            .iter()
            .zip(out.pairs())
            .filter(|(a, b)| a.1 != b.1)
            .count();
        assert_eq!(changed, m.len());
    }

    #[test]
    fn fraction_is_respected() {
        let (g, m) = setting();
        let out = inject_mismatches(&m, &g, 0.25, 7);
        let changed = m
            .pairs()
            .iter()
            .zip(out.pairs())
            .filter(|(a, b)| a.1 != b.1)
            .count();
        assert_eq!(changed, 2); // 25% of 8
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, m) = setting();
        let a = inject_mismatches(&m, &g, 0.5, 42);
        let b = inject_mismatches(&m, &g, 0.5, 42);
        assert_eq!(a.pairs(), b.pairs());
    }
}
