//! String normalization shared by blocking and similarity.

use gsj_common::Value;

/// Lower-cased alphanumeric tokens of a string.
pub fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Canonical form: tokens joined by a single space.
pub fn canonical(s: &str) -> String {
    tokens(s).join(" ")
}

/// Normalized rendering of a value (numbers via Display, strings via
/// [`canonical`]); `None` for NULL.
pub fn value_text(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Str(s) => Some(canonical(s)),
        other => Some(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenization_drops_punctuation_and_case() {
        assert_eq!(tokens("G&L ESG"), vec!["g", "l", "esg"]);
        assert_eq!(tokens("  "), Vec::<String>::new());
        assert_eq!(canonical("Based_On"), "based on");
    }

    #[test]
    fn value_text_handles_types() {
        assert_eq!(value_text(&Value::Null), None);
        assert_eq!(value_text(&Value::Int(42)), Some("42".into()));
        assert_eq!(value_text(&Value::str("Bob X.")), Some("bob x".into()));
    }
}
