//! The match relation `f(S,G)` of schema `Rm(tid, vid)`.

use gsj_common::{FxHashMap, Value};
use gsj_graph::VertexId;
use gsj_relational::{Relation, Schema};

/// The HER output: pairs `(t.id, v.id)` meaning tuple `t` and vertex `v`
/// refer to the same entity (Section II-B).
#[derive(Debug, Clone, Default)]
pub struct MatchRelation {
    pairs: Vec<(Value, VertexId)>,
    by_tid: FxHashMap<Value, VertexId>,
}

impl MatchRelation {
    /// Empty match relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs. Later pairs for the same tuple id override earlier
    /// ones in the by-tid index (but all pairs are kept in `pairs`).
    pub fn from_pairs(pairs: Vec<(Value, VertexId)>) -> Self {
        let by_tid = pairs.iter().cloned().collect();
        MatchRelation { pairs, by_tid }
    }

    /// Add a match.
    pub fn push(&mut self, tid: Value, vid: VertexId) {
        self.by_tid.insert(tid.clone(), vid);
        self.pairs.push((tid, vid));
    }

    /// All pairs.
    pub fn pairs(&self) -> &[(Value, VertexId)] {
        &self.pairs
    }

    /// The vertex matched to a tuple id, if any.
    pub fn vertex_of(&self, tid: &Value) -> Option<VertexId> {
        self.by_tid.get(tid).copied()
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no matches.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// All matched vertices (with duplicates preserved).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.pairs.iter().map(|&(_, v)| v)
    }

    /// Materialize as a relation of schema `Rm(tid, vid)` — the form in
    /// which `f(D,G)` is stored inside the RDBMS for static joins
    /// (Section IV-A). The `tid` column name is configurable so it can
    /// natural-join with the base relation's id attribute.
    pub fn to_relation(&self, name: &str, tid_attr: &str) -> Relation {
        let schema = Schema::of(name, &[tid_attr, "vid"]);
        let mut rel = Relation::empty(schema);
        for (tid, vid) in &self.pairs {
            rel.push_values(vec![tid.clone(), Value::Int(vid.0 as i64)])
                .expect("arity 2");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut m = MatchRelation::new();
        m.push(Value::str("fd1"), VertexId(3));
        m.push(Value::str("fd2"), VertexId(9));
        assert_eq!(m.len(), 2);
        assert_eq!(m.vertex_of(&Value::str("fd1")), Some(VertexId(3)));
        assert_eq!(m.vertex_of(&Value::str("zzz")), None);
    }

    #[test]
    fn to_relation_has_rm_schema() {
        let m = MatchRelation::from_pairs(vec![(Value::str("fd1"), VertexId(3))]);
        let r = m.to_relation("f_product", "pid");
        assert_eq!(r.schema().attrs(), &["pid".to_string(), "vid".to_string()]);
        assert_eq!(r.tuples()[0].get(1), &Value::Int(3));
    }

    #[test]
    fn later_pair_overrides_index() {
        let m = MatchRelation::from_pairs(vec![
            (Value::str("a"), VertexId(1)),
            (Value::str("a"), VertexId(2)),
        ]);
        assert_eq!(m.vertex_of(&Value::str("a")), Some(VertexId(2)));
        assert_eq!(m.len(), 2);
    }
}
