//! Set and string similarity measures.

use gsj_common::FxHashSet;

/// Jaccard similarity of two token sets.
pub fn jaccard(a: &FxHashSet<String>, b: &FxHashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard over slices (convenience; builds sets).
pub fn jaccard_slices(a: &[String], b: &[String]) -> f64 {
    let sa: FxHashSet<String> = a.iter().cloned().collect();
    let sb: FxHashSet<String> = b.iter().cloned().collect();
    jaccard(&sa, &sb)
}

/// Containment: |a ∩ b| / |a| — how much of `a` is covered by `b`.
/// Useful when a tuple value is a fragment of a longer vertex label.
pub fn containment(a: &FxHashSet<String>, b: &FxHashSet<String>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> FxHashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&["a", "b"]), &set(&["a", "b"])), 1.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
        assert!((jaccard(&set(&["a", "b"]), &set(&["b", "c"])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
    }

    #[test]
    fn containment_is_asymmetric() {
        let a = set(&["g", "l"]);
        let b = set(&["g", "l", "esg"]);
        assert_eq!(containment(&a, &b), 1.0);
        assert!((containment(&b, &a) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(containment(&set(&[]), &b), 0.0);
    }

    #[test]
    fn slice_helper_agrees() {
        assert_eq!(
            jaccard_slices(&["x".into(), "y".into()], &["y".into(), "x".into()]),
            1.0
        );
    }
}
