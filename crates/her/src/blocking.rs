//! Schema-agnostic token blocking over vertex vicinities.
//!
//! For every live vertex we collect its *vicinity*: the normalized strings
//! of its own label and the labels of vertices within `hops` undirected
//! hops (properties of an entity live at the end of short paths, not on
//! the entity vertex itself — the very observation motivating RExt). Each
//! vicinity token indexes the vertex, and a tuple's candidate set is the
//! union of the blocks of its value tokens, with oversized blocks (stop
//! words) dropped.

use crate::normalize::tokens;
use gsj_common::{FxHashMap, FxHashSet};
use gsj_graph::traversal::k_hop_set;
use gsj_graph::{LabeledGraph, VertexId};

/// Per-vertex vicinity text plus the token → vertices index.
pub struct BlockIndex {
    /// vertex → normalized vicinity labels.
    pub vicinity: FxHashMap<VertexId, FxHashSet<String>>,
    /// token → vertices whose vicinity contains it.
    blocks: FxHashMap<String, Vec<VertexId>>,
    /// Blocks bigger than this are considered stop words.
    max_block: usize,
}

impl BlockIndex {
    /// Build the index over all live vertices.
    pub fn build(g: &LabeledGraph, hops: usize, max_block: usize) -> Self {
        Self::build_over(g, g.vertices(), hops, max_block)
    }

    /// Build the index over a restricted candidate set — the incremental
    /// matching path of IncExt only considers vertices whose vicinity an
    /// update could have changed.
    pub fn build_over(
        g: &LabeledGraph,
        candidates: impl IntoIterator<Item = VertexId>,
        hops: usize,
        max_block: usize,
    ) -> Self {
        let mut vicinity: FxHashMap<VertexId, FxHashSet<String>> = FxHashMap::default();
        let mut blocks: FxHashMap<String, Vec<VertexId>> = FxHashMap::default();
        for v in candidates {
            if !g.is_live(v) {
                continue;
            }
            let mut labels: FxHashSet<String> = FxHashSet::default();
            for u in k_hop_set(g, v, hops) {
                let label = g.vertex_label_str(u);
                labels.insert(crate::normalize::canonical(&label));
            }
            let mut toks: FxHashSet<String> = FxHashSet::default();
            for l in &labels {
                toks.extend(tokens(l));
            }
            for t in toks {
                blocks.entry(t).or_default().push(v);
            }
            vicinity.insert(v, labels);
        }
        BlockIndex {
            vicinity,
            blocks,
            max_block,
        }
    }

    /// Candidate vertices for a bag of query tokens.
    pub fn candidates(&self, query_tokens: &[String]) -> Vec<VertexId> {
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        let mut out = Vec::new();
        for t in query_tokens {
            if let Some(vs) = self.blocks.get(t) {
                if vs.len() > self.max_block {
                    continue; // stop word
                }
                for &v in vs {
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Number of distinct tokens indexed.
    pub fn token_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fintech() -> (LabeledGraph, VertexId, VertexId) {
        // pid1 --name--> "G&L ESG", pid1 --issue--> "G&L"
        let mut g = LabeledGraph::new();
        let pid1 = g.add_vertex("pid1");
        let name = g.add_vertex("G&L ESG");
        let issuer = g.add_vertex("G&L");
        g.add_edge(pid1, "name", name);
        g.add_edge(pid1, "issue", issuer);
        let pid2 = g.add_vertex("pid2");
        let name2 = g.add_vertex("Beta");
        g.add_edge(pid2, "name", name2);
        (g, pid1, pid2)
    }

    #[test]
    fn vicinity_includes_neighbors() {
        let (g, pid1, _) = fintech();
        let idx = BlockIndex::build(&g, 1, 100);
        let vic = &idx.vicinity[&pid1];
        assert!(vic.contains("g l esg"));
        assert!(vic.contains("pid1"));
    }

    #[test]
    fn candidates_found_via_property_tokens() {
        let (g, pid1, pid2) = fintech();
        let idx = BlockIndex::build(&g, 1, 100);
        let cands = idx.candidates(&["esg".to_string()]);
        assert!(cands.contains(&pid1));
        assert!(!cands.contains(&pid2));
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let mut g = LabeledGraph::new();
        for i in 0..10 {
            g.add_vertex(&format!("common thing {i}"));
        }
        let idx = BlockIndex::build(&g, 0, 5);
        // "common" appears in 10 vicinities > max_block 5: stop word.
        assert!(idx.candidates(&["common".to_string()]).is_empty());
        // A rare token ("3" from "common thing 3") still finds its vertex.
        assert_eq!(idx.candidates(&["3".to_string()]).len(), 1);
    }

    #[test]
    fn zero_hop_vicinity_is_own_label() {
        let (g, pid1, _) = fintech();
        let idx = BlockIndex::build(&g, 0, 100);
        let vic = &idx.vicinity[&pid1];
        assert_eq!(vic.len(), 1);
        assert!(vic.contains("pid1"));
    }
}
