//! Tuple-vs-tuple entity resolution — the ER join condition of *heuristic
//! joins* (Section IV-B step 2): match the sub-query result `S` against an
//! extracted typed relation `gτ(G)` with "a simple UDF as the join
//! condition ... to check whether t ∈ S and t' ∈ gτ(G) make a match".

use crate::normalize::{tokens, value_text};
use crate::similarity::jaccard;
use gsj_common::{FxHashMap, FxHashSet, Result};
use gsj_relational::Relation;

/// Pairwise tuple-ER parameters.
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Minimum Jaccard over pooled value tokens to declare a match.
    pub threshold: f64,
    /// Blocks bigger than this are stop words.
    pub max_block: usize,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            threshold: 0.25,
            max_block: 512,
        }
    }
}

fn tuple_tokens(rel: &Relation, row: usize, skip: Option<usize>) -> FxHashSet<String> {
    rel.tuples()[row]
        .values()
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != skip)
        .filter_map(|(_, v)| value_text(v))
        .flat_map(|t| tokens(&t).into_iter().collect::<Vec<_>>())
        .collect()
}

/// Match rows of `a` against rows of `b` by pooled-token Jaccard, with
/// token blocking on `b`. Returns `(row_a, row_b)` index pairs; each row of
/// `a` matches at most its best row of `b` (ties → lower index).
///
/// `skip_a` / `skip_b` optionally exclude an id column (ids are local
/// surrogates and must not influence ER).
pub fn match_relations(
    a: &Relation,
    b: &Relation,
    skip_a: Option<&str>,
    skip_b: Option<&str>,
    cfg: &ErConfig,
) -> Result<Vec<(usize, usize)>> {
    let skip_a = match skip_a {
        Some(attr) => Some(a.schema().require(attr)?),
        None => None,
    };
    let skip_b = match skip_b {
        Some(attr) => Some(b.schema().require(attr)?),
        None => None,
    };
    // Index b by token.
    let mut blocks: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    let mut b_tokens: Vec<FxHashSet<String>> = Vec::with_capacity(b.len());
    for j in 0..b.len() {
        let toks = tuple_tokens(b, j, skip_b);
        for t in &toks {
            blocks.entry(t.clone()).or_default().push(j);
        }
        b_tokens.push(toks);
    }
    let mut out = Vec::new();
    for i in 0..a.len() {
        let toks = tuple_tokens(a, i, skip_a);
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        let mut best: Option<(f64, usize)> = None;
        for t in &toks {
            let Some(rows) = blocks.get(t) else { continue };
            if rows.len() > cfg.max_block {
                continue;
            }
            for &j in rows {
                if !seen.insert(j) {
                    continue;
                }
                let sim = jaccard(&toks, &b_tokens[j]);
                if sim >= cfg.threshold {
                    let better = match best {
                        None => true,
                        Some((bs, bj)) => sim > bs || (sim == bs && j < bj),
                    };
                    if better {
                        best = Some((sim, j));
                    }
                }
            }
        }
        if let Some((_, j)) = best {
            out.push((i, j));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::Value;
    use gsj_relational::Schema;

    fn rel(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::empty(Schema::of(name, attrs));
        for row in rows {
            r.push_values(row.iter().map(|s| Value::str(*s)).collect())
                .unwrap();
        }
        r
    }

    #[test]
    fn matches_same_entity_across_relations() {
        let a = rel(
            "s",
            &["pid", "name", "risk"],
            &[&["fd4", "RainForest", "medium"], &["fd2", "Beta", "high"]],
        );
        let b = rel(
            "g_product",
            &["vid", "name", "company"],
            &[
                &["pid4", "RainForest", "company2"],
                &["pid2", "Beta", "company1"],
            ],
        );
        let pairs =
            match_relations(&a, &b, Some("pid"), Some("vid"), &ErConfig::default()).unwrap();
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 1)));
    }

    #[test]
    fn no_match_below_threshold() {
        let a = rel("s", &["pid", "name"], &[&["x", "Alpha One"]]);
        let b = rel("g", &["vid", "name"], &[&["y", "Totally Different"]]);
        let pairs =
            match_relations(&a, &b, Some("pid"), Some("vid"), &ErConfig::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn id_columns_are_ignored() {
        // Identical ids but disjoint content must NOT match.
        let a = rel("s", &["pid", "name"], &[&["same-id", "Alpha"]]);
        let b = rel("g", &["vid", "name"], &[&["same-id", "Omega"]]);
        let pairs =
            match_relations(&a, &b, Some("pid"), Some("vid"), &ErConfig::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn each_left_row_matches_best_right_row() {
        let a = rel("s", &["pid", "name"], &[&["1", "Rain Forest Fund"]]);
        let b = rel(
            "g",
            &["vid", "name"],
            &[&["a", "Rain"], &["b", "Rain Forest Fund"]],
        );
        let pairs =
            match_relations(&a, &b, Some("pid"), Some("vid"), &ErConfig::default()).unwrap();
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
