//! # gsj-her
//!
//! Heterogeneous Entity Resolution: the `HER` function of Section II-B,
//! which given a graph `G` and a set `S` of tuples computes the match
//! relation `f(S,G) = {(t, v) | t ⇒ v}` — pairs referring to the same
//! real-world entity.
//!
//! The paper plugs in existing systems (JedAI, parametric simulation,
//! MAGNN, EMBLOOKUP); this crate implements a rule-based matcher in the
//! JedAI spirit:
//!
//! 1. [`normalize`]: lower-cased token sets of attribute values and labels;
//! 2. [`blocking`]: schema-agnostic token blocking from vertex *vicinities*
//!    (own label + neighbor labels within a hop bound) — a tuple's
//!    candidates are the union of its tokens' blocks;
//! 3. [`matcher`]: scoring by the fraction of tuple attributes whose value
//!    is found (exactly or by token-Jaccard) in the candidate's vicinity,
//!    with an acceptance threshold.
//!
//! [`noise`] deliberately corrupts a match relation to study cascading HER
//! error (Exp-2(c), Fig 5(g)); [`relation_er`] is the tuple-vs-tuple ER
//! used as the join condition of *heuristic joins* (Section IV-B).

pub mod blocking;
pub mod match_relation;
pub mod matcher;
pub mod noise;
pub mod normalize;
pub mod relation_er;
pub mod similarity;

pub use match_relation::MatchRelation;
pub use matcher::{her_match, her_match_local, HerConfig};
