//! Clustering quality metrics (used by tests and the Fig 5(f) noise
//! experiment).

use gsj_common::FxHashMap;

/// Cluster purity against ground-truth labels: the fraction of points whose
/// cluster's majority ground-truth class matches their own. 1.0 = perfect.
pub fn purity(assignments: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(assignments.len(), truth.len());
    if assignments.is_empty() {
        return 1.0;
    }
    let mut per_cluster: FxHashMap<usize, FxHashMap<usize, usize>> = FxHashMap::default();
    for (&a, &t) in assignments.iter().zip(truth) {
        *per_cluster.entry(a).or_default().entry(t).or_insert(0) += 1;
    }
    let majority_total: usize = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    majority_total as f64 / assignments.len() as f64
}

/// Sum of squared distances of each point to its assigned centroid.
pub fn inertia(points: &[Vec<f32>], centroids: &[Vec<f32>], assignments: &[usize]) -> f64 {
    points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| gsj_nn::vector::sq_dist(p, &centroids[a]) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_has_purity_one() {
        assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
    }

    #[test]
    fn mixed_cluster_reduces_purity() {
        // Cluster 0 holds classes {a, a, b}: majority 2 of 3.
        let p = purity(&[0, 0, 0, 1], &[0, 0, 1, 1]);
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_is_perfect() {
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn inertia_matches_manual() {
        let points = vec![vec![0.0], vec![2.0]];
        let centroids = vec![vec![1.0]];
        let i = inertia(&points, &centroids, &[0, 0]);
        assert!((i - 2.0).abs() < 1e-9);
    }
}
