//! Lloyd's algorithm with parallel assignment.

use crate::init::kmeanspp;
use gsj_nn::vector::sq_dist;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// K-means parameters. The paper runs KMC "with limited iterations"
/// (Section III-A), hence the explicit `max_iters`.
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    /// Number of clusters `H`.
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence tolerance on relative inertia improvement.
    pub tol: f64,
    /// Worker threads for the assignment step; `0` = available
    /// parallelism.
    pub threads: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 8,
            max_iters: 20,
            tol: 1e-4,
            threads: 0,
            seed: 0xc1_05_7e,
        }
    }
}

/// The result of a K-means run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `assignments[i]` = cluster of point `i`.
    pub assignments: Vec<usize>,
    /// Final centroids (≤ `k`, exactly `k` when enough distinct points).
    pub centroids: Vec<Vec<f32>>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

impl Clustering {
    /// Group point indices per cluster.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.centroids.len()];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

fn assign_chunk(points: &[Vec<f32>], centroids: &[Vec<f32>], out: &mut [usize]) -> f64 {
    let mut inertia = 0.0f64;
    for (p, slot) in points.iter().zip(out.iter_mut()) {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = sq_dist(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *slot = best;
        inertia += best_d as f64;
    }
    inertia
}

/// Run K-means over `points`.
///
/// Deterministic for a fixed `cfg.seed` regardless of thread count: the
/// assignment step is embarrassingly parallel and the reduction order does
/// not affect assignments.
pub fn kmeans(points: &[Vec<f32>], cfg: &KmeansConfig) -> Clustering {
    let mut span = gsj_obs::span("cluster.kmeans");
    span.field("points", points.len()).field("k", cfg.k);
    if points.is_empty() || cfg.k == 0 {
        return Clustering {
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let dim = points[0].len();
    debug_assert!(points.iter().all(|p| p.len() == dim));
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut centroids = kmeanspp(points, cfg.k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    let mut prev_inertia = f64::INFINITY;
    let mut iterations = 0usize;
    let mut inertia = 0.0f64;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // Assignment step (parallel).
        inertia = if threads > 1 && points.len() >= 4 * threads {
            let chunk = points.len().div_ceil(threads);
            let point_chunks: Vec<&[Vec<f32>]> = points.chunks(chunk).collect();
            let mut assign_chunks: Vec<&mut [usize]> = assignments.chunks_mut(chunk).collect();
            let centroids_ref = &centroids;
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::new();
                for (pts, asg) in point_chunks.into_iter().zip(assign_chunks.drain(..)) {
                    handles.push(s.spawn(move |_| assign_chunk(pts, centroids_ref, asg)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("kmeans worker panicked"))
                    .sum()
            })
            .expect("kmeans scope panicked")
        } else {
            assign_chunk(points, &centroids, &mut assignments)
        };

        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            gsj_nn::vector::add_assign(&mut sums[a], p);
            counts[a] += 1;
        }
        for (c, (sum, &count)) in sums.iter_mut().zip(&counts).enumerate() {
            if count > 0 {
                gsj_nn::vector::scale(sum, 1.0 / count as f32);
                centroids[c] = sum.clone();
            }
            // Empty clusters keep their old centroid; they may re-acquire
            // points in a later iteration.
        }

        if prev_inertia.is_finite() {
            let improvement = (prev_inertia - inertia) / prev_inertia.max(1e-12);
            if improvement >= 0.0 && improvement < cfg.tol {
                break;
            }
        }
        prev_inertia = inertia;
    }

    span.field("iterations", iterations);
    Clustering {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        let mut points = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f32 * 0.01;
            points.push(vec![0.0 + jitter, 0.0]);
            points.push(vec![10.0 + jitter, 10.0]);
            points.push(vec![-10.0 - jitter, 10.0]);
        }
        points
    }

    #[test]
    fn separates_clear_blobs() {
        let points = blobs();
        let c = kmeans(
            &points,
            &KmeansConfig {
                k: 3,
                ..KmeansConfig::default()
            },
        );
        // Points generated in stride-3 order: all of stride class 0 must
        // share a cluster, etc.
        for class in 0..3 {
            let first = c.assignments[class];
            for i in (class..points.len()).step_by(3) {
                assert_eq!(c.assignments[i], first, "point {i}");
            }
        }
        // And the three classes land in three distinct clusters.
        let mut distinct: Vec<usize> = c.assignments[0..3].to_vec();
        distinct.dedup();
        assert_eq!(
            {
                let mut d = c.assignments[0..3].to_vec();
                d.sort();
                d.dedup();
                d.len()
            },
            3
        );
        let _ = distinct;
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let points = blobs();
        let base = KmeansConfig {
            k: 3,
            ..KmeansConfig::default()
        };
        let serial = kmeans(
            &points,
            &KmeansConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let parallel = kmeans(&points, &KmeansConfig { threads: 4, ..base });
        assert_eq!(serial.assignments, parallel.assignments);
        assert!((serial.inertia - parallel.inertia).abs() < 1e-6);
    }

    #[test]
    fn inertia_is_monotone_nonincreasing_with_iterations() {
        let points = blobs();
        let one = kmeans(
            &points,
            &KmeansConfig {
                k: 3,
                max_iters: 1,
                tol: 0.0,
                ..KmeansConfig::default()
            },
        );
        let many = kmeans(
            &points,
            &KmeansConfig {
                k: 3,
                max_iters: 15,
                tol: 0.0,
                ..KmeansConfig::default()
            },
        );
        assert!(many.inertia <= one.inertia + 1e-9);
    }

    #[test]
    fn respects_iteration_cap() {
        let points = blobs();
        let c = kmeans(
            &points,
            &KmeansConfig {
                k: 3,
                max_iters: 2,
                tol: 0.0,
                ..KmeansConfig::default()
            },
        );
        assert!(c.iterations <= 2);
    }

    #[test]
    fn k_larger_than_points_is_safe() {
        let points = vec![vec![1.0], vec![2.0]];
        let c = kmeans(
            &points,
            &KmeansConfig {
                k: 9,
                ..KmeansConfig::default()
            },
        );
        assert_eq!(c.centroids.len(), 2);
        assert_eq!(c.assignments.len(), 2);
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let c = kmeans(&[], &KmeansConfig::default());
        assert!(c.assignments.is_empty() && c.centroids.is_empty());
    }

    #[test]
    fn groups_partition_the_points() {
        let points = blobs();
        let c = kmeans(
            &points,
            &KmeansConfig {
                k: 3,
                ..KmeansConfig::default()
            },
        );
        let groups = c.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, points.len());
    }
}
