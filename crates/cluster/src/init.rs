//! k-means++ centroid seeding.

use gsj_nn::vector::sq_dist;
use rand::rngs::SmallRng;
use rand::RngExt;

/// Choose `k` initial centroids with the k-means++ D² weighting:
/// the first uniformly, each next with probability proportional to the
/// squared distance to the nearest already-chosen centroid.
///
/// Returns fewer than `k` centroids only if `points.len() < k`.
pub fn kmeanspp(points: &[Vec<f32>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f32>> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(points.len());
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut d2: Vec<f32> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().map(|&d| d as f64).sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; fall back to
            // uniform choice so we still return k centroids.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        let newest = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, newest));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn returns_k_centroids() {
        let points: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 0.0]).collect();
        let c = kmeanspp(&points, 4, &mut rng());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn caps_at_point_count() {
        let points = vec![vec![0.0], vec![1.0]];
        assert_eq!(kmeanspp(&points, 10, &mut rng()).len(), 2);
    }

    #[test]
    fn spreads_over_separated_blobs() {
        // Two far-apart blobs: with D² weighting the two centroids all but
        // surely land in different blobs.
        let mut points = Vec::new();
        for i in 0..50 {
            points.push(vec![i as f32 * 0.01, 0.0]);
            points.push(vec![1000.0 + i as f32 * 0.01, 0.0]);
        }
        let c = kmeanspp(&points, 2, &mut rng());
        let near_zero = c.iter().filter(|v| v[0] < 500.0).count();
        assert_eq!(near_zero, 1, "centroids: {c:?}");
    }

    #[test]
    fn degenerate_identical_points() {
        let points = vec![vec![5.0, 5.0]; 8];
        let c = kmeanspp(&points, 3, &mut rng());
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|v| v == &vec![5.0, 5.0]));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(kmeanspp(&[], 3, &mut rng()).is_empty());
    }
}
