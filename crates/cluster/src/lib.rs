//! # gsj-cluster
//!
//! K-means clustering (KMC) — the unsupervised grouping step of RExt's
//! pattern discovery (Section III-A step 2). The paper picks K-means
//! because "it can be efficiently parallelized and often achieves excellent
//! quality in practice"; this crate provides exactly that: k-means++
//! seeding and Lloyd iterations whose assignment step is parallelized with
//! crossbeam scoped threads (the stand-in for the paper's 10-machine
//! parallel KMC).

pub mod init;
pub mod kmeans;
pub mod metrics;

pub use kmeans::{kmeans, Clustering, KmeansConfig};
