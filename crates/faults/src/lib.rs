//! # gsj-faults
//!
//! Deterministic fault injection for the semantic-join engine
//! (DESIGN.md §11). Execution stages that already carry a `gsj-obs` span
//! also carry a *fault point*: a named site where an error, a panic or a
//! delay can be injected under test. Sites are named after their span
//! labels (`her.match`, `graph.bfs`, `gsql.ejoin`, `incext.re_extract`,
//! ...) so a chaos run's injections line up with its trace.
//!
//! ## Enabling
//!
//! Injection is **off** unless a spec is installed — via the `GSJ_FAULTS`
//! environment variable at first use, or [`set_spec`] from tests. The
//! disabled hot path is one relaxed atomic load; no site bookkeeping
//! happens until a spec is active.
//!
//! ## Spec grammar
//!
//! A spec is `;`-separated clauses, each `target:opt,opt,...`:
//!
//! ```text
//! GSJ_FAULTS="all:p=0.05,seed=42"             # 5% errors at recoverable sites
//! GSJ_FAULTS="graph.bfs:error,p=0.5,seed=7"   # 50% errors in BFS only
//! GSJ_FAULTS="gsql.ejoin:panic,after=2"       # panic on the 3rd e-join
//! GSJ_FAULTS="her.match:delay=25ms"           # slow HER down
//! GSJ_FAULTS="all+critical:record"            # register sites, inject nothing
//! ```
//!
//! * `target` — exact site name, `all` (recoverable sites only), or
//!   `all+critical` (every site). An exact clause overrides `all`.
//! * action — `error` (default; [`GsjError::Internal`]), `panic`,
//!   `delay=<N>ms`, or `record` (count hits, inject nothing).
//! * `p=<f>` — injection probability per hit (default 1.0).
//! * `after=<n>` — skip the first `n` hits of the site (default 0).
//! * `seed=<u>` — seed for the decision stream (default 0).
//!
//! ## Determinism
//!
//! Whether hit *k* of site *s* injects is a pure function of
//! `(seed, s, k)` — a splitmix64 mix, no global RNG state — so a failing
//! chaos run replays exactly from its seed, regardless of what other
//! sites did in between. (Across threads, which query performs hit *k*
//! can vary with interleaving; the *decision sequence* per site cannot.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};
use std::time::Duration;

use gsj_common::{FxHashMap, GsjError, Result};
use gsj_obs::metrics::LazyCounter;
use parking_lot::RwLock;

/// Total injections performed, across all sites and actions.
static INJECTED_TOTAL: LazyCounter = LazyCounter::new("gsj_faults_injected_total");

/// Fast-path switch mirroring "a spec is installed".
static ENABLED: AtomicBool = AtomicBool::new(false);

/// How a site failing relates to query survival.
///
/// * `Recoverable` sites sit under a fallback chain or a retry loop:
///   an injected error degrades the strategy or re-runs the batch, and
///   the query still completes. The `all` target matches only these, so
///   a blanket low-probability chaos run (CI's `all:p=0.05`) leaves
///   every test green.
/// * `Critical` sites have no recovery story above them; injecting there
///   fails the query with a typed error. Reached via `all+critical` or
///   by naming the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    Recoverable,
    Critical,
}

/// What to do when the decision stream says "inject".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return `GsjError::Internal` from the fault point.
    Error,
    /// Panic (exercises `catch_unwind` boundaries).
    Panic,
    /// Sleep, then continue normally.
    Delay(Duration),
    /// Count the hit, inject nothing. Used to discover sites.
    Record,
}

/// One parsed `target:opts` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClause {
    pub target: FaultTarget,
    pub action: FaultAction,
    /// Probability numerator out of [`P_DENOM`].
    pub p_num: u64,
    pub after: u64,
    pub seed: u64,
}

/// Probability is stored as a fixed-point numerator so clause parsing,
/// equality and the decision function stay float-free.
pub const P_DENOM: u64 = 1 << 32;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// All `Recoverable` sites.
    AllRecoverable,
    /// Every site regardless of class.
    AllCritical,
    /// One exact site name.
    Site(String),
}

/// A full parsed spec: ordered clauses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSpec {
    pub clauses: Vec<FaultClause>,
}

impl FaultSpec {
    /// Parse the `GSJ_FAULTS` grammar. Empty/whitespace input is an
    /// empty spec (injection disabled).
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        let mut clauses = Vec::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultSpec { clauses })
    }

    /// The clause governing `site`, if any: the last exact-match clause
    /// wins; otherwise the last matching `all`/`all+critical` clause.
    pub fn clause_for(&self, site: &str, class: FaultClass) -> Option<&FaultClause> {
        let mut blanket = None;
        let mut exact = None;
        for c in &self.clauses {
            match &c.target {
                FaultTarget::Site(s) if s == site => exact = Some(c),
                FaultTarget::AllRecoverable if class == FaultClass::Recoverable => {
                    blanket = Some(c)
                }
                FaultTarget::AllCritical => blanket = Some(c),
                _ => {}
            }
        }
        exact.or(blanket)
    }
}

fn parse_clause(raw: &str) -> std::result::Result<FaultClause, String> {
    let (target_s, opts_s) = match raw.split_once(':') {
        Some((t, o)) => (t.trim(), o.trim()),
        None => (raw, ""),
    };
    if target_s.is_empty() {
        return Err(format!("fault clause `{raw}` has an empty target"));
    }
    let target = match target_s {
        "all" => FaultTarget::AllRecoverable,
        "all+critical" => FaultTarget::AllCritical,
        s => FaultTarget::Site(s.to_string()),
    };
    let mut action = FaultAction::Error;
    let mut p_num = P_DENOM;
    let mut after = 0u64;
    let mut seed = 0u64;
    for opt in opts_s.split(',') {
        let opt = opt.trim();
        if opt.is_empty() {
            continue;
        }
        match opt.split_once('=') {
            None => match opt {
                "error" => action = FaultAction::Error,
                "panic" => action = FaultAction::Panic,
                "record" => action = FaultAction::Record,
                other => return Err(format!("unknown fault option `{other}`")),
            },
            Some((k, v)) => match k.trim() {
                "p" => {
                    let p: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad probability `{v}`"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability `{v}` outside [0, 1]"));
                    }
                    p_num = (p * P_DENOM as f64).round() as u64;
                }
                "after" => {
                    after = v.trim().parse().map_err(|_| format!("bad after `{v}`"))?;
                }
                "seed" => {
                    seed = v.trim().parse().map_err(|_| format!("bad seed `{v}`"))?;
                }
                "delay" => {
                    let ms = v
                        .trim()
                        .strip_suffix("ms")
                        .unwrap_or(v.trim())
                        .parse::<u64>()
                        .map_err(|_| format!("bad delay `{v}` (want e.g. 25ms)"))?;
                    action = FaultAction::Delay(Duration::from_millis(ms));
                }
                other => return Err(format!("unknown fault option `{other}`")),
            },
        }
    }
    Ok(FaultClause {
        target,
        action,
        p_num,
        after,
        seed,
    })
}

#[derive(Debug)]
struct SiteEntry {
    class: FaultClass,
    hits: AtomicU64,
    injected: AtomicU64,
}

#[derive(Default)]
struct Registry {
    spec: Option<FaultSpec>,
    sites: FxHashMap<&'static str, &'static SiteEntry>,
}

fn registry() -> &'static RwLock<Registry> {
    static REG: OnceLock<RwLock<Registry>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(Registry::default()))
}

/// Hit/injection counts for one registered site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    pub name: &'static str,
    pub class: FaultClass,
    pub hits: u64,
    pub injected: u64,
}

/// Install (or clear, with `None`) the active fault spec, resetting all
/// site counters. Returns a parse error without changing the active spec.
pub fn set_spec(spec: Option<&str>) -> std::result::Result<(), String> {
    let parsed = match spec {
        Some(s) => {
            let p = FaultSpec::parse(s)?;
            if p.clauses.is_empty() {
                None
            } else {
                Some(p)
            }
        }
        None => None,
    };
    let mut reg = registry().write();
    ENABLED.store(parsed.is_some(), Ordering::Release);
    reg.spec = parsed;
    reg.sites.clear();
    Ok(())
}

/// Read `GSJ_FAULTS` and install it. Called automatically on the first
/// fault-point hit; exposed for binaries that want parse errors early.
/// An unparseable env spec panics — a chaos run with a typo'd spec must
/// not silently test nothing.
pub fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("GSJ_FAULTS") {
            if let Err(e) = set_spec(Some(&spec)) {
                panic!("invalid GSJ_FAULTS spec: {e}");
            }
        }
    });
}

/// Is any fault spec active?
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Acquire)
}

/// splitmix64 — the decision mix. Public for tests that want to predict
/// a decision stream.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a: stable across runs and platforms (unlike FxHasher's
    // pointer-width-dependent mixing would not be an issue here, but FNV
    // is trivially portable and spec'd in DESIGN.md §11).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Does hit `k` of `site` inject under `clause`? Pure function.
pub fn decides(clause: &FaultClause, site: &str, k: u64) -> bool {
    if k < clause.after {
        return false;
    }
    if clause.p_num >= P_DENOM {
        return true;
    }
    let roll = splitmix64(clause.seed ^ site_hash(site) ^ k.wrapping_mul(0x2545f4914f6cdd1d));
    (roll & (P_DENOM - 1)) < clause.p_num
}

/// The fault point: call at a named stage. Returns `Ok(())` (possibly
/// after an injected delay), an injected `GsjError::Internal`, or panics
/// if the active clause says `panic`.
///
/// `site` must be a `'static` label, by convention the stage's span
/// label. When no spec is active this is one atomic load.
pub fn fault_point(site: &'static str, class: FaultClass) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    fault_point_slow(site, class)
}

#[cold]
fn fault_point_slow(site: &'static str, class: FaultClass) -> Result<()> {
    let entry = {
        let reg = registry().read();
        match reg.sites.get(site) {
            Some(e) => *e,
            None => {
                drop(reg);
                let mut reg = registry().write();
                *reg.sites.entry(site).or_insert_with(|| {
                    // Sites live for the process; a handful of leaked
                    // entries beats locking around every counter bump.
                    Box::leak(Box::new(SiteEntry {
                        class,
                        hits: AtomicU64::new(0),
                        injected: AtomicU64::new(0),
                    }))
                })
            }
        }
    };
    let k = entry.hits.fetch_add(1, Ordering::Relaxed);
    let decision = {
        let reg = registry().read();
        let spec = match &reg.spec {
            Some(s) => s,
            None => return Ok(()),
        };
        match spec.clause_for(site, class) {
            Some(clause) if decides(clause, site, k) => Some(clause.action),
            _ => None,
        }
    };
    let action = match decision {
        Some(a) => a,
        None => return Ok(()),
    };
    if action != FaultAction::Record {
        entry.injected.fetch_add(1, Ordering::Relaxed);
        INJECTED_TOTAL.inc();
        gsj_obs::event(
            "fault.inject",
            &[("site", &site), ("action", &action_name(action))],
        );
    }
    match action {
        FaultAction::Record => Ok(()),
        FaultAction::Error => Err(GsjError::Internal(format!("injected fault at {site}"))),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Panic => panic!("gsj-faults: injected panic at {site}"),
    }
}

fn action_name(a: FaultAction) -> &'static str {
    match a {
        FaultAction::Error => "error",
        FaultAction::Panic => "panic",
        FaultAction::Delay(_) => "delay",
        FaultAction::Record => "record",
    }
}

/// Snapshot of every site hit since the spec was installed, sorted by
/// name. Empty when injection is disabled.
pub fn sites() -> Vec<SiteStats> {
    let reg = registry().read();
    let mut out: Vec<SiteStats> = reg
        .sites
        .iter()
        .map(|(name, e)| SiteStats {
            name,
            class: e.class,
            hits: e.hits.load(Ordering::Relaxed),
            injected: e.injected.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// Serialize tests that install specs. Recovers from poisoning so one
/// panicking chaos test (injected panics are the point) doesn't wedge
/// the rest of the suite.
pub fn exclusive() -> StdMutexGuard<'static, ()> {
    static LOCK: StdMutex<()> = StdMutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_spec<R>(spec: &str, f: impl FnOnce() -> R) -> R {
        let _g = exclusive();
        set_spec(Some(spec)).expect("spec parses");
        let out = f();
        set_spec(None).unwrap();
        out
    }

    #[test]
    fn parse_full_grammar() {
        let spec =
            FaultSpec::parse("all:p=0.05,seed=42; graph.bfs:panic,after=3 ; her.match:delay=25ms")
                .unwrap();
        assert_eq!(spec.clauses.len(), 3);
        assert_eq!(spec.clauses[0].target, FaultTarget::AllRecoverable);
        assert_eq!(spec.clauses[0].seed, 42);
        assert_eq!(
            spec.clauses[0].p_num,
            (0.05 * P_DENOM as f64).round() as u64
        );
        assert_eq!(
            spec.clauses[1].target,
            FaultTarget::Site("graph.bfs".into())
        );
        assert_eq!(spec.clauses[1].action, FaultAction::Panic);
        assert_eq!(spec.clauses[1].after, 3);
        assert_eq!(
            spec.clauses[2].action,
            FaultAction::Delay(Duration::from_millis(25))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("site:p=2.0").is_err());
        assert!(FaultSpec::parse("site:frobnicate").is_err());
        assert!(FaultSpec::parse("site:delay=soon").is_err());
        assert!(FaultSpec::parse(":error").is_err());
        assert!(FaultSpec::parse("").unwrap().clauses.is_empty());
    }

    #[test]
    fn exact_clause_overrides_blanket() {
        let spec = FaultSpec::parse("all:p=0.5;x.y:panic").unwrap();
        let c = spec.clause_for("x.y", FaultClass::Recoverable).unwrap();
        assert_eq!(c.action, FaultAction::Panic);
        let c = spec.clause_for("other", FaultClass::Recoverable).unwrap();
        assert_eq!(c.target, FaultTarget::AllRecoverable);
    }

    #[test]
    fn all_skips_critical_sites() {
        let spec = FaultSpec::parse("all:p=1").unwrap();
        assert!(spec.clause_for("x", FaultClass::Critical).is_none());
        assert!(spec.clause_for("x", FaultClass::Recoverable).is_some());
        let spec = FaultSpec::parse("all+critical:p=1").unwrap();
        assert!(spec.clause_for("x", FaultClass::Critical).is_some());
    }

    #[test]
    fn decision_stream_is_deterministic_and_calibrated() {
        let clause = parse_clause("all:p=0.25,seed=42").unwrap();
        let a: Vec<bool> = (0..4096).map(|k| decides(&clause, "s", k)).collect();
        let b: Vec<bool> = (0..4096).map(|k| decides(&clause, "s", k)).collect();
        assert_eq!(a, b, "same (seed, site, k) must decide identically");
        let hits = a.iter().filter(|x| **x).count();
        // 4096 Bernoulli(0.25) trials: mean 1024, sd ~28. Allow 6 sd.
        assert!((850..=1200).contains(&hits), "p miscalibrated: {hits}/4096");
        // Different seeds give a different stream.
        let clause2 = parse_clause("all:p=0.25,seed=43").unwrap();
        let c: Vec<bool> = (0..4096).map(|k| decides(&clause2, "s", k)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn after_skips_initial_hits() {
        let clause = parse_clause("s:error,after=5").unwrap();
        for k in 0..5 {
            assert!(!decides(&clause, "s", k));
        }
        assert!(decides(&clause, "s", 5));
    }

    #[test]
    fn fault_point_injects_error_and_counts() {
        with_spec("test.site:error", || {
            let err = fault_point("test.site", FaultClass::Critical).unwrap_err();
            assert!(matches!(err, GsjError::Internal(_)));
            assert!(err.retryable());
            let stats = sites();
            let s = stats.iter().find(|s| s.name == "test.site").unwrap();
            assert_eq!(s.hits, 1);
            assert_eq!(s.injected, 1);
        });
    }

    #[test]
    fn fault_point_is_clean_when_disabled_or_unmatched() {
        let _g = exclusive();
        set_spec(None).unwrap();
        assert!(fault_point("test.quiet", FaultClass::Critical).is_ok());
        assert!(sites().is_empty(), "no bookkeeping while disabled");
        set_spec(Some("other.site:error")).unwrap();
        assert!(fault_point("test.quiet", FaultClass::Critical).is_ok());
        let stats = sites();
        let s = stats.iter().find(|s| s.name == "test.quiet").unwrap();
        assert_eq!((s.hits, s.injected), (1, 0));
        set_spec(None).unwrap();
    }

    #[test]
    fn record_counts_without_injecting() {
        with_spec("all+critical:record", || {
            assert!(fault_point("test.rec", FaultClass::Critical).is_ok());
            assert!(fault_point("test.rec", FaultClass::Critical).is_ok());
            let stats = sites();
            let s = stats.iter().find(|s| s.name == "test.rec").unwrap();
            assert_eq!((s.hits, s.injected), (2, 0));
        });
    }

    #[test]
    fn panic_action_panics() {
        with_spec("test.boom:panic", || {
            let caught = std::panic::catch_unwind(|| {
                let _ = fault_point("test.boom", FaultClass::Critical);
            });
            assert!(caught.is_err());
        });
    }

    #[test]
    fn delay_action_sleeps_then_succeeds() {
        with_spec("test.slow:delay=10ms", || {
            let t0 = std::time::Instant::now();
            assert!(fault_point("test.slow", FaultClass::Critical).is_ok());
            assert!(t0.elapsed() >= Duration::from_millis(10));
        });
    }

    #[test]
    fn blanket_spec_spares_critical_sites() {
        with_spec("all:p=1,seed=1", || {
            assert!(fault_point("test.crit", FaultClass::Critical).is_ok());
            let err = fault_point("test.soft", FaultClass::Recoverable);
            assert!(err.is_err());
        });
    }
}
