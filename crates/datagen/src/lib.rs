//! # gsj-datagen
//!
//! Synthetic stand-ins for the paper's six evaluation collections
//! (Table II): Drugs, FakeNews, Movie, MovKB, Paper and Celebrity. Each
//! collection is a relational database plus a knowledge graph over the
//! same entities, generated *from a hidden ground-truth table* so the
//! drop-and-recover F-measure protocol of Exp-2 is computable exactly
//! (see DESIGN.md §2, substitution 4).
//!
//! The graphs have the structural properties RExt banks on:
//!
//! - entity properties live at the end of 1–3-hop labeled paths, not on
//!   the entity vertex (e.g. `drug → efficacy → symptom ← disease`);
//! - edge labels are semantically related to — but not equal to — the
//!   user keywords (`regloc` vs `loc`);
//! - value vertices are shared across entities (countries, genres), so
//!   paths fan in;
//! - distractor properties and cross-entity links provide realistic noise
//!   and the substrate for link joins.

pub mod builder;
pub mod collections;
pub mod queries;
pub mod spec;
pub mod updates;

pub use builder::{build_collection, Collection};
pub use spec::{CollectionSpec, CrossSpec, PropSpec, Scale};
