//! The gSQL query workload: 6 queries per collection, 36 in total,
//! mirroring the paper's mix ("32 involve enrichment joins, 4 need link
//! joins, 4 are dynamic, 10 contain more than one semantic joins, 17 have
//! negation, and 4 have aggregation"). The exact composition of this
//! workload is reported by the Table II/III harness.

use crate::builder::Collection;
use gsj_common::Value;

/// One workload query plus its classification flags.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Stable name, e.g. `Drugs-q3`.
    pub name: String,
    /// gSQL text; the graph is referenced as `G`.
    pub text: String,
    /// Uses a link join.
    pub link: bool,
    /// Has a sub-query semantic-join source (dynamic join).
    pub dynamic: bool,
    /// Number of semantic joins.
    pub joins: usize,
    /// Contains negation (`not` / `<>`).
    pub negation: bool,
    /// Contains aggregation.
    pub aggregation: bool,
}

fn sample_value(c: &Collection, col: &str, row: usize) -> String {
    let vals = c.truth.column(col).expect("truth column");
    vals.iter()
        .cycle()
        .skip(row)
        .find_map(|v| match v {
            Value::Str(s) => Some(s.to_string()),
            _ => None,
        })
        .unwrap_or_else(|| "missing".into())
}

/// Build the 6-query workload for one collection.
pub fn workload(c: &Collection) -> Vec<WorkloadQuery> {
    let rel = &c.spec.rel_name;
    let id = &c.spec.id_attr;
    let kws = c.spec.reference_keywords();
    let (kw0, kw1) = (&kws[0], kws.get(1).unwrap_or(&kws[0]).clone());
    let some_id = c.id_of(0);
    let other_id = c.id_of(1.min(c.spec.entities.saturating_sub(1)));
    let val0 = sample_value(c, kw0, 0);
    let (extra_attr, _, _) = &c.spec.extra_attrs[0];
    let extra_val = {
        let vals = c.entity_relation().column(extra_attr).expect("extra attr");
        vals[0].to_string()
    };
    let n = &c.name;

    vec![
        // q1: static enrichment with id selection (Q1 of Example 1).
        WorkloadQuery {
            name: format!("{n}-q1"),
            text: format!(
                "select {id}, {kw0}, {kw1} from {rel} e-join G <{kw0}, {kw1}> as T \
                 where T.{id} = {some_id}"
            ),
            link: false,
            dynamic: false,
            joins: 1,
            negation: false,
            aggregation: false,
        },
        // q2: enrichment + negation.
        WorkloadQuery {
            name: format!("{n}-q2"),
            text: format!(
                "select {id}, {kw0} from {rel} e-join G <{kw0}> as T \
                 where not T.{kw0} = '{val0}'"
            ),
            link: false,
            dynamic: false,
            joins: 1,
            negation: true,
            aggregation: false,
        },
        // q3: two enrichment joins correlated on the extracted attribute
        // (Q2 of Example 1) + negation.
        WorkloadQuery {
            name: format!("{n}-q3"),
            text: format!(
                "select T1.{id}, T2.{id} from {rel} e-join G <{kw0}> as T1, \
                 {rel} e-join G <{kw0}> as T2 \
                 where T1.{id} = {some_id} and T1.{kw0} = T2.{kw0} \
                 and not T2.{id} = {some_id}"
            ),
            link: false,
            dynamic: false,
            joins: 2,
            negation: true,
            aggregation: false,
        },
        // q4: dynamic enrichment over a sub-query.
        WorkloadQuery {
            name: format!("{n}-q4"),
            text: format!(
                "select {id}, {kw0} from \
                 (select * from {rel} where {extra_attr} = '{extra_val}') \
                 e-join G <{kw0}, {kw1}> as T"
            ),
            link: false,
            dynamic: true,
            joins: 1,
            negation: false,
            aggregation: false,
        },
        // q5: aggregation over an extracted attribute, with negation.
        WorkloadQuery {
            name: format!("{n}-q5"),
            text: format!(
                "select {kw0}, count(*) as cnt from {rel} e-join G <{kw0}> as T \
                 where not T.{kw0} = '{val0}'"
            ),
            link: false,
            dynamic: false,
            joins: 1,
            negation: true,
            aggregation: true,
        },
        // q6: link join (Q3 of Example 1).
        WorkloadQuery {
            name: format!("{n}-q6"),
            text: format!(
                "select * from {rel} l-join <G> {rel} as {rel}B \
                 where {rel}.{id} = {some_id} and not {rel}B.{id} = {other_id}"
            ),
            link: true,
            dynamic: false,
            joins: 1,
            negation: true,
            aggregation: false,
        },
    ]
}

/// Workload composition counters (for reporting next to the paper's
/// 32/4/4/10/17/4 mix).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Composition {
    /// Queries with at least one enrichment join.
    pub enrichment: usize,
    /// Queries with a link join.
    pub link: usize,
    /// Dynamic-join queries.
    pub dynamic: usize,
    /// Queries with >1 semantic join.
    pub multi_join: usize,
    /// Queries with negation.
    pub negation: usize,
    /// Queries with aggregation.
    pub aggregation: usize,
    /// Total queries.
    pub total: usize,
}

/// Summarize a workload.
pub fn composition(queries: &[WorkloadQuery]) -> Composition {
    let mut c = Composition::default();
    for q in queries {
        c.total += 1;
        if q.link {
            c.link += 1;
        } else {
            c.enrichment += 1;
        }
        if q.dynamic {
            c.dynamic += 1;
        }
        if q.joins > 1 {
            c.multi_join += 1;
        }
        if q.negation {
            c.negation += 1;
        }
        if q.aggregation {
            c.aggregation += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections;
    use crate::spec::Scale;

    #[test]
    fn six_queries_per_collection_all_parse() {
        let c = collections::build("Drugs", Scale::tiny(), 2).unwrap();
        let queries = workload(&c);
        assert_eq!(queries.len(), 6);
        for q in &queries {
            let parsed = gsj_core::gsql::parse_query(&q.text);
            assert!(parsed.is_ok(), "{}: {:?}\n{}", q.name, parsed.err(), q.text);
            let ast = parsed.unwrap();
            assert_eq!(ast.semantic_joins().len(), q.joins, "{}", q.name);
        }
    }

    #[test]
    fn full_workload_composition() {
        let cols = collections::build_all(Scale::tiny(), 2);
        let all: Vec<WorkloadQuery> = cols.iter().flat_map(workload).collect();
        let comp = composition(&all);
        assert_eq!(comp.total, 36);
        assert_eq!(comp.link, 6);
        assert_eq!(comp.enrichment, 30);
        assert_eq!(comp.dynamic, 6);
        assert_eq!(comp.multi_join, 6);
        assert!(comp.negation >= 17, "negation = {}", comp.negation);
        assert_eq!(comp.aggregation, 6);
    }
}
