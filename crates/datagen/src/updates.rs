//! Random `ΔG` batches for the IncExt experiments (Exp-4): "we generated
//! random updates ΔG consisting of the same number of insertions and
//! deletions, so that the size of the graph remains unchanged."

use gsj_common::Symbol;
use gsj_graph::{GraphUpdate, LabeledGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Generate a balanced update batch touching `fraction` of `|G|`'s edges
/// (half deletions of existing edges, half insertions of new edges with
/// existing labels between existing vertices).
pub fn balanced_updates(g: &LabeledGraph, fraction: f64, seed: u64) -> Vec<GraphUpdate> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vertices: Vec<VertexId> = g.vertices().collect();
    if vertices.len() < 2 || g.edge_count() == 0 {
        return Vec::new();
    }
    let labels: Vec<Symbol> = g.edge_label_histogram().keys().copied().collect();
    let symbols = g.symbols();
    let per_side = ((g.edge_count() as f64 * fraction) / 2.0).round().max(1.0) as usize;

    let mut updates = Vec::with_capacity(2 * per_side);
    // Deletions: sample random vertices and drop one of their out-edges.
    let mut deleted = 0usize;
    let mut guard = 0usize;
    while deleted < per_side && guard < per_side * 50 {
        guard += 1;
        let v = vertices[rng.random_range(0..vertices.len())];
        let outs = g.out_edges(v);
        if outs.is_empty() {
            continue;
        }
        let e = outs[rng.random_range(0..outs.len())];
        updates.push(GraphUpdate::RemoveEdge {
            src: v,
            label: symbols.resolve(e.label).to_string(),
            dst: e.to,
        });
        deleted += 1;
    }
    // Insertions: random labeled edges between existing vertices.
    for _ in 0..deleted {
        let a = vertices[rng.random_range(0..vertices.len())];
        let mut b = vertices[rng.random_range(0..vertices.len())];
        if a == b {
            b = vertices[(rng.random_range(0..vertices.len()) + 1) % vertices.len()];
        }
        let label = labels[rng.random_range(0..labels.len())];
        updates.push(GraphUpdate::AddEdge {
            src: a,
            label: symbols.resolve(label).to_string(),
            dst: b,
        });
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_graph::update::apply_updates;

    fn graph() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..30).map(|i| g.add_vertex(&format!("v{i}"))).collect();
        for i in 0..29 {
            g.add_edge(vs[i], "next", vs[i + 1]);
            g.add_edge(vs[i], "alt", vs[(i + 7) % 30]);
        }
        g
    }

    #[test]
    fn batch_is_balanced() {
        let g = graph();
        let ups = balanced_updates(&g, 0.2, 5);
        let dels = ups
            .iter()
            .filter(|u| matches!(u, GraphUpdate::RemoveEdge { .. }))
            .count();
        let adds = ups
            .iter()
            .filter(|u| matches!(u, GraphUpdate::AddEdge { .. }))
            .count();
        assert_eq!(dels, adds);
        assert!(dels > 0);
    }

    #[test]
    fn graph_size_roughly_preserved() {
        let mut g = graph();
        let before = g.edge_count();
        let ups = balanced_updates(&g, 0.3, 5);
        apply_updates(&mut g, &ups);
        // Deletions may repeat an edge (no-op) and insertions may
        // duplicate, so allow slack — but the size must stay close.
        let after = g.edge_count();
        assert!(
            (after as i64 - before as i64).abs() <= (before / 5) as i64,
            "{before} -> {after}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        assert_eq!(balanced_updates(&g, 0.1, 9), balanced_updates(&g, 0.1, 9));
    }

    #[test]
    fn empty_graph_yields_no_updates() {
        let g = LabeledGraph::new();
        assert!(balanced_updates(&g, 0.5, 1).is_empty());
    }
}
