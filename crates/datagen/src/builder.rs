//! The generic collection generator.

use crate::spec::{CollectionSpec, PropSpec};
use gsj_common::{FxHashMap, Value};
use gsj_core::profile::RelationSpec;
use gsj_graph::{LabeledGraph, VertexId};
use gsj_her::HerConfig;
use gsj_relational::{Database, Relation, Schema};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const ADJECTIVES: &[&str] = &[
    "Crimson", "Silver", "Golden", "Emerald", "Azure", "Ivory", "Obsidian", "Scarlet", "Amber",
    "Cobalt", "Violet", "Copper", "Jade", "Onyx", "Pearl", "Ruby", "Sapphire", "Topaz", "Coral",
    "Indigo", "Maroon", "Ochre", "Teal", "Umber",
];

const NOUNS: &[&str] = &[
    "Falcon", "Harbor", "Meadow", "Summit", "Canyon", "Glacier", "Lagoon", "Prairie", "Thicket",
    "Cascade", "Bluff", "Grove", "Hollow", "Mesa", "Ridge", "Basin", "Fjord", "Delta", "Atoll",
    "Tundra", "Savanna", "Marsh", "Dune", "Reef",
];

/// A generated collection: database, graph, ground truth, and the specs
/// needed to profile it.
#[derive(Clone)]
pub struct Collection {
    /// Collection name.
    pub name: String,
    /// The relational database `D` (entity relation + optional cross
    /// relation).
    pub db: Database,
    /// The knowledge graph `G`.
    pub graph: LabeledGraph,
    /// The generating spec.
    pub spec: CollectionSpec,
    /// Ground truth: `id_attr` + one column per property keyword.
    pub truth: Relation,
    /// Entity vertex per entity index.
    pub entity_vertices: Vec<VertexId>,
    /// Cross links as entity index pairs.
    pub links: Vec<(usize, usize)>,
}

impl Collection {
    /// Tuple id of entity `i`.
    pub fn id_of(&self, i: usize) -> String {
        format!("{}{i}", self.spec.id_prefix)
    }

    /// A HER configuration suited to this collection (the paper picks
    /// JedAI configurations per collection the same way).
    pub fn her_config(&self) -> HerConfig {
        HerConfig {
            id_attr: self.spec.id_attr.clone(),
            min_score: 0.3,
            ..HerConfig::default()
        }
    }

    /// The [`RelationSpec`] for profiling the entity relation with `A_R` =
    /// the property keywords.
    pub fn relation_spec(&self) -> RelationSpec {
        RelationSpec {
            name: self.spec.rel_name.clone(),
            id_attr: self.spec.id_attr.clone(),
            keywords: self.spec.reference_keywords(),
        }
    }

    /// `(predicted_attr, truth_attr)` pairs for the F-measure protocol
    /// over all property keywords.
    pub fn attr_pairs(&self) -> Vec<(String, String)> {
        self.spec
            .reference_keywords()
            .into_iter()
            .map(|k| (k.clone(), k))
            .collect()
    }

    /// The entity relation.
    pub fn entity_relation(&self) -> &Relation {
        self.db
            .get(&self.spec.rel_name)
            .expect("entity relation registered at build time")
    }
}

fn stable_hash(s: &str, salt: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = gsj_common::FxHasher::default();
    h.write(s.as_bytes());
    h.write_u64(salt);
    h.finish()
}

struct GraphBuilder {
    g: LabeledGraph,
    value_vertices: FxHashMap<String, VertexId>,
    blank_counter: usize,
}

impl GraphBuilder {
    fn value_vertex(&mut self, label: &str) -> VertexId {
        if let Some(&v) = self.value_vertices.get(label) {
            return v;
        }
        let v = self.g.add_vertex(label);
        self.value_vertices.insert(label.to_string(), v);
        v
    }

    fn blank_vertex(&mut self) -> VertexId {
        let v = self.g.add_vertex(&format!("n{}", self.blank_counter));
        self.blank_counter += 1;
        v
    }

    /// Attach a property value at the end of an edge chain from `from`.
    fn attach_chain(&mut self, from: VertexId, edges: &[String], value: &str) {
        let mut current = from;
        for (i, edge) in edges.iter().enumerate() {
            let next = if i + 1 == edges.len() {
                self.value_vertex(value)
            } else {
                self.blank_vertex()
            };
            self.g.add_edge(current, edge, next);
            current = next;
        }
    }
}

/// The property value of entity `i` for `prop`, given already-decided
/// parent values. `None` = NULL.
fn prop_value(
    prop: &PropSpec,
    i: usize,
    decided: &FxHashMap<String, Option<String>>,
    rng: &mut SmallRng,
) -> Option<String> {
    match &prop.via {
        Some(parent) => {
            // Function of the parent value → consistent across entities.
            let parent_val = decided.get(parent.as_str()).cloned().flatten()?;
            let j = stable_hash(&parent_val, 0xfeed) % prop.pool_size.max(1) as u64;
            Some(format!("{}{j}", prop.pool_prefix))
        }
        None => {
            if prop.null_rate > 0.0 && rng.random_range(0.0..1.0) < prop.null_rate {
                return None;
            }
            let j = rng.random_range(0..prop.pool_size.max(1));
            let _ = i;
            Some(format!("{}{j}", prop.pool_prefix))
        }
    }
}

/// Generate a collection from its spec.
pub fn build_collection(spec: CollectionSpec) -> Collection {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut gb = GraphBuilder {
        g: LabeledGraph::new(),
        value_vertices: FxHashMap::default(),
        blank_counter: 0,
    };
    let type_vertex = gb.g.add_vertex(&spec.type_name);

    // Entity relation schema: id, name, extras.
    let mut rel_attrs: Vec<String> = vec![spec.id_attr.clone(), "name".into()];
    rel_attrs.extend(spec.extra_attrs.iter().map(|(a, _, _)| a.clone()));
    let mut entity_rel =
        Relation::empty(Schema::new(spec.rel_name.clone(), rel_attrs).expect("distinct attrs"));

    // Ground truth schema: id + keywords.
    let mut truth_attrs = vec![spec.id_attr.clone()];
    truth_attrs.extend(spec.reference_keywords());
    let mut truth = Relation::empty(
        Schema::new(format!("{}_truth", spec.rel_name), truth_attrs).expect("distinct attrs"),
    );

    let mut entity_vertices = Vec::with_capacity(spec.entities);
    for i in 0..spec.entities {
        let id = format!("{}{i}", spec.id_prefix);
        let name = format!(
            "{} {} {i}",
            ADJECTIVES[rng.random_range(0..ADJECTIVES.len())],
            NOUNS[rng.random_range(0..NOUNS.len())]
        );
        // Relational row.
        let mut row = vec![Value::str(&id), Value::str(&name)];
        let mut extra_vals = Vec::new();
        for (_, prefix, size) in &spec.extra_attrs {
            let val = format!("{prefix}{}", rng.random_range(0..*size.max(&1)));
            extra_vals.push(val.clone());
            row.push(Value::str(val));
        }
        entity_rel.push_values(row).expect("arity");

        // Graph side.
        let ev =
            gb.g.add_vertex(&format!("{}-{i}", spec.type_name.to_lowercase()));
        entity_vertices.push(ev);
        gb.g.add_edge(ev, "type", type_vertex);
        let name_v = gb.value_vertex(&name);
        gb.g.add_edge(ev, "name", name_v);
        // First extra attr is mirrored into the graph so HER has more
        // than the name to match on.
        if let Some(((attr, _, _), val)) = spec.extra_attrs.first().zip(extra_vals.first()) {
            let v = gb.value_vertex(val);
            gb.g.add_edge(ev, attr, v);
        }

        // Properties.
        let mut decided: FxHashMap<String, Option<String>> = FxHashMap::default();
        let mut truth_row = vec![Value::str(&id)];
        for prop in &spec.props {
            let value = prop_value(prop, i, &decided, &mut rng);
            match (&prop.via, &value) {
                (Some(parent), Some(v)) => {
                    // Chain continues from the parent's value vertex.
                    if let Some(Some(pv)) = decided.get(parent.as_str()).cloned() {
                        let from = gb.value_vertex(&pv);
                        gb.attach_chain(from, &prop.edges, v);
                    }
                }
                (None, Some(v)) => gb.attach_chain(ev, &prop.edges, v),
                _ => {}
            }
            truth_row.push(match &value {
                Some(v) => Value::str(v),
                None => Value::Null,
            });
            decided.insert(prop.keyword.clone(), value);
        }
        truth.push_values(truth_row).expect("arity");

        // Noise properties (graph-only).
        for prop in &spec.noise_props {
            if let Some(v) = prop_value(prop, i, &decided, &mut rng) {
                gb.attach_chain(ev, &prop.edges, &v);
            }
        }
    }

    // Background graph: chains of vertices unrelated to D, sparsely
    // attached to the property zone.
    let bg_count = (spec.entities as f64 * spec.background).round() as usize;
    if bg_count > 0 {
        let bg_edges = ["linked", "mentions", "refers_to", "see_also"];
        let mut prev: Option<VertexId> = None;
        let mut bg_vertices = Vec::with_capacity(bg_count);
        for i in 0..bg_count {
            let v = gb.g.add_vertex(&format!("bgnode {i}"));
            bg_vertices.push(v);
            // Chain segments of ~16 vertices.
            if let Some(p) = prev {
                if i % 16 != 0 {
                    gb.g.add_edge(p, bg_edges[i % bg_edges.len()], v);
                }
            }
            prev = Some(v);
            // Occasional long-range background link.
            if i > 4 && rng.random_range(0..10) == 0 {
                let other = bg_vertices[rng.random_range(0..i)];
                if other != v {
                    gb.g.add_edge(v, "see_also", other);
                }
            }
        }
        // Sparse attachment: ~3% of background vertices mention a value
        // vertex of the property zone.
        let values: Vec<VertexId> = gb.value_vertices.values().copied().collect();
        if !values.is_empty() {
            for &v in &bg_vertices {
                if rng.random_range(0..33) == 0 {
                    let target = values[rng.random_range(0..values.len())];
                    gb.g.add_edge(v, "mentions", target);
                }
            }
        }
    }

    // Cross links.
    let mut links: Vec<(usize, usize)> = Vec::new();
    if let Some(cross) = &spec.cross {
        if spec.entities >= 2 {
            let total = (spec.entities as f64 * cross.per_entity).round() as usize;
            for _ in 0..total {
                let a = rng.random_range(0..spec.entities);
                let mut b = rng.random_range(0..spec.entities);
                if a == b {
                    b = (b + 1) % spec.entities;
                }
                gb.g.add_edge(entity_vertices[a], &cross.label, entity_vertices[b]);
                links.push((a, b));
            }
        }
    }

    let mut db = Database::new();
    db.insert(entity_rel);
    if let Some(cross) = &spec.cross {
        if let Some(cr) = &cross.relation {
            let mut rel = Relation::empty(
                Schema::new(
                    cr.name.clone(),
                    vec![cr.id1.clone(), cr.id2.clone(), cr.type_attr.clone()],
                )
                .expect("distinct attrs"),
            );
            for (n, (a, b)) in links.iter().enumerate() {
                rel.push_values(vec![
                    Value::str(format!("{}{a}", spec.id_prefix)),
                    Value::str(format!("{}{b}", spec.id_prefix)),
                    Value::str(&cr.type_pool[n % cr.type_pool.len()]),
                ])
                .expect("arity");
            }
            db.insert(rel);
        }
    }

    Collection {
        name: spec.name.clone(),
        db,
        graph: gb.g,
        spec,
        truth,
        entity_vertices,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CrossRelation, CrossSpec};

    fn toy_spec() -> CollectionSpec {
        CollectionSpec {
            name: "Toy".into(),
            type_name: "Widget".into(),
            rel_name: "widget".into(),
            id_attr: "wid".into(),
            id_prefix: "w".into(),
            entities: 20,
            extra_attrs: vec![("class".into(), "Class".into(), 3)],
            props: vec![
                PropSpec::direct("maker", "made_by", "Maker", 5),
                PropSpec::via("country", "maker", "registered_in", "Country", 4),
                PropSpec::direct("grade", "graded", "Grade", 3).with_null_rate(0.3),
            ],
            noise_props: vec![PropSpec::direct("junk", "clicked", "Junk", 6)],
            cross: Some(CrossSpec {
                label: "interacts".into(),
                per_entity: 1.0,
                relation: Some(CrossRelation {
                    name: "interact".into(),
                    id1: "wid1".into(),
                    id2: "wid2".into(),
                    type_attr: "itype".into(),
                    type_pool: vec!["-1".into(), "1".into()],
                }),
            }),
            background: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn builds_consistent_sizes() {
        let c = build_collection(toy_spec());
        assert_eq!(c.entity_relation().len(), 20);
        assert_eq!(c.truth.len(), 20);
        assert_eq!(c.entity_vertices.len(), 20);
        assert_eq!(c.db.get("interact").unwrap().len(), c.links.len());
        assert!(c.graph.edge_count() > 20 * 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_collection(toy_spec());
        let b = build_collection(toy_spec());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn via_property_is_functional_in_parent() {
        let c = build_collection(toy_spec());
        // Same maker value → same country value across all entities.
        let maker_col = c.truth.column("maker").unwrap();
        let country_col = c.truth.column("country").unwrap();
        let mut map: FxHashMap<String, String> = FxHashMap::default();
        for (m, ct) in maker_col.iter().zip(&country_col) {
            if let (Some(m), Some(ct)) = (m.as_str(), ct.as_str()) {
                if let Some(prev) = map.get(m) {
                    assert_eq!(prev, ct, "maker {m} maps to two countries");
                } else {
                    map.insert(m.to_string(), ct.to_string());
                }
            }
        }
    }

    #[test]
    fn truth_values_are_reachable_in_graph() {
        let c = build_collection(toy_spec());
        // Each non-null maker value must be a 1-hop neighbor of the
        // entity vertex via `made_by`.
        let made_by = c.graph.symbols().get("made_by").unwrap();
        for (i, ev) in c.entity_vertices.iter().enumerate() {
            let truth_maker = c.truth.tuples()[i].get(1);
            if truth_maker.is_null() {
                continue;
            }
            let found = c
                .graph
                .out_edges(*ev)
                .iter()
                .filter(|e| e.label == made_by)
                .any(|e| &*c.graph.vertex_label_str(e.to) == truth_maker.as_str().unwrap());
            assert!(found, "entity {i}: {truth_maker:?} not in graph");
        }
    }

    #[test]
    fn null_rate_produces_nulls() {
        let c = build_collection(toy_spec());
        let grade = c.truth.column("grade").unwrap();
        let nulls = grade.iter().filter(|v| v.is_null()).count();
        assert!(nulls > 0, "expected some NULL grades");
        assert!(nulls < 20, "expected some non-NULL grades");
    }

    #[test]
    fn reference_keywords_match_truth_columns() {
        let c = build_collection(toy_spec());
        let kws = c.spec.reference_keywords();
        assert_eq!(kws, vec!["maker", "country", "grade"]);
        for k in &kws {
            assert!(c.truth.schema().contains(k));
        }
    }
}
