//! Declarative collection specifications.

/// Global scale knob: the entity count of the *smallest* collection; the
/// six collections multiply it by factors mirroring Table II's relative
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub usize);

impl Scale {
    /// A scale suitable for unit/integration tests (~40 entities).
    pub fn tiny() -> Self {
        Scale(40)
    }

    /// Default benchmark scale.
    pub fn small() -> Self {
        Scale(300)
    }

    /// Larger benchmark scale.
    pub fn medium() -> Self {
        Scale(2_000)
    }
}

/// One graph property of an entity type.
///
/// The property value of entity `i` is drawn deterministically from
/// `pool`; the graph carries it at the end of the labeled `edges` chain.
/// With `via = Some(kw)` the chain *continues from the value vertex of
/// property `kw`* (e.g. `loc` continues from the `company` vertex through
/// `regloc`), and the value is then a function of the parent value, so
/// the data stays consistent (company1 is always in the same country).
#[derive(Debug, Clone)]
pub struct PropSpec {
    /// The reference keyword `A_R` entry / ground-truth column name.
    pub keyword: String,
    /// Edge labels along the path (1 per hop).
    pub edges: Vec<String>,
    /// Parent property whose value vertex the path starts from.
    pub via: Option<String>,
    /// Value pool prefix; values are `{prefix}{j}` for `j < pool_size`.
    pub pool_prefix: String,
    /// Distinct values.
    pub pool_size: usize,
    /// Fraction of entities with no such property (NULL ground truth).
    pub null_rate: f64,
}

impl PropSpec {
    /// A 1-hop property.
    pub fn direct(keyword: &str, edge: &str, pool_prefix: &str, pool_size: usize) -> Self {
        PropSpec {
            keyword: keyword.into(),
            edges: vec![edge.into()],
            via: None,
            pool_prefix: pool_prefix.into(),
            pool_size,
            null_rate: 0.0,
        }
    }

    /// A property chained off another property's value vertex.
    pub fn via(
        keyword: &str,
        parent: &str,
        edge: &str,
        pool_prefix: &str,
        pool_size: usize,
    ) -> Self {
        PropSpec {
            keyword: keyword.into(),
            edges: vec![edge.into()],
            via: Some(parent.into()),
            pool_prefix: pool_prefix.into(),
            pool_size,
            null_rate: 0.0,
        }
    }

    /// A multi-hop property through anonymous intermediate vertices.
    pub fn deep(keyword: &str, edges: &[&str], pool_prefix: &str, pool_size: usize) -> Self {
        PropSpec {
            keyword: keyword.into(),
            edges: edges.iter().map(|s| s.to_string()).collect(),
            via: None,
            pool_prefix: pool_prefix.into(),
            pool_size,
            null_rate: 0.0,
        }
    }

    /// Set the NULL rate.
    pub fn with_null_rate(mut self, rate: f64) -> Self {
        self.null_rate = rate;
        self
    }
}

/// Cross-entity link edges (transactions, interactions, knows, cites).
#[derive(Debug, Clone)]
pub struct CrossSpec {
    /// Edge label.
    pub label: String,
    /// Expected links per entity.
    pub per_entity: f64,
    /// Materialize the links as a relation
    /// `rel_name(id1_attr, id2_attr, type_attr)` with the given type pool
    /// (the Drugs collection's `interact(CAS1, CAS2, type)`).
    pub relation: Option<CrossRelation>,
}

/// The relational rendering of cross edges.
#[derive(Debug, Clone)]
pub struct CrossRelation {
    /// Relation name.
    pub name: String,
    /// First id attribute.
    pub id1: String,
    /// Second id attribute.
    pub id2: String,
    /// Type attribute name.
    pub type_attr: String,
    /// Type values cycled through links.
    pub type_pool: Vec<String>,
}

/// Everything needed to generate one collection.
#[derive(Debug, Clone)]
pub struct CollectionSpec {
    /// Collection name (e.g. "Drugs").
    pub name: String,
    /// Entity type vertex label (e.g. "Drug").
    pub type_name: String,
    /// Entity relation name (e.g. "drug").
    pub rel_name: String,
    /// Tuple-id attribute.
    pub id_attr: String,
    /// Id prefix; ids are `{prefix}{i}`.
    pub id_prefix: String,
    /// Number of entities (pre-scaled by the caller).
    pub entities: usize,
    /// Relational-only attributes: `(name, pool prefix, pool size)`.
    /// The first one is *also* written into the graph as a 1-hop
    /// property, giving HER more than just the name to match on.
    pub extra_attrs: Vec<(String, String, usize)>,
    /// Graph properties (the recoverable columns; their keywords form
    /// `A_R`).
    pub props: Vec<PropSpec>,
    /// Graph-only distractor properties.
    pub noise_props: Vec<PropSpec>,
    /// Cross-entity links.
    pub cross: Option<CrossSpec>,
    /// Background-graph size as a multiple of the entity count: vertices
    /// unrelated to any tuple of `D`, chained among themselves and only
    /// sparsely attached to the property zone. Real knowledge graphs are
    /// mostly background relative to any one relation — this is what makes
    /// small `ΔG` batches land far from matched vertices (Exp-4).
    pub background: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CollectionSpec {
    /// The reference keyword list `A_R` for this collection's entity
    /// relation.
    pub fn reference_keywords(&self) -> Vec<String> {
        self.props.iter().map(|p| p.keyword.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_constructors() {
        let p = PropSpec::direct("director", "directed_by", "Director", 10);
        assert_eq!(p.edges, vec!["directed_by"]);
        assert!(p.via.is_none());
        let v = PropSpec::via("country", "city", "country_of", "Country", 5);
        assert_eq!(v.via.as_deref(), Some("city"));
        let d = PropSpec::deep("symptom", &["efficacy", "treats"], "Symptom", 8);
        assert_eq!(d.edges.len(), 2);
        let n = PropSpec::direct("x", "y", "Z", 3).with_null_rate(0.25);
        assert_eq!(n.null_rate, 0.25);
    }
}
