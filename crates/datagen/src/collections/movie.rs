//! **Movie**: IMDB relations with the LinkedMDB graph — closely-related
//! sources (the relation and graph genuinely describe the same films).

use crate::spec::{CollectionSpec, CrossSpec, PropSpec, Scale};

/// `movie(mid, name, year, genre)` + LinkedMDB-style graph.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0 * 5;
    CollectionSpec {
        name: "Movie".into(),
        type_name: "Film".into(),
        rel_name: "movie".into(),
        id_attr: "mid".into(),
        id_prefix: "tt".into(),
        entities: n,
        extra_attrs: vec![
            ("genre".into(), "Genre".into(), 10),
            ("year".into(), "Y19".into(), 40),
        ],
        props: vec![
            PropSpec::direct("director", "directed_by", "Director", (n / 4).max(6)),
            PropSpec::direct("studio", "produced_by_studio", "Studio", (n / 15).max(4)),
            PropSpec::via("country", "studio", "studio_country", "Country", 12),
        ],
        noise_props: vec![
            // Value labels carry the keyword token ("Runtime12"), like
            // every other property pool here: the hash embedder recovers
            // concepts from label strings, not world knowledge (DESIGN
            // §7.4), so "Minutes" values would make this property
            // unrecoverable by construction.
            PropSpec::direct("runtime", "runs_for", "Runtime", 30),
            PropSpec::deep("review", &["reviewed_in", "written_by"], "Critic", 20),
        ],
        cross: Some(CrossSpec {
            label: "sequel_of".into(),
            per_entity: 0.4,
            relation: None,
        }),
        background: 8.0,
        seed: seed ^ 0x30b1e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn movie_country_is_functional_in_studio() {
        let c = build_collection(spec(Scale::tiny(), 3));
        assert_eq!(
            c.spec.reference_keywords(),
            vec!["director", "studio", "country"]
        );
        assert!(c.entity_relation().schema().contains("genre"));
    }
}
