//! **Paper**: DBLP publications with the RKBExplorer graph — the
//! collection used for the Fig 5(a)/(d) `H` sweeps, and the source of the
//! paper's own drop-and-recover example ("we dropped columns volume and
//! affiliation from the DBLP relation").

use crate::spec::{CollectionSpec, CrossSpec, PropSpec, Scale};

/// `publication(pid, name, venue)` + RKBExplorer-style graph.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0 * 4;
    CollectionSpec {
        name: "Paper".into(),
        type_name: "Publication".into(),
        rel_name: "publication".into(),
        id_attr: "pid".into(),
        id_prefix: "dblp".into(),
        entities: n,
        extra_attrs: vec![("venue".into(), "Venue".into(), 15)],
        props: vec![
            PropSpec::direct("volume", "in_volume", "Vol", 41),
            PropSpec::direct("author", "authored_by", "Author", (n / 3).max(8)),
            PropSpec::via(
                "affiliation",
                "author",
                "affiliated_with",
                "Institute",
                (n / 10).max(5),
            ),
        ],
        noise_props: vec![
            PropSpec::direct("pages", "spans_pages", "Pg", 30),
            PropSpec::deep("grant", &["funded_by", "granted_under"], "Grant", 12),
        ],
        cross: Some(CrossSpec {
            label: "cites".into(),
            per_entity: 2.5,
            relation: None,
        }),
        background: 8.0,
        seed: seed ^ 0x9a9e5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn paper_recovers_volume_and_affiliation() {
        let c = build_collection(spec(Scale::tiny(), 3));
        let kws = c.spec.reference_keywords();
        assert!(kws.contains(&"volume".to_string()));
        assert!(kws.contains(&"affiliation".to_string()));
        // Citations are dense (per_entity 2.5).
        assert!(c.links.len() > c.entity_relation().len());
    }
}
