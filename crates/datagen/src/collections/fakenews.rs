//! **FakeNews**: news sources (Kaggle "Getting real about fake news") with
//! the topicKG graph of categories and themes (News Category Dataset) —
//! the case-study `q2`: "find domain keywords used by fake news authors".

use crate::spec::{CollectionSpec, CrossSpec, PropSpec, Scale};

/// `fakenews(author, country, language)` + topicKG.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0 * 3;
    CollectionSpec {
        name: "FakeNews".into(),
        type_name: "Author".into(),
        rel_name: "fakenews".into(),
        id_attr: "author".into(),
        id_prefix: "auth".into(),
        entities: n,
        extra_attrs: vec![
            ("country".into(), "Country".into(), 12),
            ("language".into(), "Lang".into(), 8),
        ],
        props: vec![
            PropSpec::deep(
                "topic",
                &["published", "categorized_as"],
                "Topic",
                (n / 10).max(5),
            ),
            PropSpec::deep(
                "keyword",
                &["published", "headline_keyword"],
                "Keyword",
                (n / 5).max(8),
            ),
            PropSpec::direct("domain", "hosted_on_domain", "Domain", (n / 12).max(4))
                .with_null_rate(0.1),
        ],
        noise_props: vec![PropSpec::direct("platform", "posts_via", "Platform", 4)],
        cross: Some(CrossSpec {
            label: "retweets".into(),
            per_entity: 1.5,
            relation: None,
        }),
        background: 8.0,
        seed: seed ^ 0xfa4e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn fakenews_has_topics_through_articles() {
        let c = build_collection(spec(Scale::tiny(), 3));
        assert_eq!(
            c.spec.reference_keywords(),
            vec!["topic", "keyword", "domain"]
        );
        // Domain has a null rate → some NULLs expected at this size.
        let d = c.truth.column("domain").unwrap();
        assert!(d.iter().any(|v| v.is_null()));
    }
}
