//! **MovKB**: the IMDB relations paired with YAGO3 — *independent* data
//! sources with overlapped information, so labels differ more from the
//! relational vocabulary than in Movie (harder HER and extraction).

use crate::spec::{CollectionSpec, CrossSpec, PropSpec, Scale};

/// `movkb(mid, name, year, genre)` + a YAGO-flavoured graph.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0 * 5;
    CollectionSpec {
        name: "MovKB".into(),
        type_name: "CreativeWork".into(),
        rel_name: "movkb".into(),
        id_attr: "mid".into(),
        id_prefix: "yg".into(),
        entities: n,
        extra_attrs: vec![
            ("genre".into(), "Genre".into(), 10),
            ("rating".into(), "Stars".into(), 5),
        ],
        props: vec![
            // YAGO-style predicate names, deliberately farther from the
            // keywords than Movie's.
            PropSpec::direct("creator", "wasCreatedBy", "Creator", (n / 4).max(6)),
            PropSpec::deep(
                "location",
                &["wasFilmedIn", "isLocatedIn"],
                "Place",
                (n / 12).max(5),
            ),
            PropSpec::direct("award", "receivedAward", "Prize", 8).with_null_rate(0.35),
        ],
        noise_props: vec![
            PropSpec::direct("wiki", "linksTo", "WikiPage", 40),
            PropSpec::deep("citation", &["citedBy", "appearsIn"], "Work", 25),
        ],
        cross: Some(CrossSpec {
            label: "influences".into(),
            per_entity: 0.6,
            relation: None,
        }),
        background: 8.0,
        seed: seed ^ 0x9a90,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn movkb_has_sparse_awards() {
        let c = build_collection(spec(Scale::tiny(), 3));
        let awards = c.truth.column("award").unwrap();
        let nulls = awards.iter().filter(|v| v.is_null()).count();
        assert!(nulls > 0, "award has a 35% null rate");
    }
}
