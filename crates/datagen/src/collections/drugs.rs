//! **Drugs**: drug products + interactions (DrugBank / PNAS interactions)
//! with the drugKG knowledge graph (KEGG MEDICUS) of efficacies, symptoms
//! and diseases — the paper's case-study collection (`q1`: "find drugs
//! that are for the same disease but in conflict with each other").

use crate::spec::{CollectionSpec, CrossRelation, CrossSpec, PropSpec, Scale};

/// The Drugs collection spec: relations `drug(CAS, name, class)` and
/// `interact(CAS1, CAS2, type)`; properties follow the
/// `drug → efficacy → symptom ← disease` shape of Exp-1.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0;
    CollectionSpec {
        name: "Drugs".into(),
        type_name: "Drug".into(),
        rel_name: "drug".into(),
        id_attr: "CAS".into(),
        id_prefix: "cas".into(),
        entities: n,
        extra_attrs: vec![("class".into(), "Class".into(), 6)],
        props: vec![
            PropSpec::direct("efficacy", "efficacy", "Effect", (n / 6).max(4)),
            PropSpec::via(
                "symptom",
                "efficacy",
                "treats_symptom",
                "Symptom",
                (n / 8).max(4),
            ),
            PropSpec::via(
                "disease",
                "symptom",
                "symptom_of_disease",
                "Disease",
                (n / 10).max(3),
            ),
        ],
        noise_props: vec![
            PropSpec::direct("dosage", "dosage_form", "Form", 5),
            PropSpec::deep("trial", &["studied_in", "conducted_by"], "Lab", 8),
        ],
        cross: Some(CrossSpec {
            label: "interacts_with".into(),
            per_entity: 2.0,
            relation: Some(CrossRelation {
                name: "interact".into(),
                id1: "CAS1".into(),
                id2: "CAS2".into(),
                type_attr: "itype".into(),
                type_pool: vec!["-1".into(), "1".into(), "0".into()],
            }),
        }),
        background: 8.0,
        seed: seed ^ 0xd506,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn drugs_has_interact_relation_and_disease_chain() {
        let c = build_collection(spec(Scale::tiny(), 3));
        assert!(c.db.contains("drug"));
        assert!(c.db.contains("interact"));
        assert_eq!(
            c.spec.reference_keywords(),
            vec!["efficacy", "symptom", "disease"]
        );
        // The disease value is 3 hops from the drug entity.
        let truth_disease = c.truth.column("disease").unwrap();
        assert!(truth_disease.iter().any(|v| !v.is_null()));
    }
}
