//! The six dataset collections of Table II, as spec factories.
//!
//! Relative sizes follow the paper's ordering (Drugs smallest; the two
//! movie collections largest), scaled by the global [`Scale`] knob.

pub mod celebrity;
pub mod drugs;
pub mod fakenews;
pub mod movie;
pub mod movkb;
pub mod paper;

use crate::builder::{build_collection, Collection};
use crate::spec::Scale;

/// The collection names in the paper's order.
pub const ALL: &[&str] = &["Drugs", "FakeNews", "Movie", "MovKB", "Paper", "Celebrity"];

/// Build one collection by name.
pub fn build(name: &str, scale: Scale, seed: u64) -> Option<Collection> {
    let spec = match name {
        "Drugs" => drugs::spec(scale, seed),
        "FakeNews" => fakenews::spec(scale, seed),
        "Movie" => movie::spec(scale, seed),
        "MovKB" => movkb::spec(scale, seed),
        "Paper" => paper::spec(scale, seed),
        "Celebrity" => celebrity::spec(scale, seed),
        _ => return None,
    };
    Some(build_collection(spec))
}

/// Build all six collections.
pub fn build_all(scale: Scale, seed: u64) -> Vec<Collection> {
    ALL.iter()
        .map(|n| build(n, scale, seed).expect("known collection"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_build_at_tiny_scale() {
        let cols = build_all(Scale::tiny(), 1);
        assert_eq!(cols.len(), 6);
        for c in &cols {
            assert!(c.entity_relation().len() >= Scale::tiny().0, "{}", c.name);
            assert!(c.graph.edge_count() > 0, "{}", c.name);
            assert!(!c.spec.reference_keywords().is_empty(), "{}", c.name);
        }
    }

    #[test]
    fn sizes_follow_papers_ordering() {
        let cols = build_all(Scale::tiny(), 1);
        let size = |name: &str| {
            cols.iter()
                .find(|c| c.name == name)
                .unwrap()
                .db
                .total_tuples()
        };
        // Drugs is the smallest collection; the movie collections the
        // largest (Table II).
        assert!(size("Drugs") < size("Movie"));
        assert!(size("Drugs") < size("MovKB"));
        assert!(size("Celebrity") <= size("Paper"));
    }

    #[test]
    fn unknown_collection_is_none() {
        assert!(build("Nope", Scale::tiny(), 1).is_none());
    }
}
