//! **Celebrity**: DBpedia athletes and politicians with YAGO3 — used by
//! the paper for the largest per-collection keyword set (4 extracted
//! relations for heuristic joins).

use crate::spec::{CollectionSpec, CrossSpec, PropSpec, Scale};

/// `celebrity(cid, name, category)` + YAGO-flavoured person graph.
pub fn spec(scale: Scale, seed: u64) -> CollectionSpec {
    let n = scale.0 * 2;
    CollectionSpec {
        name: "Celebrity".into(),
        type_name: "Person".into(),
        rel_name: "celebrity".into(),
        id_attr: "cid".into(),
        id_prefix: "dbp".into(),
        entities: n,
        extra_attrs: vec![("category".into(), "Cat".into(), 2)],
        props: vec![
            PropSpec::direct("team", "playsFor", "Team", (n / 8).max(4)),
            PropSpec::direct("city", "wasBornIn", "City", (n / 6).max(6)),
            PropSpec::via("country", "city", "cityOfCountry", "Nation", 15),
            PropSpec::direct("award", "awardedPrize", "Medal", 10).with_null_rate(0.4),
        ],
        noise_props: vec![PropSpec::direct("height", "hasHeight", "Cm1", 40)],
        cross: Some(CrossSpec {
            label: "knows".into(),
            per_entity: 2.0,
            relation: None,
        }),
        background: 8.0,
        seed: seed ^ 0xce1eb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_collection;

    #[test]
    fn celebrity_has_four_keywords() {
        let c = build_collection(spec(Scale::tiny(), 3));
        assert_eq!(c.spec.reference_keywords().len(), 4);
        // knows-links support the social link joins (Q3-style).
        assert!(!c.links.is_empty());
    }
}
