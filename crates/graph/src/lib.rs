//! # gsj-graph
//!
//! The labeled-graph substrate of the semantic-join system: the paper's
//! `G = (V, E, L)` — a directed graph whose vertices and edges both carry
//! labels (Section II-A).
//!
//! Provides:
//! - [`LabeledGraph`]: an updatable adjacency-list store with interned
//!   labels and O(1) amortized edge insertion.
//! - [`Path`] / [`PathPattern`]: simple undirected paths and their edge-label
//!   patterns, with the `M(ρ, p)` matching predicate of Section III.
//! - [`traversal`]: k-hop BFS neighborhoods and the bidirectional BFS used
//!   by link joins.
//! - [`random_walk`]: corpus generation for training the path language
//!   model `Mρ`.
//! - [`update`]: the `ΔG` batch-update machinery consumed by IncExt.

pub mod graph;
pub mod path;
pub mod random_walk;
pub mod stats;
pub mod traversal;
pub mod update;

pub use graph::{Direction, Edge, LabeledGraph, VertexId};
pub use path::{Path, PathPattern};
pub use update::{GraphUpdate, UpdateReport};
