//! Descriptive statistics for graphs (Table II reporting, cost models).

use crate::graph::LabeledGraph;

/// Summary statistics of a labeled graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Live vertices.
    pub vertices: usize,
    /// Directed edges.
    pub edges: usize,
    /// Distinct edge labels.
    pub edge_labels: usize,
    /// Mean undirected degree over live vertices (`d` in the paper's cost
    /// analysis of pattern discovery: `O(Ne · k · d)`).
    pub avg_degree: f64,
    /// Maximum undirected degree.
    pub max_degree: usize,
}

/// Compute [`GraphStats`] in one pass.
pub fn graph_stats(g: &LabeledGraph) -> GraphStats {
    let mut max_degree = 0usize;
    let mut total_degree = 0usize;
    let mut vertices = 0usize;
    for v in g.vertices() {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        total_degree += d;
        vertices += 1;
    }
    GraphStats {
        vertices,
        edges: g.edge_count(),
        edge_labels: g.edge_label_histogram().len(),
        avg_degree: if vertices == 0 {
            0.0
        } else {
            total_degree as f64 / vertices as f64
        },
        max_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_triangle() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, "x", b);
        g.add_edge(b, "y", c);
        g.add_edge(c, "x", a);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.edge_labels, 2);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = graph_stats(&LabeledGraph::new());
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
