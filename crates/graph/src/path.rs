//! Simple paths and path patterns (Section III, "Path Pattern and Matching").

use crate::graph::VertexId;
use gsj_common::Symbol;

/// A simple undirected path `ρ = (v0, v1, ..., vl)` together with the edge
/// labels along it.
///
/// Because path selection views the graph as undirected, the label sequence
/// cannot be reconstructed from vertices alone — it is stored explicitly.
/// Invariant: `labels.len() + 1 == vertices.len()`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    vertices: Vec<VertexId>,
    labels: Vec<Symbol>,
}

impl Path {
    /// A zero-length path anchored at `start`.
    pub fn new(start: VertexId) -> Self {
        Path {
            vertices: vec![start],
            labels: Vec::new(),
        }
    }

    /// Build from parallel vertex/label lists.
    ///
    /// # Panics
    /// Panics if the invariant `labels.len() + 1 == vertices.len()` fails.
    pub fn from_parts(vertices: Vec<VertexId>, labels: Vec<Symbol>) -> Self {
        assert_eq!(labels.len() + 1, vertices.len(), "path invariant violated");
        Path { vertices, labels }
    }

    /// Append a hop. Returns `false` (and leaves the path unchanged) if the
    /// hop would revisit a vertex — paths are *simple* (Section II-A).
    pub fn push(&mut self, label: Symbol, to: VertexId) -> bool {
        if self.vertices.contains(&to) {
            return false;
        }
        self.vertices.push(to);
        self.labels.push(label);
        true
    }

    /// The number of edges `l` on the path.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for a zero-length (single-vertex) path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The start vertex `v0`.
    #[inline]
    pub fn start(&self) -> VertexId {
        self.vertices[0]
    }

    /// The end vertex `vl` — whose label becomes the extracted attribute
    /// value in Algorithm 1.
    #[inline]
    pub fn end(&self) -> VertexId {
        *self.vertices.last().expect("non-empty vertex list")
    }

    /// The vertices `v0..vl`.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The edge labels along the path.
    pub fn labels(&self) -> &[Symbol] {
        &self.labels
    }

    /// The path pattern `pρ = (L(v0,v1), ..., L(vl-1,vl))`.
    pub fn pattern(&self) -> PathPattern {
        PathPattern(self.labels.clone())
    }

    /// Pattern matching `M(ρ, p)`: true iff `pρ = p`.
    ///
    /// Runs in `O(min(len(pρ), len(p)))` as in the paper — a length check
    /// then element-wise comparison.
    #[inline]
    pub fn matches(&self, p: &PathPattern) -> bool {
        self.labels.len() == p.0.len() && self.labels == p.0
    }

    /// True if `to` already appears on the path (cycle test used by path
    /// selection's stop condition (d)).
    pub fn would_cycle(&self, to: VertexId) -> bool {
        self.vertices.contains(&to)
    }
}

/// A path pattern: the list of edge labels of some path. Two paths are of
/// the same *type* iff their patterns are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathPattern(pub Vec<Symbol>);

impl PathPattern {
    /// Pattern length (number of edge labels).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The edge labels.
    pub fn labels(&self) -> &[Symbol] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsj_common::SymbolTable;

    fn syms() -> (SymbolTable, Symbol, Symbol, Symbol) {
        let t = SymbolTable::new();
        let a = t.intern("based_on");
        let b = t.intern("issue");
        let c = t.intern("regloc");
        (t, a, b, c)
    }

    #[test]
    fn push_maintains_invariant_and_rejects_cycles() {
        let (_, a, b, _) = syms();
        let mut p = Path::new(VertexId(0));
        assert!(p.push(a, VertexId(1)));
        assert!(p.push(b, VertexId(2)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.start(), VertexId(0));
        assert_eq!(p.end(), VertexId(2));
        // Revisiting v0 is a cycle: rejected, path unchanged.
        assert!(p.would_cycle(VertexId(0)));
        assert!(!p.push(a, VertexId(0)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn pattern_equality_defines_path_type() {
        let (_, a, b, c) = syms();
        let mut p1 = Path::new(VertexId(0));
        p1.push(b, VertexId(1));
        p1.push(c, VertexId(2));
        let mut p2 = Path::new(VertexId(7));
        p2.push(b, VertexId(8));
        p2.push(c, VertexId(9));
        assert_eq!(p1.pattern(), p2.pattern());
        assert!(p1.matches(&p2.pattern()));
        let mut p3 = Path::new(VertexId(0));
        p3.push(a, VertexId(1));
        assert!(!p1.matches(&p3.pattern()));
    }

    #[test]
    fn matching_respects_order() {
        let (_, _, b, c) = syms();
        let mut p1 = Path::new(VertexId(0));
        p1.push(b, VertexId(1));
        p1.push(c, VertexId(2));
        let reversed = PathPattern(vec![c, b]);
        assert!(!p1.matches(&reversed));
    }

    #[test]
    fn from_parts_validates() {
        let (_, a, _, _) = syms();
        let p = Path::from_parts(vec![VertexId(0), VertexId(1)], vec![a]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "path invariant")]
    fn from_parts_panics_on_mismatch() {
        let (_, a, b, _) = syms();
        let _ = Path::from_parts(vec![VertexId(0)], vec![a, b]);
    }
}
