//! The labeled graph store.

use gsj_common::{FxHashMap, Symbol, SymbolTable};
use std::fmt;

/// A vertex identifier: an index into the graph's vertex arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A labeled, directed edge endpoint stored in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The edge label (a predicate, e.g. `issue`, `regloc`).
    pub label: Symbol,
    /// The other endpoint.
    pub to: VertexId,
}

/// Which way an edge is oriented relative to the vertex it was enumerated
/// from. Path selection views `G` as undirected (Section II-A), so incident
/// edges of both orientations are offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The edge leaves the enumeration vertex.
    Out,
    /// The edge enters the enumeration vertex.
    In,
}

/// A directed labeled multigraph `G = (V, E, L)`.
///
/// Vertices carry a label that may be a value (`UK`, `G&L ESG`) or a type
/// tag; edge labels typify predicates. Vertex removal leaves a tombstone so
/// `VertexId`s stay stable across updates — exactly what IncExt needs to
/// correlate extracted relations with the evolving graph.
#[derive(Clone)]
pub struct LabeledGraph {
    symbols: SymbolTable,
    labels: Vec<Option<Symbol>>,
    out: Vec<Vec<Edge>>,
    inn: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl LabeledGraph {
    /// Create an empty graph with a fresh symbol table.
    pub fn new() -> Self {
        Self::with_symbols(SymbolTable::new())
    }

    /// Create an empty graph sharing an existing symbol table (so relations
    /// and graph intern into the same space).
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        LabeledGraph {
            symbols,
            labels: Vec::new(),
            out: Vec::new(),
            inn: Vec::new(),
            edge_count: 0,
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Add a vertex with the given label string, returning its id.
    pub fn add_vertex(&mut self, label: &str) -> VertexId {
        let sym = self.symbols.intern(label);
        self.add_vertex_sym(sym)
    }

    /// Add a vertex with an already-interned label.
    pub fn add_vertex_sym(&mut self, label: Symbol) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(Some(label));
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// The label of `v`, or `None` if `v` was removed.
    pub fn vertex_label(&self, v: VertexId) -> Option<Symbol> {
        self.labels.get(v.index()).copied().flatten()
    }

    /// The label of `v` as a string. Panics on a removed/unknown vertex.
    pub fn vertex_label_str(&self, v: VertexId) -> std::sync::Arc<str> {
        let sym = self.vertex_label(v).expect("live vertex");
        self.symbols.resolve(sym)
    }

    /// True iff `v` exists and has not been removed.
    pub fn is_live(&self, v: VertexId) -> bool {
        self.vertex_label(v).is_some()
    }

    /// Insert a directed edge `src --label--> dst`. Duplicate
    /// `(src, label, dst)` triples are ignored (E ⊆ V×V per label).
    /// Returns `true` if the edge was new.
    pub fn add_edge(&mut self, src: VertexId, label: &str, dst: VertexId) -> bool {
        let sym = self.symbols.intern(label);
        self.add_edge_sym(src, sym, dst)
    }

    /// [`Self::add_edge`] with a pre-interned label.
    pub fn add_edge_sym(&mut self, src: VertexId, label: Symbol, dst: VertexId) -> bool {
        assert!(self.is_live(src), "add_edge: dead src {src}");
        assert!(self.is_live(dst), "add_edge: dead dst {dst}");
        let e = Edge { label, to: dst };
        if self.out[src.index()].contains(&e) {
            return false;
        }
        self.out[src.index()].push(e);
        self.inn[dst.index()].push(Edge { label, to: src });
        self.edge_count += 1;
        true
    }

    /// Remove a directed edge; returns `true` if it existed.
    pub fn remove_edge_sym(&mut self, src: VertexId, label: Symbol, dst: VertexId) -> bool {
        let fwd = Edge { label, to: dst };
        let Some(pos) = self
            .out
            .get(src.index())
            .and_then(|es| es.iter().position(|e| *e == fwd))
        else {
            return false;
        };
        self.out[src.index()].swap_remove(pos);
        let back = Edge { label, to: src };
        let pos = self.inn[dst.index()]
            .iter()
            .position(|e| *e == back)
            .expect("in-edge mirrors out-edge");
        self.inn[dst.index()].swap_remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Remove a vertex and all incident edges. Its id becomes a tombstone.
    /// Returns the ids of former neighbors (useful for IncExt's touched set).
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<VertexId> {
        if !self.is_live(v) {
            return Vec::new();
        }
        let mut touched = Vec::new();
        let outs = std::mem::take(&mut self.out[v.index()]);
        for e in outs {
            let back = Edge {
                label: e.label,
                to: v,
            };
            if let Some(pos) = self.inn[e.to.index()].iter().position(|x| *x == back) {
                self.inn[e.to.index()].swap_remove(pos);
            }
            self.edge_count -= 1;
            touched.push(e.to);
        }
        let inns = std::mem::take(&mut self.inn[v.index()]);
        for e in inns {
            let fwd = Edge {
                label: e.label,
                to: v,
            };
            if let Some(pos) = self.out[e.to.index()].iter().position(|x| *x == fwd) {
                self.out[e.to.index()].swap_remove(pos);
            }
            self.edge_count -= 1;
            touched.push(e.to);
        }
        self.labels[v.index()] = None;
        touched
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[Edge] {
        &self.out[v.index()]
    }

    /// Incoming edges of `v` (each `Edge::to` is the source).
    pub fn in_edges(&self, v: VertexId) -> &[Edge] {
        &self.inn[v.index()]
    }

    /// All edges incident to `v` under the undirected view, with their
    /// orientation.
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (Edge, Direction)> + '_ {
        self.out[v.index()]
            .iter()
            .map(|e| (*e, Direction::Out))
            .chain(self.inn[v.index()].iter().map(|e| (*e, Direction::In)))
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len() + self.inn[v.index()].len()
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Upper bound of vertex ids ever allocated (including tombstones).
    pub fn vertex_capacity(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterate over live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|_| VertexId(i as u32)))
    }

    /// Find live vertices by exact label string.
    pub fn vertices_with_label(&self, label: &str) -> Vec<VertexId> {
        match self.symbols.get(label) {
            None => Vec::new(),
            Some(sym) => self
                .vertices()
                .filter(|&v| self.vertex_label(v) == Some(sym))
                .collect(),
        }
    }

    /// Histogram of edge labels, for corpus/vocabulary statistics.
    pub fn edge_label_histogram(&self) -> FxHashMap<Symbol, usize> {
        let mut hist: FxHashMap<Symbol, usize> = FxHashMap::default();
        for v in self.vertices() {
            for e in self.out_edges(v) {
                *hist.entry(e.label).or_insert(0) += 1;
            }
        }
        hist
    }
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabeledGraph")
            .field("vertices", &self.vertex_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (LabeledGraph, VertexId, VertexId, VertexId) {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("pid1");
        let b = g.add_vertex("company1");
        let c = g.add_vertex("UK");
        g.add_edge(a, "issue", b);
        g.add_edge(b, "regloc", c);
        (g, a, b, c)
    }

    #[test]
    fn add_and_count() {
        let (g, a, b, c) = tiny();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(&*g.vertex_label_str(a), "pid1");
        assert_eq!(&*g.vertex_label_str(b), "company1");
        assert_eq!(&*g.vertex_label_str(c), "UK");
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let (mut g, a, b, _) = tiny();
        assert!(!g.add_edge(a, "issue", b));
        assert_eq!(g.edge_count(), 2);
        // Same endpoints, different label is a distinct edge.
        assert!(g.add_edge(a, "owns", b));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn incident_covers_both_orientations() {
        let (g, _, b, _) = tiny();
        let inc: Vec<_> = g.incident(b).collect();
        assert_eq!(inc.len(), 2);
        assert!(inc.iter().any(|(_, d)| *d == Direction::Out));
        assert!(inc.iter().any(|(_, d)| *d == Direction::In));
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let (mut g, a, b, _) = tiny();
        let issue = g.symbols().get("issue").unwrap();
        assert!(g.remove_edge_sym(a, issue, b));
        assert!(!g.remove_edge_sym(a, issue, b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_edges(a).len(), 0);
        assert_eq!(g.in_edges(b).len(), 0);
    }

    #[test]
    fn remove_vertex_tombstones_and_cleans_edges() {
        let (mut g, a, b, c) = tiny();
        let touched = g.remove_vertex(b);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_live(b));
        assert!(g.is_live(a) && g.is_live(c));
        let mut t = touched;
        t.sort();
        assert_eq!(t, vec![a, c]);
        // Ids remain stable.
        assert_eq!(&*g.vertex_label_str(c), "UK");
    }

    #[test]
    fn vertices_with_label_finds_all() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("Bob");
        let _ = g.add_vertex("Ada");
        let b = g.add_vertex("Bob");
        let mut found = g.vertices_with_label("Bob");
        found.sort();
        assert_eq!(found, vec![a, b]);
        assert!(g.vertices_with_label("Guy").is_empty());
    }

    #[test]
    fn edge_label_histogram_counts() {
        let (mut g, a, _, c) = tiny();
        g.add_edge(a, "issue", c);
        let hist = g.edge_label_histogram();
        let issue = g.symbols().get("issue").unwrap();
        let regloc = g.symbols().get("regloc").unwrap();
        assert_eq!(hist[&issue], 2);
        assert_eq!(hist[&regloc], 1);
    }
}
