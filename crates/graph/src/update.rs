//! Batch graph updates `ΔG` (Section III-B).
//!
//! IncExt needs two things from an applied update batch: which vertices
//! were structurally touched (so it can find matched vertices within `k`
//! hops), and which vertices are new (so HER can be re-run on them). The
//! [`UpdateReport`] carries both.

use crate::graph::{LabeledGraph, VertexId};
use gsj_common::FxHashSet;

/// One element of `ΔG`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert a vertex with the given label.
    AddVertex { label: String },
    /// Remove a vertex (and all incident edges).
    RemoveVertex(VertexId),
    /// Insert a directed labeled edge.
    AddEdge {
        src: VertexId,
        label: String,
        dst: VertexId,
    },
    /// Remove a directed labeled edge.
    RemoveEdge {
        src: VertexId,
        label: String,
        dst: VertexId,
    },
}

/// What happened when a batch was applied.
#[derive(Debug, Default, Clone)]
pub struct UpdateReport {
    /// Vertices inserted by the batch, in order.
    pub added_vertices: Vec<VertexId>,
    /// Every vertex whose incident structure changed (edge endpoints,
    /// removed vertices' former neighbors, new vertices). This is the
    /// seed set for IncExt's k-hop affected-vertex computation.
    pub touched: FxHashSet<VertexId>,
    /// Number of update elements that had no effect (e.g. removing a
    /// non-existent edge).
    pub no_ops: usize,
}

/// Apply a batch of updates in order.
///
/// `AddEdge`/`RemoveEdge` referring to vertices added *in the same batch*
/// can use the ids returned in [`UpdateReport::added_vertices`] only after
/// the fact; generators that need forward references should pre-allocate
/// vertices in an earlier batch. (Our workload generator does exactly
/// that.)
pub fn apply_updates(g: &mut LabeledGraph, updates: &[GraphUpdate]) -> UpdateReport {
    let mut report = UpdateReport::default();
    for u in updates {
        match u {
            GraphUpdate::AddVertex { label } => {
                let v = g.add_vertex(label);
                report.added_vertices.push(v);
                report.touched.insert(v);
            }
            GraphUpdate::RemoveVertex(v) => {
                if g.is_live(*v) {
                    let neighbors = g.remove_vertex(*v);
                    report.touched.insert(*v);
                    report.touched.extend(neighbors);
                } else {
                    report.no_ops += 1;
                }
            }
            GraphUpdate::AddEdge { src, label, dst } => {
                if g.is_live(*src) && g.is_live(*dst) && g.add_edge(*src, label, *dst) {
                    report.touched.insert(*src);
                    report.touched.insert(*dst);
                } else {
                    report.no_ops += 1;
                }
            }
            GraphUpdate::RemoveEdge { src, label, dst } => {
                let sym = g.symbols().intern(label);
                if g.remove_edge_sym(*src, sym, *dst) {
                    report.touched.insert(*src);
                    report.touched.insert(*dst);
                } else {
                    report.no_ops += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_touches_endpoints() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let r = apply_updates(
            &mut g,
            &[GraphUpdate::AddEdge {
                src: a,
                label: "e".into(),
                dst: b,
            }],
        );
        assert!(r.touched.contains(&a) && r.touched.contains(&b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(r.no_ops, 0);
    }

    #[test]
    fn remove_vertex_touches_neighbors() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, "e", b);
        g.add_edge(b, "e", c);
        let r = apply_updates(&mut g, &[GraphUpdate::RemoveVertex(b)]);
        assert!(r.touched.contains(&a) && r.touched.contains(&b) && r.touched.contains(&c));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn noop_updates_are_counted() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let r = apply_updates(
            &mut g,
            &[
                GraphUpdate::RemoveEdge {
                    src: a,
                    label: "missing".into(),
                    dst: b,
                },
                GraphUpdate::RemoveVertex(VertexId(99).min(b)), // b is live: not a no-op
            ],
        );
        assert_eq!(r.no_ops, 1);
    }

    #[test]
    fn add_vertex_returns_usable_id() {
        let mut g = LabeledGraph::new();
        let r = apply_updates(
            &mut g,
            &[GraphUpdate::AddVertex {
                label: "fresh".into(),
            }],
        );
        let v = r.added_vertices[0];
        assert!(g.is_live(v));
        assert_eq!(&*g.vertex_label_str(v), "fresh");
    }

    #[test]
    fn batch_size_preserving_insert_delete() {
        // The evaluation generates ΔG with equal insertions and deletions
        // so |G| stays constant (Exp-4). Check the bookkeeping supports it.
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..4).map(|i| g.add_vertex(&format!("v{i}"))).collect();
        g.add_edge(vs[0], "e", vs[1]);
        g.add_edge(vs[2], "e", vs[3]);
        let before = g.edge_count();
        let r = apply_updates(
            &mut g,
            &[
                GraphUpdate::RemoveEdge {
                    src: vs[0],
                    label: "e".into(),
                    dst: vs[1],
                },
                GraphUpdate::AddEdge {
                    src: vs[1],
                    label: "e".into(),
                    dst: vs[2],
                },
            ],
        );
        assert_eq!(g.edge_count(), before);
        assert_eq!(r.no_ops, 0);
    }
}
