//! BFS traversals: k-hop neighborhoods and pairwise k-hop connectivity.
//!
//! Link joins (Section II-B) test whether matching vertices are within `k`
//! hops of each other; IncExt (Section III-B) collects all matched vertices
//! within `k` hops of an update. Both run on the *undirected* view of `G`.
//!
//! Each traversal comes in two forms: the classic infallible API
//! ([`k_hop_set`], [`within_k_hops`], ...) and a `_governed` variant that
//! takes a [`QueryGovernor`] — the governed form checks cancellation /
//! deadline inside the frontier loop (strided, so the overhead is one
//! `fetch_add` per pop) and carries a fault-injection point
//! (`graph.khop` / `graph.bfs`, see DESIGN.md §11). The classic form is
//! a zero-cost wrapper that skips both.

use crate::graph::{LabeledGraph, VertexId};
use gsj_common::{pool, FxHashMap, FxHashSet, QueryGovernor, Result};
use gsj_faults::{fault_point, FaultClass};
use gsj_obs::LazyCounter;

// Aggregate counters, bumped once per call (never inside the BFS loops)
// so the hot paths stay cheap. See DESIGN.md §10.
static KHOP_CALLS: LazyCounter = LazyCounter::new("gsj_graph_khop_calls_total");
static KHOP_VISITED: LazyCounter = LazyCounter::new("gsj_graph_khop_visited_total");
static BFS_CALLS: LazyCounter = LazyCounter::new("gsj_graph_bfs_calls_total");
static BFS_VISITED: LazyCounter = LazyCounter::new("gsj_graph_bfs_visited_total");
static BFS_HITS: LazyCounter = LazyCounter::new("gsj_graph_bfs_hits_total");

// INVARIANT(allowlist): with `gov: None` the `_impl` traversals perform
// no governance checks and no fault points — the only fallible paths —
// so unwrapping in the classic wrappers cannot panic. Pool workers
// spawned for large frontiers follow the same rule: their
// `pool.worker` fault point is armed only under a governor.
const UNGOVERNED: &str = "ungoverned traversal is infallible";

/// Frontier size below which a BFS level expands inline: pool fan-out
/// only pays off once a level scans thousands of adjacency lists.
const PAR_FRONTIER: usize = 1024;

/// Worker count for one BFS level over `len` frontier vertices. A
/// lowered [`pool::with_morsel_rows`] override lowers the engagement
/// threshold with it, so equivalence tests can exercise the parallel
/// path on small graphs.
fn frontier_workers(len: usize) -> usize {
    let w = pool::gsj_threads();
    if w > 1 && len >= PAR_FRONTIER.min(pool::morsel_rows()) {
        w
    } else {
        1
    }
}

/// Expand one BFS level: every neighbor of `frontier` for which
/// `is_seen` is false, in frontier order (duplicates included — the
/// caller dedupes as it inserts, which also folds away the races a
/// frozen `is_seen` view cannot observe). Fans the adjacency scans out
/// across the worker pool when the frontier is large; partials
/// concatenate in chunk order, so the result is identical to the inline
/// scan.
fn expand_level(
    g: &LabeledGraph,
    frontier: &[VertexId],
    is_seen: &(dyn Fn(&VertexId) -> bool + Sync),
    gov: Option<&QueryGovernor>,
    stage: &'static str,
) -> Result<Vec<VertexId>> {
    let scan = |chunk: &[VertexId]| -> Result<Vec<VertexId>> {
        let mut out = Vec::new();
        for &w in chunk {
            if let Some(gov) = gov {
                gov.check_coarse(stage)?;
            }
            for (e, _) in g.incident(w) {
                if !is_seen(&e.to) {
                    out.push(e.to);
                }
            }
        }
        Ok(out)
    };
    let workers = frontier_workers(frontier.len());
    if workers <= 1 {
        return scan(frontier);
    }
    // Oversplit (4 chunks per worker) so uneven adjacency lists
    // rebalance through the shared claim index.
    let chunk = frontier.len().div_ceil(workers * 4).max(1);
    let chunks: Vec<&[VertexId]> = frontier.chunks(chunk).collect();
    let parts = pool::run_tasks(workers, chunks.len(), |i| {
        if gov.is_some() {
            fault_point("pool.worker", FaultClass::Critical)?;
        }
        scan(chunks[i])
    })?;
    Ok(parts.into_iter().flatten().collect())
}

/// All live vertices within `k` undirected hops of `start` (including
/// `start` itself at distance 0).
pub fn k_hop_set(g: &LabeledGraph, start: VertexId, k: usize) -> FxHashSet<VertexId> {
    k_hop_set_impl(g, start, k, None).expect(UNGOVERNED)
}

/// [`k_hop_set`] under a governor: the frontier loop observes
/// cancellation, deadline and budgets at stride granularity.
pub fn k_hop_set_governed(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    gov: &QueryGovernor,
) -> Result<FxHashSet<VertexId>> {
    k_hop_set_impl(g, start, k, Some(gov))
}

fn k_hop_set_impl(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    gov: Option<&QueryGovernor>,
) -> Result<FxHashSet<VertexId>> {
    if gov.is_some() {
        fault_point("graph.khop", FaultClass::Critical)?;
    }
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    if !g.is_live(start) {
        return Ok(seen);
    }
    seen.insert(start);
    let mut frontier = vec![start];
    for _ in 0..k {
        if frontier.is_empty() {
            break;
        }
        let candidates = expand_level(g, &frontier, &|v| seen.contains(v), gov, "graph.khop")?;
        frontier.clear();
        for v in candidates {
            if seen.insert(v) {
                frontier.push(v);
            }
        }
    }
    KHOP_CALLS.inc();
    KHOP_VISITED.add(seen.len() as u64);
    Ok(seen)
}

/// Distances (≤ k) from `start` to every vertex in its k-hop ball.
pub fn k_hop_distances(g: &LabeledGraph, start: VertexId, k: usize) -> FxHashMap<VertexId, usize> {
    k_hop_distances_impl(g, start, k, None).expect(UNGOVERNED)
}

/// [`k_hop_distances`] under a governor.
pub fn k_hop_distances_governed(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    gov: &QueryGovernor,
) -> Result<FxHashMap<VertexId, usize>> {
    k_hop_distances_impl(g, start, k, Some(gov))
}

fn k_hop_distances_impl(
    g: &LabeledGraph,
    start: VertexId,
    k: usize,
    gov: Option<&QueryGovernor>,
) -> Result<FxHashMap<VertexId, usize>> {
    if gov.is_some() {
        fault_point("graph.khop", FaultClass::Critical)?;
    }
    let mut dist: FxHashMap<VertexId, usize> = FxHashMap::default();
    if !g.is_live(start) {
        return Ok(dist);
    }
    dist.insert(start, 0);
    let mut frontier = vec![start];
    for depth in 1..=k {
        if frontier.is_empty() {
            break;
        }
        let candidates = expand_level(g, &frontier, &|v| dist.contains_key(v), gov, "graph.khop")?;
        frontier.clear();
        for v in candidates {
            if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(v) {
                slot.insert(depth);
                frontier.push(v);
            }
        }
    }
    Ok(dist)
}

/// Bidirectional BFS: are `u` and `v` connected within `k` undirected hops?
///
/// This is the join condition of the link join `S1 ⋈G S2` (Section IV-A's
/// "check their pairwise distance via a bi-directional BFS search").
pub fn within_k_hops(g: &LabeledGraph, u: VertexId, v: VertexId, k: usize) -> bool {
    within_k_hops_impl(g, u, v, k, None).expect(UNGOVERNED)
}

/// [`within_k_hops`] under a governor: each frontier expansion observes
/// cancellation and deadline, so even an adversarial high-degree probe
/// stops within one stride of the verdict.
pub fn within_k_hops_governed(
    g: &LabeledGraph,
    u: VertexId,
    v: VertexId,
    k: usize,
    gov: &QueryGovernor,
) -> Result<bool> {
    within_k_hops_impl(g, u, v, k, Some(gov))
}

fn within_k_hops_impl(
    g: &LabeledGraph,
    u: VertexId,
    v: VertexId,
    k: usize,
    gov: Option<&QueryGovernor>,
) -> Result<bool> {
    if gov.is_some() {
        fault_point("graph.bfs", FaultClass::Critical)?;
    }
    BFS_CALLS.inc();
    if !g.is_live(u) || !g.is_live(v) {
        return Ok(false);
    }
    if u == v {
        BFS_HITS.inc();
        return Ok(true);
    }
    if k == 0 {
        return Ok(false);
    }
    // Expand alternately from both ends; meet in the middle.
    let mut from_u: FxHashMap<VertexId, usize> = FxHashMap::default();
    let mut from_v: FxHashMap<VertexId, usize> = FxHashMap::default();
    from_u.insert(u, 0);
    from_v.insert(v, 0);
    let mut frontier_u = vec![u];
    let mut frontier_v = vec![v];
    let (mut du, mut dv) = (0usize, 0usize);

    while du + dv < k && (!frontier_u.is_empty() || !frontier_v.is_empty()) {
        // Expand the smaller frontier first.
        let expand_u = !frontier_u.is_empty()
            && (frontier_v.is_empty() || frontier_u.len() <= frontier_v.len());
        let (frontier, depth, mine, theirs) = if expand_u {
            du += 1;
            (&mut frontier_u, du, &mut from_u, &from_v)
        } else {
            dv += 1;
            (&mut frontier_v, dv, &mut from_v, &from_u)
        };
        // The expensive part — scanning every adjacency list in the
        // frontier — fans out over a frozen view of `mine`; the merge
        // below replays the sequential skip/hit/insert decisions, so
        // the verdict is identical to the inline loop's.
        let candidates = expand_level(g, frontier, &|x| mine.contains_key(x), gov, "graph.bfs")?;
        let mut next = Vec::new();
        for x in candidates {
            if mine.contains_key(&x) {
                continue;
            }
            if let Some(&other_d) = theirs.get(&x) {
                if depth + other_d <= k {
                    BFS_HITS.inc();
                    BFS_VISITED.add((mine.len() + theirs.len()) as u64);
                    return Ok(true);
                }
            }
            mine.insert(x, depth);
            next.push(x);
        }
        *frontier = next;
    }
    BFS_VISITED.add((from_u.len() + from_v.len()) as u64);
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;
    use gsj_common::GsjError;

    /// Chain v0 -> v1 -> ... -> vn.
    fn chain(n: usize) -> (LabeledGraph, Vec<VertexId>) {
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..=n).map(|i| g.add_vertex(&format!("n{i}"))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], "next", w[1]);
        }
        (g, vs)
    }

    #[test]
    fn k_hop_set_on_chain() {
        let (g, vs) = chain(5);
        let ball = k_hop_set(&g, vs[2], 2);
        // Undirected: v0..v4.
        assert_eq!(ball.len(), 5);
        assert!(ball.contains(&vs[0]) && ball.contains(&vs[4]));
        assert!(!ball.contains(&vs[5]));
    }

    #[test]
    fn k_hop_distances_are_exact() {
        let (g, vs) = chain(4);
        let d = k_hop_distances(&g, vs[0], 3);
        assert_eq!(d[&vs[0]], 0);
        assert_eq!(d[&vs[3]], 3);
        assert!(!d.contains_key(&vs[4]));
    }

    #[test]
    fn within_k_matches_chain_distance() {
        let (g, vs) = chain(6);
        assert!(within_k_hops(&g, vs[0], vs[0], 0));
        assert!(within_k_hops(&g, vs[0], vs[3], 3));
        assert!(!within_k_hops(&g, vs[0], vs[3], 2));
        assert!(within_k_hops(&g, vs[6], vs[0], 6));
        assert!(!within_k_hops(&g, vs[6], vs[0], 5));
    }

    #[test]
    fn within_k_is_undirected() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        // Only a -> b exists, but connectivity is checked undirected.
        g.add_edge(a, "e", b);
        assert!(within_k_hops(&g, b, a, 1));
    }

    #[test]
    fn disconnected_components_never_link() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        assert!(!within_k_hops(&g, a, b, 10));
    }

    #[test]
    fn dead_vertices_are_unreachable() {
        let (mut g, vs) = chain(3);
        g.remove_vertex(vs[1]);
        assert!(!within_k_hops(&g, vs[0], vs[2], 5));
        assert!(k_hop_set(&g, vs[1], 2).is_empty());
        // The ball around v0 no longer crosses the tombstone.
        assert_eq!(k_hop_set(&g, vs[0], 3).len(), 1);
    }

    #[test]
    fn bidirectional_agrees_with_unidirectional_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut g = LabeledGraph::new();
            let n = 30usize;
            let vs: Vec<_> = (0..n).map(|i| g.add_vertex(&format!("x{i}"))).collect();
            for _ in 0..45 {
                let a = vs[rng.random_range(0..n)];
                let b = vs[rng.random_range(0..n)];
                if a != b {
                    g.add_edge(a, "e", b);
                }
            }
            for _ in 0..10 {
                let u = vs[rng.random_range(0..n)];
                let v = vs[rng.random_range(0..n)];
                let k = rng.random_range(0..5);
                let expect = k_hop_distances(&g, u, k)
                    .get(&v)
                    .map(|&d| d <= k)
                    .unwrap_or(false);
                assert_eq!(within_k_hops(&g, u, v, k), expect, "u={u} v={v} k={k}");
            }
        }
    }

    #[test]
    fn governed_traversals_match_classic_when_unlimited() {
        let (g, vs) = chain(6);
        let gov = QueryGovernor::unlimited();
        assert_eq!(
            k_hop_set_governed(&g, vs[2], 2, &gov).unwrap(),
            k_hop_set(&g, vs[2], 2)
        );
        assert_eq!(
            k_hop_distances_governed(&g, vs[0], 3, &gov).unwrap(),
            k_hop_distances(&g, vs[0], 3)
        );
        assert_eq!(
            within_k_hops_governed(&g, vs[0], vs[3], 3, &gov).unwrap(),
            within_k_hops(&g, vs[0], vs[3], 3)
        );
    }

    #[test]
    fn governed_traversals_observe_cancellation() {
        // A dense-enough graph that the strided check fires mid-BFS.
        let mut g = LabeledGraph::new();
        let n = 400usize;
        let vs: Vec<_> = (0..n).map(|i| g.add_vertex(&format!("c{i}"))).collect();
        for i in 0..n {
            g.add_edge(vs[i], "e", vs[(i + 1) % n]);
            g.add_edge(vs[i], "e", vs[(i + 7) % n]);
        }
        let gov = QueryGovernor::unlimited();
        gov.cancel();
        assert_eq!(
            k_hop_set_governed(&g, vs[0], 50, &gov),
            Err(GsjError::Cancelled)
        );
        assert_eq!(
            within_k_hops_governed(&g, vs[0], vs[200], 100, &gov),
            Err(GsjError::Cancelled)
        );
    }

    #[test]
    fn governed_traversals_inject_faults() {
        let _x = gsj_faults::exclusive();
        gsj_faults::set_spec(Some("graph.bfs:error")).unwrap();
        let (g, vs) = chain(3);
        let gov = QueryGovernor::unlimited();
        let err = within_k_hops_governed(&g, vs[0], vs[1], 2, &gov).unwrap_err();
        assert!(matches!(err, GsjError::Internal(_)), "{err}");
        // The classic wrapper carries no fault point.
        assert!(within_k_hops(&g, vs[0], vs[1], 2));
        gsj_faults::set_spec(None).unwrap();
    }
}
