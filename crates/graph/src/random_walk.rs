//! Random-walk corpus generation for training the path language model.
//!
//! Section III-A: "To train Mρ, we conduct random walk in G and collect
//! sequences of edge/vertex labels on random walk paths to build a training
//! corpus. Taking the labels as sentences of words, we train Mρ on the
//! corpus driven by the perplexity loss." The corpus construction is
//! unsupervised.
//!
//! A sentence alternates vertex and edge labels:
//! `L(v0), L(v0,v1), L(v1), L(v1,v2), ..., L(vl)` — so that after seeing a
//! vertex label, the model's next-token distribution ranges over plausible
//! edge labels, which is exactly how path selection queries it.

use crate::graph::{Direction, LabeledGraph, VertexId};
use gsj_common::{QueryGovernor, Result, Symbol};
use gsj_faults::{fault_point, FaultClass};
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Number of walks started per live vertex.
    pub walks_per_vertex: usize,
    /// Maximum walk length in edges.
    pub max_len: usize,
    /// RNG seed (corpus generation is deterministic given the graph).
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_vertex: 2,
            max_len: 6,
            seed: 0x5eed,
        }
    }
}

/// One corpus sentence: interleaved vertex/edge label symbols.
pub type Sentence = Vec<Symbol>;

/// Generate a random-walk corpus over the undirected view of `g`.
///
/// Each walk starts at a live vertex, takes uniformly random incident edges
/// (never immediately backtracking when it has another choice), and records
/// the alternating vertex/edge label sequence. Walks of length zero (from
/// isolated vertices) are skipped.
pub fn build_corpus(g: &LabeledGraph, cfg: &WalkConfig) -> Vec<Sentence> {
    // INVARIANT(allowlist): with no governor the impl performs no
    // governance checks and no fault points, so it cannot fail.
    build_corpus_impl(g, cfg, None).expect("ungoverned corpus build is infallible")
}

/// [`build_corpus`] under a governor: the per-walk loop observes
/// cancellation and deadline (strided), and the stage carries the
/// `graph.random_walk` fault point.
pub fn build_corpus_governed(
    g: &LabeledGraph,
    cfg: &WalkConfig,
    gov: &QueryGovernor,
) -> Result<Vec<Sentence>> {
    build_corpus_impl(g, cfg, Some(gov))
}

fn build_corpus_impl(
    g: &LabeledGraph,
    cfg: &WalkConfig,
    gov: Option<&QueryGovernor>,
) -> Result<Vec<Sentence>> {
    let mut span = gsj_obs::span("graph.random_walk");
    static WALKS: gsj_obs::LazyCounter = gsj_obs::LazyCounter::new("gsj_graph_walks_total");
    static TOKENS: gsj_obs::LazyCounter = gsj_obs::LazyCounter::new("gsj_graph_walk_tokens_total");
    if gov.is_some() {
        fault_point("graph.random_walk", FaultClass::Critical)?;
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let vertices: Vec<VertexId> = g.vertices().collect();
    let mut corpus = Vec::with_capacity(vertices.len() * cfg.walks_per_vertex);
    for &start in &vertices {
        for _ in 0..cfg.walks_per_vertex {
            if let Some(gov) = gov {
                gov.check_coarse("graph.random_walk")?;
            }
            if let Some(s) = walk_sentence(g, start, cfg.max_len, &mut rng) {
                corpus.push(s);
            }
        }
    }
    WALKS.add(corpus.len() as u64);
    TOKENS.add(corpus.iter().map(|s| s.len() as u64).sum());
    span.field("vertices", vertices.len())
        .field("sentences", corpus.len());
    Ok(corpus)
}

fn walk_sentence(
    g: &LabeledGraph,
    start: VertexId,
    max_len: usize,
    rng: &mut SmallRng,
) -> Option<Sentence> {
    let mut sentence = Vec::with_capacity(2 * max_len + 1);
    sentence.push(g.vertex_label(start)?);
    let mut current = start;
    let mut prev: Option<VertexId> = None;
    let mut prev_hop: Option<(Symbol, Direction)> = None;
    for _ in 0..max_len {
        let incident: Vec<_> = g.incident(current).collect();
        if incident.is_empty() {
            break;
        }
        // Avoid immediate backtracking and *sibling bounces* (leaving a
        // shared vertex over the same predicate it was entered by, with
        // flipped orientation): both teach the model hub-bouncing
        // statistics instead of property-path structure, and path
        // selection excludes them too.
        let non_back: Vec<_> = incident
            .iter()
            .filter(|(e, d)| {
                Some(e.to) != prev && prev_hop.is_none_or(|(pl, pd)| !(pl == e.label && pd != *d))
            })
            .copied()
            .collect();
        let pool = if non_back.is_empty() {
            &incident
        } else {
            &non_back
        };
        let (edge, dir) = *pool.choose(rng)?;
        sentence.push(edge.label);
        sentence.push(g.vertex_label(edge.to)?);
        prev = Some(current);
        prev_hop = Some((edge.label, dir));
        current = edge.to;
        // Occasionally stop early so the corpus contains short sentences
        // too — the LM must learn where sentences plausibly end.
        if rng.random_range(0..u32::try_from(max_len).unwrap_or(u32::MAX).max(1)) == 0 {
            break;
        }
    }
    if sentence.len() < 3 {
        None
    } else {
        Some(sentence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let hub = g.add_vertex("hub");
        for i in 0..5 {
            let leaf = g.add_vertex(&format!("leaf{i}"));
            g.add_edge(hub, "spoke", leaf);
        }
        g
    }

    #[test]
    fn corpus_is_deterministic_for_fixed_seed() {
        let g = star();
        let cfg = WalkConfig::default();
        assert_eq!(build_corpus(&g, &cfg), build_corpus(&g, &cfg));
    }

    #[test]
    fn sentences_alternate_vertex_edge_labels() {
        let g = star();
        let corpus = build_corpus(&g, &WalkConfig::default());
        assert!(!corpus.is_empty());
        let spoke = g.symbols().get("spoke").unwrap();
        for s in &corpus {
            // Odd positions are edge labels in a star: all "spoke".
            assert!(
                s.len() >= 3 && s.len() % 2 == 1,
                "odd length, got {}",
                s.len()
            );
            for (i, sym) in s.iter().enumerate() {
                if i % 2 == 1 {
                    assert_eq!(*sym, spoke);
                }
            }
        }
    }

    #[test]
    fn isolated_vertices_produce_no_sentences() {
        let mut g = LabeledGraph::new();
        g.add_vertex("lonely");
        let corpus = build_corpus(&g, &WalkConfig::default());
        assert!(corpus.is_empty());
    }

    #[test]
    fn governed_corpus_matches_classic_and_observes_cancel() {
        let g = star();
        let cfg = WalkConfig::default();
        let gov = QueryGovernor::unlimited();
        assert_eq!(
            build_corpus_governed(&g, &cfg, &gov).unwrap(),
            build_corpus(&g, &cfg)
        );
        // Fresh governor: its first strided check runs the full check.
        let gov = QueryGovernor::unlimited();
        gov.cancel();
        assert_eq!(
            build_corpus_governed(&g, &cfg, &gov),
            Err(gsj_common::GsjError::Cancelled)
        );
    }

    #[test]
    fn walk_length_respects_max_len() {
        let g = star();
        let cfg = WalkConfig {
            max_len: 2,
            ..WalkConfig::default()
        };
        for s in build_corpus(&g, &cfg) {
            assert!(s.len() <= 2 * cfg.max_len + 1);
        }
    }
}
