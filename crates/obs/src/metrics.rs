//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Metrics are cheap enough to leave on unconditionally: a counter
//! increment is one atomic add, a histogram observation is two atomic
//! adds plus a linear bucket scan.  Unlike spans (see [`crate::trace`]),
//! metrics are *cumulative* — they accumulate over the process lifetime
//! and are read out as snapshots by the exporters in [`crate::export`].
//!
//! Naming scheme (see DESIGN.md §10): `gsj_<crate>_<stage>_<what>[_total]`,
//! e.g. `gsj_graph_bfs_visited_total` or `gsj_her_candidates_scored_total`.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter. Increments saturate at
/// `u64::MAX` instead of wrapping, so a long-lived process can never
/// report a small value after an overflow.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (e.g. current frontier size).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Record `v` if it exceeds the current value (lossy under races,
    /// which is fine for a high-watermark gauge).
    pub fn record_max(&self, v: i64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        while v > cur {
            match self
                .value
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A fixed-bucket histogram. Bucket upper bounds are set at construction
/// and never change; observations land in the first bucket whose upper
/// bound is `>=` the value, or in the implicit `+Inf` bucket.
///
/// Internally counts are stored per-bucket (non-cumulative); the
/// exporters produce Prometheus-style cumulative counts.
#[derive(Debug)]
pub struct Histogram {
    /// Sorted, strictly increasing upper bounds (finite).
    bounds: Vec<f64>,
    /// One count per finite bucket, plus one trailing `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as f64 bits (CAS loop on add).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Build a histogram with the given finite bucket upper bounds.
    /// Bounds are sorted and deduplicated; NaNs are dropped.
    pub fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| !x.is_nan()).collect();
        b.sort_by(|a, c| a.partial_cmp(c).unwrap());
        b.dedup();
        let n = b.len();
        Histogram {
            bounds: b,
            counts: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Exponential buckets: `start, start*factor, ...` (`n` bounds).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Default latency buckets in nanoseconds: 1µs .. ~17s, factor 4.
    pub fn latency_ns() -> Self {
        Histogram::exponential(1_000.0, 4.0, 13)
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&ub| v <= ub)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Observe a duration in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        self.observe(ns as f64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bucket, ending with the `+Inf` bucket
    /// (which equals `count()` absent in-flight racing observations).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|c| {
                acc = acc.saturating_add(c.load(Ordering::Relaxed));
                acc
            })
            .collect()
    }
}

/// Label set: sorted `(key, value)` pairs, part of a metric's identity.
pub type Labels = Vec<(String, String)>;

fn normalize_labels(labels: &[(&str, &str)]) -> Labels {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

/// One registered metric instrument.
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

/// A metrics registry. Instruments are identified by `(name, labels)`;
/// registering the same identity twice returns the existing instrument.
/// A `BTreeMap` keeps export order deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, (Option<String>, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_with_help(name, labels, None)
    }

    pub fn counter_with_help(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: Option<&str>,
    ) -> Arc<Counter> {
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock();
        let entry = m.entry(key).or_insert_with(|| {
            (
                help.map(str::to_string),
                Metric::Counter(Arc::new(Counter::new())),
            )
        });
        match &entry.1 {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock();
        let entry = m
            .entry(key)
            .or_insert_with(|| (None, Metric::Gauge(Arc::new(Gauge::new()))));
        match &entry.1 {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock();
        let entry = m
            .entry(key)
            .or_insert_with(|| (None, Metric::Histogram(Arc::new(Histogram::new(bounds)))));
        match &entry.1 {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Visit every metric in deterministic `(name, labels)` order.
    pub fn visit(&self, mut f: impl FnMut(&str, &Labels, Option<&str>, &Metric)) {
        let m = self.metrics.lock();
        for (key, (help, metric)) in m.iter() {
            f(&key.name, &key.labels, help.as_deref(), metric);
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every registered instrument (test isolation).
    pub fn clear(&self) {
        self.metrics.lock().clear();
    }
}

/// A lazily registered global counter, for `static` use at hot-path
/// call sites:
///
/// ```ignore
/// static BFS_CALLS: LazyCounter = LazyCounter::new("gsj_graph_bfs_calls_total");
/// BFS_CALLS.add(1);
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Counter {
        self.cell
            .get_or_init(|| Registry::global().counter(self.name, &[]))
    }

    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    pub fn inc(&self) {
        self.get().inc();
    }

    pub fn value(&self) -> u64 {
        self.get().get()
    }
}

/// A lazily registered global gauge, for `static` use at call sites
/// that track a current level (in-flight sessions, queue depth).
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Gauge {
        self.cell
            .get_or_init(|| Registry::global().gauge(self.name, &[]))
    }

    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    pub fn add(&self, n: i64) {
        self.get().add(n);
    }

    pub fn record_max(&self, v: i64) {
        self.get().record_max(v);
    }

    pub fn value(&self) -> i64 {
        self.get().get()
    }
}

/// A lazily registered global histogram with latency-in-ns buckets.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| {
            Registry::global().histogram(self.name, &[], Histogram::latency_ns().bounds())
        })
    }

    pub fn observe(&self, v: f64) {
        self.get().observe(v);
    }

    pub fn observe_ns(&self, ns: u64) {
        self.get().observe_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_add_and_max() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        // Exactly on a bound lands in that bucket (le semantics).
        h.observe(1.0);
        h.observe(1.0000001); // next bucket
        h.observe(5.0);
        h.observe(10.0);
        h.observe(10.5); // +Inf bucket
        h.observe(-3.0); // below the first bound → first bucket
        let cum = h.cumulative_counts();
        assert_eq!(h.bounds(), &[1.0, 5.0, 10.0]);
        // buckets: le1 -> {1.0, -3.0}; le5 -> +{1.0000001, 5.0}; le10 -> +{10.0}; +Inf -> +{10.5}
        assert_eq!(cum, vec![2, 4, 5, 6]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (1.0 + 1.0000001 + 5.0 + 10.0 + 10.5 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let h = Histogram::new(&[10.0, 1.0, 5.0, 5.0, f64::NAN]);
        assert_eq!(h.bounds(), &[1.0, 5.0, 10.0]);
    }

    #[test]
    fn histogram_concurrent_observations_are_counted() {
        let h = Arc::new(Histogram::new(&[100.0]));
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..500 {
                        h.observe((t * 500 + i) as f64 % 200.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 2000);
        assert_eq!(*h.cumulative_counts().last().unwrap(), 2000);
    }

    #[test]
    fn registry_dedups_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        let c = r.counter("x_total", &[("k", "w")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(c.get(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn registry_visit_is_sorted() {
        let r = Registry::new();
        r.counter("b_total", &[]);
        r.counter("a_total", &[]);
        r.gauge("a_gauge", &[]);
        let mut names = Vec::new();
        r.visit(|name, _, _, _| names.push(name.to_string()));
        assert_eq!(names, vec!["a_gauge", "a_total", "b_total"]);
    }

    #[test]
    fn lazy_counter_registers_globally() {
        static T: LazyCounter = LazyCounter::new("gsj_obs_test_lazy_total");
        T.add(2);
        T.inc();
        assert!(T.value() >= 3);
        let again = Registry::global().counter("gsj_obs_test_lazy_total", &[]);
        assert!(again.get() >= 3);
    }

    #[test]
    fn lazy_gauge_registers_globally() {
        static G: LazyGauge = LazyGauge::new("gsj_obs_test_lazy_gauge");
        G.set(5);
        G.add(-2);
        assert_eq!(G.value(), 3);
        G.record_max(9);
        let again = Registry::global().gauge("gsj_obs_test_lazy_gauge", &[]);
        assert_eq!(again.get(), 9);
    }
}
