//! `gsj-obs` — observability substrate for the semantic-join engine.
//!
//! Two complementary facilities (DESIGN.md §10):
//!
//! * **Spans** ([`trace`]): hierarchical wall-time measurements of the
//!   paper's pipeline stages (HER matching, RExt phases, BFS, gSQL
//!   operators). Off by default; enabled by `GSJ_TRACE=1` or
//!   [`set_tracing`]. The disabled path is near-free — one atomic load,
//!   no allocation — so instrumentation can stay in hot code.
//! * **Metrics** ([`metrics`]): always-on cumulative counters, gauges
//!   and fixed-bucket histograms in a process-global [`Registry`],
//!   named `gsj_<crate>_<stage>_<what>[_total]`.
//!
//! Both export as JSON and Prometheus text ([`export`]), and both
//! formats have minimal parsers so exports can be round-trip verified
//! in tests and CI.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{
    escape_json, escape_label_value, metrics_json, parse_json, parse_prometheus_text,
    prometheus_text, spans_json, Json, PromSample, PromSnapshot,
};
pub use metrics::{
    Counter, Gauge, Histogram, Labels, LazyCounter, LazyGauge, LazyHistogram, Metric, Registry,
};
pub use trace::{
    current_thread_ordinal, dropped_spans, event, exclusive_region, format_ns, next_span_id,
    now_ns, ns_since_epoch, render_tree, set_tracing, span, span_forced, take_spans,
    tracing_enabled, SpanGuard, SpanRecord,
};
