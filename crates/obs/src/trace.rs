//! The hierarchical span tracer.
//!
//! A [`SpanGuard`] measures one stage of work: it records a label,
//! key/value fields, wall time, the owning thread, and its parent span
//! (the innermost span open on the same thread when it was created).
//! Finished spans land in a sharded global collector;
//! [`take_spans`] drains it and [`render_tree`] pretty-prints the
//! parent/child forest.
//!
//! Tracing is **off by default** and the disabled path is engineered to
//! cost almost nothing: [`span`] performs one `Once` check (an atomic
//! load after initialization) plus one relaxed `AtomicBool` load and
//! returns an inert guard — no allocation, no clock read, no lock. The
//! `GSJ_TRACE` environment variable (any value except `0`, `false`, or
//! `off`) enables collection process-wide; [`set_tracing`] toggles it
//! programmatically.
//!
//! The collector is bounded ([`MAX_SPANS_PER_SHARD`] per shard): once a
//! shard fills, further spans on threads hashing to it are counted in
//! [`dropped_spans`] instead of buffered, so a forgotten `GSJ_TRACE=1`
//! cannot grow memory without bound.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

/// Shard count for the finished-span collector. Threads hash to shards
/// by thread id, so pushes from different threads rarely contend.
const NSHARDS: usize = 16;

/// Per-shard capacity bound (spans beyond it are dropped and counted).
const MAX_SPANS_PER_SHARD: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SHARDS: [Mutex<Vec<SpanRecord>>; NSHARDS] = [const { Mutex::new(Vec::new()) }; NSHARDS];
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Serializes exclusive trace regions (see [`exclusive_region`]).
static REGION: Mutex<()> = Mutex::new(());

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide trace epoch: all `start_ns` values are offsets from
/// this instant.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch for an `Instant` (0 if it predates
/// the epoch).
pub fn ns_since_epoch(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Nanoseconds since the trace epoch, now.
pub fn now_ns() -> u64 {
    ns_since_epoch(Instant::now())
}

/// Is span collection currently on? Reads `GSJ_TRACE` once per process.
#[inline]
pub fn tracing_enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("GSJ_TRACE") {
            let off = matches!(v.as_str(), "" | "0" | "false" | "off");
            if !off {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span collection on or off process-wide.
pub fn set_tracing(enabled: bool) {
    // Make sure the env check never later overrides an explicit setting.
    ENV_INIT.call_once(|| {});
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Number of spans discarded because a collector shard was full.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// A fresh span id (also used to mint ids for synthetic records bridged
/// from non-span sources, e.g. physical-operator stats).
pub fn next_span_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's ordinal as recorded in [`SpanRecord::thread`]
/// (lets consumers filter a drained collector down to their own spans).
pub fn current_thread_ordinal() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// One finished (or synthetic) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the process.
    pub id: u64,
    /// Innermost span open on the same thread at creation, if any.
    pub parent: Option<u64>,
    /// Stage label, e.g. `rext.path_select`.
    pub label: String,
    /// Key/value annotations recorded while the span was open.
    pub fields: Vec<(String, String)>,
    /// Start offset from the process trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall time between creation and drop, in nanoseconds.
    pub dur_ns: u64,
    /// Small per-process ordinal of the recording thread.
    pub thread: u64,
}

struct SpanInner {
    id: u64,
    parent: Option<u64>,
    label: String,
    fields: Vec<(String, String)>,
    start: Instant,
    start_ns: u64,
}

/// An open span; records itself into the collector when dropped.
/// Inert (all methods no-ops) when tracing was disabled at creation.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attach a key/value field. No-op on an inert guard.
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// The span id, when active (synthetic children can reference it).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; tolerate out-of-order drops from guards
            // kept alive past their children.
            if let Some(pos) = s.iter().rposition(|&id| id == inner.id) {
                s.remove(pos);
            }
        });
        push_record(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            label: inner.label,
            fields: inner.fields,
            start_ns: inner.start_ns,
            dur_ns,
            thread: THREAD_ID.with(|t| *t),
        });
    }
}

fn push_record(rec: SpanRecord) {
    let shard = (rec.thread as usize) % NSHARDS;
    let mut guard = SHARDS[shard].lock();
    if guard.len() >= MAX_SPANS_PER_SHARD {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    guard.push(rec);
}

/// Open a span. Returns an inert guard (near-zero cost) when tracing is
/// disabled.
#[inline]
pub fn span(label: &str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { inner: None };
    }
    span_forced(label)
}

/// Open a span regardless of the global toggle (the exporter tests and
/// `explain_analyze` force collection for their own region).
pub fn span_forced(label: &str) -> SpanGuard {
    let id = next_span_id();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let start = Instant::now();
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            label: label.to_string(),
            fields: Vec::new(),
            start,
            start_ns: ns_since_epoch(start),
        }),
    }
}

/// Record a point-in-time event (a zero-duration span) with fields.
/// No-op when tracing is disabled.
pub fn event(label: &str, fields: &[(&str, &dyn std::fmt::Display)]) {
    if !tracing_enabled() {
        return;
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    push_record(SpanRecord {
        id: next_span_id(),
        parent,
        label: label.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        start_ns: now_ns(),
        dur_ns: 0,
        thread: THREAD_ID.with(|t| *t),
    });
}

/// Drain every collected span, sorted by start time (ties by id).
pub fn take_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for shard in &SHARDS {
        out.append(&mut shard.lock());
    }
    out.sort_by_key(|s| (s.start_ns, s.id));
    out
}

/// Hold this guard to keep other exclusive regions (e.g. concurrent
/// `explain_analyze` calls) from draining the collector mid-flight.
/// Spans recorded outside any region are still collected globally.
pub fn exclusive_region() -> parking_lot::MutexGuard<'static, ()> {
    REGION.lock()
}

/// Format nanoseconds human-readably (same scheme as `EXPLAIN ANALYZE`).
pub fn format_ns(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Render a span forest as an indented text tree. Spans whose parent is
/// absent from `spans` (or `None`) become roots; children sort by start
/// time. Spans from threads other than their parent's still attach
/// normally — the parent link is what matters.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let present: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) if present.contains(&p) => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    fn walk(
        spans: &[SpanRecord],
        children: &std::collections::HashMap<u64, Vec<usize>>,
        i: usize,
        depth: usize,
        out: &mut String,
    ) {
        let s = &spans[i];
        let mut line = format!("{}{}", "  ".repeat(depth), s.label);
        if s.dur_ns > 0 {
            let _ = write!(line, "  [{}]", format_ns(s.dur_ns));
        }
        for (k, v) in &s.fields {
            let _ = write!(line, " {k}={v}");
        }
        out.push_str(&line);
        out.push('\n');
        if let Some(kids) = children.get(&s.id) {
            for &k in kids {
                walk(spans, children, k, depth + 1, out);
            }
        }
    }
    let mut out = String::new();
    for &r in &roots {
        walk(spans, &children, r, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is global; tests that drain it serialize on the
    // region lock so they never steal each other's spans.

    #[test]
    fn disabled_guard_is_inert() {
        let _r = exclusive_region();
        let was = tracing_enabled();
        set_tracing(false);
        let _ = take_spans();
        {
            let mut g = span("should.not.record");
            g.field("k", 1);
            assert!(g.id().is_none());
        }
        event("nor.this", &[]);
        assert!(take_spans().is_empty());
        set_tracing(was);
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let _r = exclusive_region();
        let was = tracing_enabled();
        set_tracing(true);
        let _ = take_spans();
        {
            let outer = span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("inner");
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            event("tick", &[("n", &3)]);
        }
        set_tracing(was);
        let spans = take_spans();
        let outer = spans.iter().find(|s| s.label == "outer").unwrap();
        let inner = spans.iter().find(|s| s.label == "inner").unwrap();
        let tick = spans.iter().find(|s| s.label == "tick").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(tick.parent, Some(outer.id));
        assert_eq!(tick.dur_ns, 0);
        assert_eq!(tick.fields, vec![("n".to_string(), "3".to_string())]);
        assert!(outer.parent.is_none());
    }

    #[test]
    fn concurrent_threads_collect_without_loss() {
        let _r = exclusive_region();
        let was = tracing_enabled();
        set_tracing(true);
        let _ = take_spans();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let _parent = span(&format!("t{t}.parent"));
                        let mut child = span(&format!("t{t}.child"));
                        child.field("i", i);
                    }
                });
            }
        });
        set_tracing(was);
        let spans = take_spans();
        assert_eq!(spans.len(), THREADS * PER_THREAD * 2);
        // Every child points at a parent on its own thread.
        for s in spans.iter().filter(|s| s.label.ends_with(".child")) {
            let p = spans.iter().find(|q| Some(q.id) == s.parent).unwrap();
            assert_eq!(p.thread, s.thread);
            assert!(p.label.ends_with(".parent"));
        }
    }

    #[test]
    fn render_tree_indents_children() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                label: "root".into(),
                fields: vec![("rows".into(), "4".into())],
                start_ns: 0,
                dur_ns: 2_000_000,
                thread: 0,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                label: "child".into(),
                fields: vec![],
                start_ns: 10,
                dur_ns: 1_000,
                thread: 0,
            },
            SpanRecord {
                id: 3,
                parent: Some(99), // orphan → root
                label: "orphan".into(),
                fields: vec![],
                start_ns: 20,
                dur_ns: 0,
                thread: 1,
            },
        ];
        let text = render_tree(&spans);
        assert!(text.contains("root  [2.00ms] rows=4"), "{text}");
        assert!(text.contains("\n  child  [1.00µs]"), "{text}");
        assert!(text.lines().any(|l| l == "orphan"), "{text}");
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(5), "5ns");
        assert_eq!(format_ns(1_500), "1.50µs");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }
}
