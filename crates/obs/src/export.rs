//! Exporters and (minimal) parsers for the two snapshot formats:
//! Prometheus text exposition and JSON.
//!
//! The parsers exist so exports can be *verified* — the CI trace smoke
//! test and the round-trip unit tests parse what the exporters emit and
//! compare values, catching escaping or formatting regressions.

use crate::metrics::{Labels, Metric, Registry};
use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn format_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

/// Render every metric in `registry` in Prometheus text exposition
/// format, with `# TYPE` lines, in deterministic order.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut typed: BTreeMap<String, &'static str> = BTreeMap::new();
    registry.visit(|name, labels, help, metric| {
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if typed.insert(name.to_string(), kind).is_none() {
            if let Some(h) = help {
                let _ = writeln!(out, "# HELP {name} {}", h.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{name}{} {}", format_labels(labels), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{name}{} {}", format_labels(labels), g.get());
            }
            Metric::Histogram(h) => {
                let cum = h.cumulative_counts();
                for (i, ub) in h.bounds().iter().enumerate() {
                    let mut with_le = labels.to_vec();
                    with_le.push(("le".into(), format_f64(*ub)));
                    let _ = writeln!(out, "{name}_bucket{} {}", format_labels(&with_le), cum[i]);
                }
                let mut with_inf = labels.to_vec();
                with_inf.push(("le".into(), "+Inf".into()));
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    format_labels(&with_inf),
                    cum.last().copied().unwrap_or(0)
                );
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    format_labels(labels),
                    format_f64(h.sum())
                );
                let _ = writeln!(out, "{name}_count{} {}", format_labels(labels), h.count());
            }
        }
    });
    out
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Labels,
    pub value: f64,
}

/// A parsed Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromSnapshot {
    pub samples: Vec<PromSample>,
    /// `# TYPE` declarations, metric name → kind.
    pub types: BTreeMap<String, String>,
}

impl PromSnapshot {
    /// Find a sample by name and (exact, sorted) label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| s.value)
    }
}

/// Parse Prometheus text exposition format (the subset the exporter
/// emits: comments, `name{labels} value` lines, no timestamps).
pub fn parse_prometheus_text(text: &str) -> Result<PromSnapshot, String> {
    let mut snap = PromSnapshot::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                snap.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {raw}", lineno + 1);
        // name, optional {labels}, value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').ok_or_else(|| err("unclosed label set"))?;
                (
                    &line[..brace],
                    Some((&line[brace + 1..close], &line[close + 1..])),
                )
            }
            None => (line.split_whitespace().next().unwrap_or(""), None),
        };
        let (labels, value_str) = match rest {
            Some((label_body, tail)) => (parse_label_body(label_body)?, tail.trim()),
            None => (Vec::new(), line[name_part.len()..].trim()),
        };
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|_| err("bad value"))?,
        };
        let mut labels = labels;
        labels.sort();
        snap.samples.push(PromSample {
            name: name_part.trim().to_string(),
            labels,
            value,
        });
    }
    Ok(snap)
}

fn parse_label_body(body: &str) -> Result<Labels, String> {
    let mut labels = Labels::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        // skip separators
        while i < chars.len() && (chars[i] == ',' || chars[i].is_whitespace()) {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        let key_start = i;
        while i < chars.len() && chars[i] != '=' {
            i += 1;
        }
        if i >= chars.len() {
            return Err(format!("label without '=': {body}"));
        }
        let key: String = chars[key_start..i].iter().collect();
        i += 1; // '='
        if i >= chars.len() || chars[i] != '"' {
            return Err(format!("label value not quoted: {body}"));
        }
        i += 1; // opening quote
        let mut value = String::new();
        let mut closed = false;
        while i < chars.len() {
            let c = chars[i];
            if c == '\\' && i + 1 < chars.len() {
                value.push('\\');
                value.push(chars[i + 1]);
                i += 2;
                continue;
            }
            if c == '"' {
                closed = true;
                i += 1;
                break;
            }
            value.push(c);
            i += 1;
        }
        if !closed {
            return Err(format!("unterminated label value: {body}"));
        }
        labels.push((key.trim().to_string(), unescape_label_value(&value)));
    }
    Ok(labels)
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (minimal, for verifying exports — not a general
/// purpose JSON library).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escape a string for a JSON string literal (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a span list as a JSON array of objects with keys
/// `id, parent, label, start_ns, dur_ns, thread, fields`.
pub fn spans_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"label\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"thread\":{},\"fields\":{{",
            s.id,
            s.parent.map_or("null".to_string(), |p| p.to_string()),
            escape_json(&s.label),
            s.start_ns,
            s.dur_ns,
            s.thread,
        );
        for (j, (k, v)) in s.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Serialize every metric in `registry` as a JSON array of objects with
/// keys `name, kind, labels, value` (histograms carry `sum, count,
/// buckets` instead of `value`).
pub fn metrics_json(registry: &Registry) -> String {
    let mut out = String::from("[");
    let mut first = true;
    registry.visit(|name, labels, _help, metric| {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{{\"name\":\"{}\",", escape_json(name));
        out.push_str("\"labels\":{");
        for (j, (k, v)) in labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("},");
        match metric {
            Metric::Counter(c) => {
                let _ = write!(out, "\"kind\":\"counter\",\"value\":{}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, "\"kind\":\"gauge\",\"value\":{}", g.get());
            }
            Metric::Histogram(h) => {
                let cum = h.cumulative_counts();
                let _ = write!(
                    out,
                    "\"kind\":\"histogram\",\"sum\":{},\"count\":{},\"buckets\":[",
                    json_num(h.sum()),
                    h.count()
                );
                for (i, ub) in h.bounds().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"le\":{},\"count\":{}}}", json_num(*ub), cum[i]);
                }
                if !h.bounds().is_empty() {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"le\":null,\"count\":{}}}]",
                    cum.last().copied().unwrap_or(0)
                );
            }
        }
        out.push('}');
    });
    out.push(']');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".into()
    }
}

/// Parse a JSON document. Accepts the subset the exporters emit plus
/// whitespace; rejects trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_json_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_json_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    let c = *chars.get(*pos).ok_or("unexpected end of input")?;
    match c {
        'n' => expect_lit(chars, pos, "null", Json::Null),
        't' => expect_lit(chars, pos, "true", Json::Bool(true)),
        'f' => expect_lit(chars, pos, "false", Json::Bool(false)),
        '"' => parse_json_string(chars, pos).map(Json::Str),
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_json_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        '{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_json_string(chars, pos)?;
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_json_value(chars, pos)?;
                fields.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        c if c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while *pos < chars.len()
                && matches!(chars[*pos], '-' | '+' | '.' | 'e' | 'E' | '0'..='9')
            {
                *pos += 1;
            }
            let s: String = chars[start..*pos].iter().collect();
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {s:?} at offset {start}"))
        }
        other => Err(format!("unexpected character {other:?} at offset {pos}")),
    }
}

fn expect_lit(chars: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    for expected in lit.chars() {
        if chars.get(*pos) != Some(&expected) {
            return Err(format!("expected literal {lit:?} at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_json_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = *chars.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        if *pos + 4 > chars.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex: String = chars[*pos..*pos + 4].iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn prometheus_escaping_round_trips() {
        for raw in [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "new\nline",
            "all \\ \"three\"\ncases \\n literal",
        ] {
            let escaped = escape_label_value(raw);
            assert!(!escaped.contains('\n'), "escaped value must be one line");
            assert_eq!(unescape_label_value(&escaped), raw);
        }
    }

    #[test]
    fn prometheus_text_round_trips_through_parser() {
        let r = Registry::new();
        r.counter(
            "gsj_test_ops_total",
            &[("stage", "her"), ("q", "a\"b\\c\nd")],
        )
        .add(42);
        r.gauge("gsj_test_frontier", &[]).set(-7);
        let h = r.histogram("gsj_test_latency_ns", &[], &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5000.0);

        let text = prometheus_text(&r);
        let snap = parse_prometheus_text(&text).expect("exporter output must parse");

        assert_eq!(
            snap.types.get("gsj_test_ops_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(
            snap.types.get("gsj_test_latency_ns").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(
            snap.get(
                "gsj_test_ops_total",
                &[("stage", "her"), ("q", "a\"b\\c\nd")]
            ),
            Some(42.0)
        );
        assert_eq!(snap.get("gsj_test_frontier", &[]), Some(-7.0));
        assert_eq!(
            snap.get("gsj_test_latency_ns_bucket", &[("le", "10")]),
            Some(1.0)
        );
        assert_eq!(
            snap.get("gsj_test_latency_ns_bucket", &[("le", "100")]),
            Some(2.0)
        );
        assert_eq!(
            snap.get("gsj_test_latency_ns_bucket", &[("le", "+Inf")]),
            Some(3.0)
        );
        assert_eq!(snap.get("gsj_test_latency_ns_count", &[]), Some(3.0));
        assert_eq!(snap.get("gsj_test_latency_ns_sum", &[]), Some(5055.0));
    }

    #[test]
    fn json_parser_handles_exporter_subset() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"nested": "va\"l\nue"}, "c": null, "d": true}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_str(),
            Some("va\"l\nue")
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{broken").is_err());
    }

    #[test]
    fn spans_json_round_trips() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                label: "root \"q\"".into(),
                fields: vec![("rows".into(), "10".into())],
                start_ns: 100,
                dur_ns: 900,
                thread: 0,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                label: "child\nlabel".into(),
                fields: vec![],
                start_ns: 150,
                dur_ns: 40,
                thread: 0,
            },
        ];
        let json = spans_json(&spans);
        let v = parse_json(&json).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("label").unwrap().as_str(), Some("root \"q\""));
        assert_eq!(arr[0].get("parent"), Some(&Json::Null));
        assert_eq!(arr[1].get("parent").unwrap().as_f64(), Some(1.0));
        assert_eq!(arr[1].get("label").unwrap().as_str(), Some("child\nlabel"));
        assert_eq!(
            arr[0].get("fields").unwrap().get("rows").unwrap().as_str(),
            Some("10")
        );
    }

    #[test]
    fn metrics_json_round_trips() {
        let r = Registry::new();
        r.counter("c_total", &[("k", "v")]).add(7);
        let h = r.histogram("h_ns", &[], &[1.0]);
        h.observe(0.5);
        h.observe(2.0);
        let json = metrics_json(&r);
        let v = parse_json(&json).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        let counter = arr
            .iter()
            .find(|m| m.get("name").unwrap().as_str() == Some("c_total"))
            .unwrap();
        assert_eq!(counter.get("value").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            counter.get("labels").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
        let hist = arr
            .iter()
            .find(|m| m.get("name").unwrap().as_str() == Some("h_ns"))
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
        let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].get("le"), Some(&Json::Null));
        assert_eq!(buckets[1].get("count").unwrap().as_f64(), Some(2.0));
    }
}
