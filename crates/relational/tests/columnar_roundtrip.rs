//! Property tests for the columnar ↔ row-view round trip.
//!
//! `Relation` stores typed column vectors with validity bitmaps; the
//! `Vec<Tuple>` view is a lazy compatibility cache. These properties pin
//! the contract: any sequence of rows — homogeneous, mixed-type, or
//! null-riddled — survives `Relation::new` → `tuples()`/`into_parts` →
//! `Relation::new` unchanged, and `Value::Null` maps exactly onto the
//! validity bitmap.

use gsj_common::Value;
use gsj_relational::{Relation, Schema, Tuple};
use proptest::prelude::*;

const MAX_ROWS: usize = 24;
const MAX_ARITY: usize = 4;
const CELLS: usize = MAX_ROWS * MAX_ARITY;

/// Raw generated material a test case draws cells from. The vendored
/// proptest offers ranges/vecs/patterns only, so values are assembled
/// from parallel pools indexed by cell position.
struct Pool {
    tags: Vec<u8>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<String>,
}

impl Pool {
    /// Cell for a homogeneous column of type family `kind` (0 = int,
    /// 1 = float, 2 = bool, 3 = str, 4 = all-null). `tag == 0` makes any
    /// cell null; tags 1/2 pick the awkward floats -0.0 and 0.0, which
    /// are distinct bit patterns that compare equal.
    fn typed_cell(&self, kind: u8, idx: usize) -> Value {
        let tag = self.tags[idx];
        if tag == 0 || kind == 4 {
            return Value::Null;
        }
        match kind {
            0 => Value::Int(self.ints[idx]),
            1 => match tag {
                1 => Value::Float(-0.0),
                2 => Value::Float(0.0),
                _ => Value::Float(self.floats[idx]),
            },
            2 => Value::Bool(self.ints[idx] & 1 == 0),
            _ => Value::str(self.strs[idx].clone()),
        }
    }

    /// Cell with a per-cell type: heterogeneous columns that exercise the
    /// `Mixed` fallback representation.
    fn mixed_cell(&self, idx: usize) -> Value {
        self.typed_cell(self.tags[idx] % 4, (idx + 1) % CELLS)
    }
}

/// Build the per-column grid: `cols[c][r]` for `arity` homogeneous columns.
fn typed_grid(pool: &Pool, kinds: &[u8], rows: usize, arity: usize) -> Vec<Vec<Value>> {
    (0..arity)
        .map(|c| {
            (0..rows)
                .map(|r| pool.typed_cell(kinds[c], c * MAX_ROWS + r))
                .collect()
        })
        .collect()
}

fn grid_to_tuples(cols: &[Vec<Value>], rows: usize) -> Vec<Tuple> {
    (0..rows)
        .map(|r| Tuple::new(cols.iter().map(|c| c[r].clone()).collect()))
        .collect()
}

fn schema(arity: usize) -> Schema {
    let names: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Schema::of("t", &refs)
}

proptest! {
    /// Typed columns with interleaved nulls: rows → columns → rows is the
    /// identity, and `into_parts` gives the rows back unchanged.
    #[test]
    fn typed_columns_round_trip(
        rows in 0usize..24,
        arity in 1usize..4,
        kinds in prop::collection::vec(0u8..5, MAX_ARITY),
        tags in prop::collection::vec(0u8..12, CELLS),
        ints in prop::collection::vec(-1_000_000_000i64..1_000_000_000, CELLS),
        floats in prop::collection::vec(-1e9f64..1e9, CELLS),
        strs in prop::collection::vec("[a-z]{0,6}", CELLS),
    ) {
        let pool = Pool { tags, ints, floats, strs };
        let cols = typed_grid(&pool, &kinds, rows, arity);
        let tuples = grid_to_tuples(&cols, rows);
        let rel = Relation::new(schema(arity), tuples.clone()).unwrap();
        prop_assert_eq!(rel.len(), rows);
        prop_assert_eq!(rel.tuples(), tuples.as_slice());
        // And back out again — the reverse direction.
        let (s, back) = rel.into_parts();
        prop_assert_eq!(back.as_slice(), tuples.as_slice());
        let rel2 = Relation::new(s, back).unwrap();
        prop_assert_eq!(rel2.tuples(), tuples.as_slice());
    }

    /// Heterogeneous per-cell types (the `Mixed` fallback) round trip
    /// identically, and float bit patterns survive storage: -0.0 comes
    /// back as -0.0, not normalized to 0.0.
    #[test]
    fn mixed_columns_round_trip(
        rows in 0usize..24,
        arity in 1usize..4,
        tags in prop::collection::vec(0u8..12, CELLS),
        ints in prop::collection::vec(-1_000_000_000i64..1_000_000_000, CELLS),
        floats in prop::collection::vec(-1e9f64..1e9, CELLS),
        strs in prop::collection::vec("[a-z]{0,6}", CELLS),
    ) {
        let pool = Pool { tags, ints, floats, strs };
        let cols: Vec<Vec<Value>> = (0..arity)
            .map(|c| (0..rows).map(|r| pool.mixed_cell(c * MAX_ROWS + r)).collect())
            .collect();
        let tuples = grid_to_tuples(&cols, rows);
        let rel = Relation::new(schema(arity), tuples.clone()).unwrap();
        prop_assert_eq!(rel.tuples(), tuples.as_slice());
        for (r, t) in tuples.iter().enumerate() {
            for c in 0..arity {
                // Bit-level float preservation, stricter than Value eq.
                if let (Value::Float(a), Value::Float(b)) = (t.get(c), &rel.value_at(r, c)) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Null cells and only null cells are invalid in the bitmap: the
    /// column-level `is_null` agrees with the row view everywhere.
    #[test]
    fn nulls_map_onto_validity_bitmap(
        rows in 1usize..24,
        arity in 1usize..4,
        kinds in prop::collection::vec(0u8..5, MAX_ARITY),
        tags in prop::collection::vec(0u8..12, CELLS),
        ints in prop::collection::vec(-1_000_000_000i64..1_000_000_000, CELLS),
        floats in prop::collection::vec(-1e9f64..1e9, CELLS),
        strs in prop::collection::vec("[a-z]{0,6}", CELLS),
    ) {
        let pool = Pool { tags, ints, floats, strs };
        let cols = typed_grid(&pool, &kinds, rows, arity);
        let rel = Relation::new(schema(arity), grid_to_tuples(&cols, rows)).unwrap();
        for (c, col_vals) in cols.iter().enumerate() {
            for (r, v) in col_vals.iter().enumerate() {
                prop_assert_eq!(
                    rel.col(c).is_null(r),
                    matches!(v, Value::Null),
                    "cell ({}, {}) null status diverged", r, c
                );
            }
        }
    }

    /// Building a relation row-by-row with `push` yields the same relation
    /// (cell-wise equality) and the same row view as bulk construction,
    /// even when reads interleave with writes so the row cache is
    /// repeatedly materialized and invalidated.
    #[test]
    fn push_matches_bulk_construction(
        rows in 0usize..24,
        arity in 1usize..4,
        kinds in prop::collection::vec(0u8..5, MAX_ARITY),
        tags in prop::collection::vec(0u8..12, CELLS),
        ints in prop::collection::vec(-1_000_000_000i64..1_000_000_000, CELLS),
        floats in prop::collection::vec(-1e9f64..1e9, CELLS),
        strs in prop::collection::vec("[a-z]{0,6}", CELLS),
    ) {
        let pool = Pool { tags, ints, floats, strs };
        let cols = typed_grid(&pool, &kinds, rows, arity);
        let tuples = grid_to_tuples(&cols, rows);
        let bulk = Relation::new(schema(arity), tuples.clone()).unwrap();
        let mut incremental = Relation::empty(schema(arity));
        for t in &tuples {
            // Interleave reads so the row cache gets invalidated mid-build.
            let _ = incremental.tuples();
            incremental.push(t.clone()).unwrap();
        }
        prop_assert_eq!(&incremental, &bulk);
        prop_assert_eq!(incremental.tuples(), bulk.tuples());
    }
}
