//! Relation schemas.

use gsj_common::{FxHashMap, GsjError, Result};

/// A relation schema `R(A1, ..., Ak)`.
///
/// Attribute names are plain strings; the gSQL rewriter uses the
/// `alias.attr` convention to disambiguate after renames, and
/// [`Schema::base_name`] recovers the unqualified name. Natural joins match
/// on exact attribute-name equality, as in SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
    index: FxHashMap<String, usize>,
}

impl Schema {
    /// Create a schema; attribute names must be distinct.
    pub fn new(name: impl Into<String>, attrs: Vec<String>) -> Result<Self> {
        let name = name.into();
        let mut index = FxHashMap::default();
        for (i, a) in attrs.iter().enumerate() {
            if index.insert(a.clone(), i).is_some() {
                return Err(GsjError::Schema(format!(
                    "duplicate attribute `{a}` in schema `{name}`"
                )));
            }
        }
        Ok(Schema { name, attrs, index })
    }

    /// Convenience constructor from string slices.
    pub fn of(name: &str, attrs: &[&str]) -> Self {
        Self::new(name, attrs.iter().map(|s| s.to_string()).collect())
            .expect("static schema must be well-formed")
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names, in order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Arity `k`.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of an attribute.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.index.get(attr).copied()
    }

    /// Position of an attribute, erroring with context when absent.
    pub fn require(&self, attr: &str) -> Result<usize> {
        self.position(attr).ok_or_else(|| {
            GsjError::NotFound(format!(
                "attribute `{attr}` in schema `{}({})`",
                self.name,
                self.attrs.join(", ")
            ))
        })
    }

    /// True iff `attr` exists.
    pub fn contains(&self, attr: &str) -> bool {
        self.index.contains_key(attr)
    }

    /// Attributes present in both schemas (the natural-join keys), in
    /// `self`'s order.
    pub fn common_attrs(&self, other: &Schema) -> Vec<String> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// A renamed copy in which every attribute is qualified as
    /// `alias.base`, where `base` is the existing unqualified name. The
    /// schema name becomes the alias. This models SQL's `R as T`.
    pub fn qualify(&self, alias: &str) -> Schema {
        let attrs = self
            .attrs
            .iter()
            .map(|a| format!("{alias}.{}", Self::base_name(a)))
            .collect();
        Schema::new(alias, attrs).expect("qualified names stay distinct")
    }

    /// Strip any `alias.` prefix from an attribute name.
    pub fn base_name(attr: &str) -> &str {
        attr.rsplit_once('.').map(|(_, b)| b).unwrap_or(attr)
    }

    /// Rename the schema (keeping attribute names).
    pub fn with_name(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            attrs: self.attrs.clone(),
            index: self.index.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_lookup() {
        let s = Schema::of("product", &["pid", "name", "price"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("name"), Some(1));
        assert!(s.contains("pid"));
        assert!(!s.contains("risk"));
        assert!(s.require("risk").is_err());
    }

    #[test]
    fn duplicate_attrs_are_rejected() {
        let r = Schema::new("x", vec!["a".into(), "a".into()]);
        assert!(matches!(r, Err(GsjError::Schema(_))));
    }

    #[test]
    fn common_attrs_in_left_order() {
        let a = Schema::of("a", &["x", "y", "z"]);
        let b = Schema::of("b", &["z", "w", "x"]);
        assert_eq!(a.common_attrs(&b), vec!["x".to_string(), "z".to_string()]);
    }

    #[test]
    fn qualify_prefixes_and_strips() {
        let s = Schema::of("customer", &["cid", "name"]);
        let q = s.qualify("T1");
        assert_eq!(q.name(), "T1");
        assert_eq!(q.attrs(), &["T1.cid".to_string(), "T1.name".to_string()]);
        // Re-qualifying replaces the alias instead of stacking.
        let q2 = q.qualify("T2");
        assert_eq!(q2.attrs(), &["T2.cid".to_string(), "T2.name".to_string()]);
        assert_eq!(Schema::base_name("T1.cid"), "cid");
        assert_eq!(Schema::base_name("cid"), "cid");
    }
}
