//! The logical-plan interpreter and the shared operator kernels.
//!
//! Kernels are vectorized over the columnar storage
//! ([`crate::column`]): filters evaluate predicate masks over column
//! slices and gather the surviving rows wholesale, hash joins build and
//! probe on typed key columns (single-key `Int`/`Str` joins never box a
//! `Value` on the hot path) and materialize output via column gathers,
//! and aggregates fold column slices per group. The row-at-a-time path
//! survives as a fallback for predicates containing arithmetic
//! ([`Expr::Bin`]), which can raise per-row errors (type mismatch,
//! division by zero) that a mask evaluation could not order correctly.
//!
//! Joins are hash-based: natural joins key on the common attributes,
//! theta joins mine equi-conjuncts (`left.col = right.col`) from the
//! predicate and hash on those, falling back to a nested loop only for
//! genuinely non-equi predicates — the same discipline a production
//! engine applies. The kernels ([`hash_join_core`],
//! [`nested_loop_core`], [`aggregate`]) are shared with the physical
//! executor ([`crate::physical`]), which wraps them with per-operator
//! statistics.
//!
//! Execution is *morsel-driven* (DESIGN.md §13): when more than one
//! worker is configured (`GSJ_THREADS`, see [`gsj_common::pool`]) and
//! the input exceeds one morsel, filters, hash-join probes, aggregate
//! bucketing and nested loops split their input into fixed-size row
//! ranges and fan them out over scoped worker threads — shared build
//! table, partitioned probe, per-worker partials merged in morsel order.
//! Output is row-for-row identical to the sequential path at any worker
//! count, including which error surfaces (the lowest-indexed failing
//! morsel contains the globally first failing row). One worker is the
//! exact legacy whole-relation path.

use crate::catalog::Database;
use crate::column::{CellRef, Column};
use crate::expr::{AggFunc, CmpOp, Expr};
use crate::plan::{AggSpec, JoinKind, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use gsj_common::pool::{self, Mergeable};
use gsj_common::{FxHashMap, FxHashSet, GsjError, QueryGovernor, Result, Value};
use std::cmp::Ordering;
use std::ops::Range;

/// Execute a plan against a database with the interpreter.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan(name) => Ok(db.get(name)?.clone()),
        LogicalPlan::Values(rel) => Ok(rel.clone()),
        LogicalPlan::Select { input, pred } => filter(execute(input, db)?, pred),
        LogicalPlan::Project { input, cols } => project(&execute(input, db)?, cols),
        LogicalPlan::Qualify { input, alias } => {
            let rel = execute(input, db)?;
            Ok(rel.qualified(alias))
        }
        LogicalPlan::Join { left, right, kind } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            match kind {
                JoinKind::Natural => natural_join(&l, &r),
                JoinKind::Theta(pred) => theta_join(&l, &r, pred),
            }
        }
        LogicalPlan::Union { left, right } => union(execute(left, db)?, execute(right, db)?),
        LogicalPlan::Difference { left, right } => {
            difference(execute(left, db)?, &execute(right, db)?)
        }
        LogicalPlan::Distinct { input } => Ok(distinct(execute(input, db)?)),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(&execute(input, db)?, group_by, aggs),
        LogicalPlan::Sort { input, by, desc } => sort(execute(input, db)?, by, *desc),
        LogicalPlan::Limit { input, n } => Ok(execute(input, db)?.head(*n)),
    }
}

/// The join key of `t` at `keys`, as borrowed values; `None` when any key
/// cell is NULL (SQL semantics: NULL keys never match). Row-oriented
/// compatibility helper — the vectorized kernels key on column cells.
#[inline]
pub fn hash_key<'a>(t: &'a Tuple, keys: &[usize]) -> Option<Vec<&'a Value>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let v = t.get(k);
        if v.is_null() {
            return None;
        }
        out.push(v);
    }
    Some(out)
}

/// Build-side hash index: borrowed key → row indices. No key `Value` is
/// cloned; the map borrows from `tuples`. Row-oriented compatibility
/// helper — see [`hash_join_core`] for the columnar build/probe.
pub fn build_row_index<'a>(
    tuples: &'a [Tuple],
    keys: &[usize],
) -> FxHashMap<Vec<&'a Value>, Vec<usize>> {
    let mut table: FxHashMap<Vec<&'a Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in tuples.iter().enumerate() {
        if let Some(key) = hash_key(t, keys) {
            table.entry(key).or_default().push(i);
        }
    }
    table
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    match pred {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Mine hashable equi-conjuncts (`l.col = r.col` with the two sides
/// resolving on opposite inputs) out of a theta predicate. Returns
/// parallel position vectors into the left and right schemas.
pub fn equi_positions(pred: &Expr, ls: &Schema, rs: &Schema) -> (Vec<usize>, Vec<usize>) {
    let mut l_keys = Vec::new();
    let mut r_keys = Vec::new();
    for c in conjuncts(pred) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let (la, ra) = (
                    Expr::resolve_column(ls, ca).ok(),
                    Expr::resolve_column(rs, ca).ok(),
                );
                let (lb, rb) = (
                    Expr::resolve_column(ls, cb).ok(),
                    Expr::resolve_column(rs, cb).ok(),
                );
                match (la, ra, lb, rb) {
                    (Some(i), None, None, Some(j)) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    (None, Some(j), Some(i), None) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    _ => {}
                }
            }
        }
    }
    (l_keys, r_keys)
}

/// Build/probe cardinalities observed by one hash-join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Rows hashed into the build table.
    pub build_rows: usize,
    /// Rows streamed through the probe side.
    pub probe_rows: usize,
}

impl Mergeable for JoinStats {
    fn merge(&mut self, other: Self) {
        // Probe morsels share one build table and partition the probe
        // side between them.
        debug_assert_eq!(self.build_rows, other.build_rows);
        self.probe_rows += other.probe_rows;
    }
}

/// How a hash join combines its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashJoinMode {
    /// Natural join: output = left attrs ++ right-minus-common; the
    /// smaller input becomes the build side.
    Natural,
    /// Equi join mined from a theta predicate: output is the full
    /// concatenation, the left input is the build side, and the residual
    /// predicate is re-verified on every candidate pair.
    Equi,
}

// ---------------------------------------------------------------------
// Morsel-driven fan-out (DESIGN.md §13).
// ---------------------------------------------------------------------

/// Worker count for a kernel over `len` rows: parallel only when more
/// than one worker is configured *and* the input spans at least two
/// morsels — small inputs never pay thread-spawn overhead, and one
/// worker is the exact legacy path.
fn par_workers(len: usize) -> usize {
    let w = pool::gsj_threads();
    if w > 1 && len > pool::morsel_rows() {
        w
    } else {
        1
    }
}

/// Parallel kernel invocations (a kernel engaged the worker pool).
static PAR_KERNELS: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_relational_parallel_kernels_total");
/// Morsels dispatched to pool workers by parallel kernels.
static PAR_MORSELS: gsj_obs::LazyCounter =
    gsj_obs::LazyCounter::new("gsj_relational_parallel_morsels_total");

/// Fan `task` out over `ranges` on `workers` threads and fold the
/// partials in morsel order. Every worker task carries the
/// `pool.worker` fault point; a panicking task is contained by the
/// pool's `catch_unwind` and surfaces as [`GsjError::Internal`].
fn par_morsels<R, F>(workers: usize, ranges: &[Range<usize>], task: F) -> Result<Option<R>>
where
    R: Send + Mergeable,
    F: Fn(Range<usize>) -> Result<R> + Sync,
{
    PAR_KERNELS.inc();
    PAR_MORSELS.add(ranges.len() as u64);
    let partials = pool::run_tasks(workers, ranges.len(), |i| {
        gsj_faults::fault_point("pool.worker", gsj_faults::FaultClass::Critical)?;
        task(ranges[i].clone())
    })?;
    let mut iter = partials.into_iter();
    let Some(mut total) = iter.next() else {
        return Ok(None);
    };
    for p in iter {
        total.merge(p);
    }
    Ok(Some(total))
}

/// Per-morsel join-probe partial: matched `(left, right)` row-index
/// pairs plus the morsel's [`JoinStats`] contribution. Morsels cover
/// increasing probe ranges, so in-order concatenation reproduces the
/// sequential probe-major emit order exactly.
struct ProbePartial {
    li: Vec<u32>,
    ri: Vec<u32>,
    stats: JoinStats,
}

impl Mergeable for ProbePartial {
    fn merge(&mut self, other: Self) {
        self.li.extend(other.li);
        self.ri.extend(other.ri);
        self.stats.merge(other.stats);
    }
}

/// Per-morsel filter partial: surviving global row indices (increasing
/// within and across morsels).
struct IdxPartial(Vec<u32>);

impl Mergeable for IdxPartial {
    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

/// Per-morsel nested-loop partial: joined output tuples in
/// (left-major, right-minor) order.
struct RowsPartial(Vec<Tuple>);

impl Mergeable for RowsPartial {
    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

/// A hash-join build table over borrowed key cells, built once and then
/// shared (read-only) across probe workers. NULL keys never enter the
/// table. Single-key joins where both the build and probe columns are
/// typed `Int` (resp. `Str`) index the unboxed payloads directly;
/// everything else keys on borrowed [`CellRef`]s, whose hash/eq mirror
/// `Value` (so `Int 3` still matches `Float 3.0` across
/// differently-typed columns).
enum JoinTable<'a> {
    Int(FxHashMap<i64, Vec<u32>>),
    Str(FxHashMap<&'a str, Vec<u32>>),
    Cells(FxHashMap<Vec<CellRef<'a>>, Vec<u32>>),
}

impl<'a> JoinTable<'a> {
    /// Build the table on `build`'s key columns. The probe side is
    /// consulted only to decide whether an unboxed fast path applies.
    fn build(
        build: &'a Relation,
        probe: &'a Relation,
        build_keys: &[usize],
        probe_keys: &[usize],
    ) -> Self {
        if build_keys.len() == 1 {
            match (build.col(build_keys[0]), probe.col(probe_keys[0])) {
                (
                    Column::Int {
                        data: bd,
                        validity: bv,
                    },
                    Column::Int { .. },
                ) => {
                    let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                    for (i, &k) in bd.iter().enumerate() {
                        if bv.get(i) {
                            table.entry(k).or_default().push(i as u32);
                        }
                    }
                    return JoinTable::Int(table);
                }
                (
                    Column::Str {
                        data: bd,
                        validity: bv,
                    },
                    Column::Str { .. },
                ) => {
                    let mut table: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
                    for (i, k) in bd.iter().enumerate() {
                        if bv.get(i) {
                            table.entry(k).or_default().push(i as u32);
                        }
                    }
                    return JoinTable::Str(table);
                }
                _ => {}
            }
        }
        let mut table: FxHashMap<Vec<CellRef<'a>>, Vec<u32>> = FxHashMap::default();
        'build: for i in 0..build.len() {
            let mut key = Vec::with_capacity(build_keys.len());
            for &k in build_keys {
                let cell = build.col(k).cell(i);
                if cell.is_null() {
                    continue 'build;
                }
                key.push(cell);
            }
            table.entry(key).or_default().push(i as u32);
        }
        JoinTable::Cells(table)
    }

    /// Stream probe rows `range` through the table, emitting
    /// `(build_row, probe_row)` for every match in probe-major order.
    fn probe_range(
        &self,
        probe: &'a Relation,
        probe_keys: &[usize],
        range: Range<usize>,
        mut emit: impl FnMut(u32, u32),
    ) {
        match self {
            JoinTable::Int(table) => {
                let Column::Int {
                    data: pd,
                    validity: pv,
                } = probe.col(probe_keys[0])
                else {
                    unreachable!("Int build table implies a typed-Int probe column")
                };
                for j in range {
                    if pv.get(j) {
                        if let Some(rows) = table.get(&pd[j]) {
                            for &bi in rows {
                                emit(bi, j as u32);
                            }
                        }
                    }
                }
            }
            JoinTable::Str(table) => {
                let Column::Str {
                    data: pd,
                    validity: pv,
                } = probe.col(probe_keys[0])
                else {
                    unreachable!("Str build table implies a typed-Str probe column")
                };
                for j in range {
                    if pv.get(j) {
                        if let Some(rows) = table.get(pd[j].as_ref()) {
                            for &bi in rows {
                                emit(bi, j as u32);
                            }
                        }
                    }
                }
            }
            JoinTable::Cells(table) => {
                'probe: for j in range {
                    let mut key = Vec::with_capacity(probe_keys.len());
                    for &k in probe_keys {
                        let cell = probe.col(k).cell(j);
                        if cell.is_null() {
                            continue 'probe;
                        }
                        key.push(cell);
                    }
                    if let Some(rows) = table.get(&key) {
                        for &bi in rows {
                            emit(bi, j as u32);
                        }
                    }
                }
            }
        }
    }
}

/// Probe the whole probe side against a shared build table, in parallel
/// when configured. `swap` flips the emitted pair to (probe, build) —
/// the natural join uses it when the right input was the build side.
/// Returns the matched (left, right) index vectors plus merged stats.
fn probe_all(
    table: &JoinTable<'_>,
    probe: &Relation,
    probe_keys: &[usize],
    build_rows: usize,
    swap: bool,
    gov: Option<&QueryGovernor>,
) -> Result<(Vec<u32>, Vec<u32>, JoinStats)> {
    let probe_morsel = |range: Range<usize>| -> Result<ProbePartial> {
        if let Some(gov) = gov {
            gov.check("relational.parallel_probe")?;
        }
        let mut li: Vec<u32> = Vec::new();
        let mut ri: Vec<u32> = Vec::new();
        let probe_rows = range.len();
        table.probe_range(probe, probe_keys, range, |bi, pi| {
            if swap {
                li.push(pi);
                ri.push(bi);
            } else {
                li.push(bi);
                ri.push(pi);
            }
        });
        if let Some(gov) = gov {
            // Memory charging from the worker itself: the partial's
            // index buffers are this morsel's materialized state.
            gov.charge_mem(8 * li.len() as u64);
        }
        Ok(ProbePartial {
            li,
            ri,
            stats: JoinStats {
                build_rows,
                probe_rows,
            },
        })
    };
    let workers = par_workers(probe.len());
    let empty = JoinStats {
        build_rows,
        probe_rows: probe.len(),
    };
    if workers <= 1 {
        // Legacy path: one whole-relation morsel, no pool, no worker
        // fault points.
        if probe.is_empty() {
            return Ok((Vec::new(), Vec::new(), empty));
        }
        let p = probe_morsel(0..probe.len())?;
        return Ok((p.li, p.ri, p.stats));
    }
    gsj_faults::fault_point(
        "relational.parallel_probe",
        gsj_faults::FaultClass::Critical,
    )?;
    let ranges = pool::morsel_ranges(probe.len());
    match par_morsels(workers, &ranges, probe_morsel)? {
        Some(p) => Ok((p.li, p.ri, p.stats)),
        None => Ok((Vec::new(), Vec::new(), empty)),
    }
}

/// The single hash-join kernel behind [`natural_join`], [`theta_join`],
/// and the physical `HashJoin` operator. Matching is index-based: the
/// probe emits `(build, probe)` row-index pairs and the output columns
/// are gathered wholesale — no per-row tuple assembly.
pub fn hash_join_core(
    l: &Relation,
    r: &Relation,
    l_keys: &[usize],
    r_keys: &[usize],
    mode: HashJoinMode,
    residual: Option<&Expr>,
    schema: Schema,
) -> Result<(Relation, JoinStats)> {
    hash_join_governed(l, r, l_keys, r_keys, mode, residual, schema, None)
}

/// [`hash_join_core`] with a governor wired into the probe workers: the
/// build is sequential (it is the shared table), the probe fans out
/// over morsels, and every worker runs governance checks and charges
/// its local match buffers.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_governed(
    l: &Relation,
    r: &Relation,
    l_keys: &[usize],
    r_keys: &[usize],
    mode: HashJoinMode,
    residual: Option<&Expr>,
    schema: Schema,
    gov: Option<&QueryGovernor>,
) -> Result<(Relation, JoinStats)> {
    gsj_faults::fault_point("relational.hash_join", gsj_faults::FaultClass::Critical)?;
    match mode {
        HashJoinMode::Natural => {
            let r_rest: Vec<usize> = (0..r.schema().arity())
                .filter(|i| !r_keys.contains(i))
                .collect();
            // Build on the smaller side.
            let build_left = l.len() <= r.len();
            let (build, probe, build_keys, probe_keys) = if build_left {
                (l, r, l_keys, r_keys)
            } else {
                (r, l, r_keys, l_keys)
            };
            let table = JoinTable::build(build, probe, build_keys, probe_keys);
            let (li, ri, stats) =
                probe_all(&table, probe, probe_keys, build.len(), !build_left, gov)?;
            let out = Relation::gather_concat(l, &li, r, &ri, Some(&r_rest), schema)?;
            Ok((out, stats))
        }
        HashJoinMode::Equi => {
            let table = JoinTable::build(l, r, l_keys, r_keys);
            let (li, ri, stats) = probe_all(&table, r, r_keys, l.len(), false, gov)?;
            let joined = Relation::gather_concat(l, &li, r, &ri, None, schema)?;
            let out = match residual {
                Some(pred) => filter_inner(joined, pred, gov)?,
                None => joined,
            };
            Ok((out, stats))
        }
    }
}

/// The nested-loop kernel: every pair, filtered by `pred` over the
/// concatenated schema. Genuinely non-equi predicates only — stays
/// row-at-a-time because `pred` may raise per-row errors.
pub fn nested_loop_core(
    l: &Relation,
    r: &Relation,
    pred: &Expr,
    schema: Schema,
) -> Result<Relation> {
    nested_loop_governed(l, r, pred, schema, None)
}

/// [`nested_loop_core`] with governed, morsel-parallel outer chunks.
/// Each worker owns a contiguous slice of left rows and scans the full
/// right side; partials concatenate in chunk order, so the output (and
/// any per-row predicate error) matches the sequential l-major loop.
pub fn nested_loop_governed(
    l: &Relation,
    r: &Relation,
    pred: &Expr,
    schema: Schema,
    gov: Option<&QueryGovernor>,
) -> Result<Relation> {
    // The pair space is l.len() * r.len(); chunk the outer side so each
    // morsel covers roughly `morsel_rows` pairs.
    let pairs = l.len().saturating_mul(r.len());
    let workers = if pool::gsj_threads() > 1 && l.len() > 1 && pairs > pool::morsel_rows() {
        pool::gsj_threads()
    } else {
        1
    };
    let scan_chunk = |range: Range<usize>| -> Result<RowsPartial> {
        if let Some(gov) = gov {
            gov.check("relational.nested_loop")?;
        }
        let mut out = Vec::new();
        for lt in &l.tuples()[range] {
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                if pred.holds(&schema, &joined)? {
                    out.push(joined);
                }
            }
        }
        if let Some(gov) = gov {
            gov.charge_mem(out.len() as u64 * 16);
        }
        Ok(RowsPartial(out))
    };
    let rows = if workers <= 1 {
        if l.is_empty() {
            Vec::new()
        } else {
            scan_chunk(0..l.len())?.0
        }
    } else {
        let chunk = (pool::morsel_rows() / r.len().max(1)).max(1);
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < l.len() {
            let end = (start + chunk).min(l.len());
            ranges.push(start..end);
            start = end;
        }
        match par_morsels(workers, &ranges, scan_chunk)? {
            Some(p) => p.0,
            None => Vec::new(),
        }
    };
    Relation::new(schema, rows)
}

/// The concatenated-output schema of a theta-style join; errors when
/// attribute names collide.
pub(crate) fn concat_schema(l: &Relation, r: &Relation, sep: &str, what: &str) -> Result<Schema> {
    let mut attrs = l.schema().attrs().to_vec();
    attrs.extend(r.schema().attrs().iter().cloned());
    Schema::new(
        format!("{}{sep}{}", l.schema().name(), r.schema().name()),
        attrs,
    )
    .map_err(|e| {
        GsjError::Schema(format!(
            "{what} requires distinct attribute names (qualify inputs first): {e}"
        ))
    })
}

/// Natural-join key positions (left, right) and merged output schema.
pub(crate) type NaturalJoinParts = (Vec<usize>, Vec<usize>, Schema);

/// The merged-output schema of a natural join, plus the key positions.
pub(crate) fn natural_join_parts(l: &Relation, r: &Relation) -> Result<Option<NaturalJoinParts>> {
    let common = l.schema().common_attrs(r.schema());
    if common.is_empty() {
        return Ok(None);
    }
    let l_keys: Vec<usize> = common
        .iter()
        .map(|a| l.schema().require(a))
        .collect::<Result<_>>()?;
    let r_keys: Vec<usize> = common
        .iter()
        .map(|a| r.schema().require(a))
        .collect::<Result<_>>()?;
    let mut attrs: Vec<String> = l.schema().attrs().to_vec();
    attrs.extend(
        (0..r.schema().arity())
            .filter(|i| !r_keys.contains(i))
            .map(|i| r.schema().attrs()[i].clone()),
    );
    let schema = Schema::new(
        format!("{}_join_{}", l.schema().name(), r.schema().name()),
        attrs,
    )?;
    Ok(Some((l_keys, r_keys, schema)))
}

/// Natural hash join on all common attribute names. NULL keys never match
/// (SQL semantics).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    natural_join_governed(l, r, None)
}

/// [`natural_join`] with a governor wired into the probe workers.
pub fn natural_join_governed(
    l: &Relation,
    r: &Relation,
    gov: Option<&QueryGovernor>,
) -> Result<Relation> {
    match natural_join_parts(l, r)? {
        None => product(l, r),
        Some((l_keys, r_keys, schema)) => Ok(hash_join_governed(
            l,
            r,
            &l_keys,
            &r_keys,
            HashJoinMode::Natural,
            None,
            schema,
            gov,
        )?
        .0),
    }
}

/// Cartesian product; attribute names must stay distinct.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = concat_schema(l, r, "_x_", "product")?;
    let n = l.len() * r.len();
    let mut li: Vec<u32> = Vec::with_capacity(n);
    let mut ri: Vec<u32> = Vec::with_capacity(n);
    for i in 0..l.len() as u32 {
        for j in 0..r.len() as u32 {
            li.push(i);
            ri.push(j);
        }
    }
    Relation::gather_concat(l, &li, r, &ri, None, schema)
}

/// Theta join. Equi-conjuncts whose two column sides resolve on opposite
/// inputs become hash keys; the full predicate is still verified on each
/// candidate pair.
pub fn theta_join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let schema = concat_schema(l, r, "_tj_", "theta join")?;
    let (l_keys, r_keys) = equi_positions(pred, l.schema(), r.schema());
    if l_keys.is_empty() {
        nested_loop_core(l, r, pred, schema)
    } else {
        Ok(hash_join_core(
            l,
            r,
            &l_keys,
            &r_keys,
            HashJoinMode::Equi,
            Some(pred),
            schema,
        )?
        .0)
    }
}

/// True when `pred` can be evaluated as a column mask: comparisons and
/// NULL tests over direct column/literal operands, combined with
/// and/or/not. Arithmetic ([`Expr::Bin`]) is excluded — it can raise
/// per-row errors whose ordering the row path defines.
fn mask_vectorizable(pred: &Expr) -> bool {
    fn operand_ok(e: &Expr) -> bool {
        matches!(e, Expr::Col(_) | Expr::Lit(_))
    }
    match pred {
        Expr::Col(_) | Expr::Lit(_) => true,
        Expr::Cmp(_, a, b) => operand_ok(a) && operand_ok(b),
        Expr::And(a, b) | Expr::Or(a, b) => mask_vectorizable(a) && mask_vectorizable(b),
        Expr::Not(e) => mask_vectorizable(e),
        Expr::IsNull(e) => operand_ok(e),
        Expr::Bin(..) => false,
    }
}

/// A comparison operand bound once per batch: a column reference
/// resolved to its column, or a literal.
enum Operand<'a> {
    Col(&'a Column),
    Lit(&'a Value),
}

impl<'a> Operand<'a> {
    fn bind(e: &'a Expr, rel: &'a Relation) -> Result<Operand<'a>> {
        match e {
            Expr::Col(name) => {
                let i = Expr::resolve_column(rel.schema(), name)?;
                Ok(Operand::Col(rel.col(i)))
            }
            Expr::Lit(v) => Ok(Operand::Lit(v)),
            _ => unreachable!("mask_vectorizable admits only Col/Lit operands"),
        }
    }

    #[inline]
    fn cell(&self, row: usize) -> CellRef<'a> {
        match self {
            Operand::Col(c) => c.cell(row),
            Operand::Lit(v) => CellRef::from_value(v),
        }
    }
}

/// Evaluate a vectorizable predicate as a boolean mask over the rows in
/// `range` (a morsel; the sequential path passes the whole relation as
/// one morsel).
///
/// Short-circuit parity with the row path: `And` does not touch (or
/// even name-resolve) its right branch when the left mask has no true
/// bit in this morsel, and `Or` skips the right branch when the left
/// mask is all true — exactly the cases where the row evaluator would
/// never have evaluated the right branch for any row in the morsel.
/// Morsels where the branch *would* have been evaluated still bind it,
/// so any name-resolution error the sequential whole-relation pass
/// would raise is raised by some morsel (and the error value is
/// identical wherever it is raised).
fn eval_mask(pred: &Expr, rel: &Relation, range: Range<usize>) -> Result<Vec<bool>> {
    match pred {
        Expr::Lit(v) => Ok(vec![v.as_bool().unwrap_or(false); range.len()]),
        Expr::Col(name) => {
            let i = Expr::resolve_column(rel.schema(), name)?;
            let c = rel.col(i);
            Ok(range
                .map(|r| matches!(c.cell(r), CellRef::Bool(true)))
                .collect())
        }
        Expr::Cmp(op, a, b) => {
            let (oa, ob) = (Operand::bind(a, rel)?, Operand::bind(b, rel)?);
            let op = *op;
            Ok(range
                .map(|r| {
                    let (x, y) = (oa.cell(r), ob.cell(r));
                    if x.is_null() || y.is_null() {
                        // SQL: NULL comparisons are unknown; a filter
                        // treats unknown as not satisfied.
                        return false;
                    }
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                })
                .collect())
        }
        Expr::And(a, b) => {
            let mut m = eval_mask(a, rel, range.clone())?;
            if m.iter().any(|&x| x) {
                for (x, y) in m.iter_mut().zip(eval_mask(b, rel, range)?) {
                    *x = *x && y;
                }
            }
            Ok(m)
        }
        Expr::Or(a, b) => {
            let mut m = eval_mask(a, rel, range.clone())?;
            if !m.iter().all(|&x| x) {
                for (x, y) in m.iter_mut().zip(eval_mask(b, rel, range)?) {
                    *x = *x || y;
                }
            }
            Ok(m)
        }
        Expr::Not(e) => {
            let mut m = eval_mask(e, rel, range)?;
            for x in m.iter_mut() {
                *x = !*x;
            }
            Ok(m)
        }
        Expr::IsNull(e) => {
            let o = Operand::bind(e, rel)?;
            Ok(range.map(|r| o.cell(r).is_null()).collect())
        }
        Expr::Bin(..) => unreachable!("Bin is never mask-vectorizable"),
    }
}

/// σ_pred kernel.
pub(crate) fn filter(rel: Relation, pred: &Expr) -> Result<Relation> {
    filter_gov(rel, pred, None)
}

/// σ_pred kernel with a governor wired into the morsel workers.
pub(crate) fn filter_gov(
    rel: Relation,
    pred: &Expr,
    gov: Option<&QueryGovernor>,
) -> Result<Relation> {
    gsj_faults::fault_point("relational.filter", gsj_faults::FaultClass::Critical)?;
    filter_inner(rel, pred, gov)
}

fn filter_inner(rel: Relation, pred: &Expr, gov: Option<&QueryGovernor>) -> Result<Relation> {
    // The row path never evaluates predicates over zero rows; keep that
    // (a dangling column name in a pred must not error on empty input).
    if rel.is_empty() {
        return Ok(rel);
    }
    let workers = par_workers(rel.len());
    if mask_vectorizable(pred) {
        let mask_morsel = |range: Range<usize>| -> Result<IdxPartial> {
            if let Some(gov) = gov {
                gov.check("relational.filter")?;
            }
            let base = range.start;
            let mask = eval_mask(pred, &rel, range)?;
            let idx: Vec<u32> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some((base + i) as u32))
                .collect();
            if let Some(gov) = gov {
                gov.charge_mem(4 * idx.len() as u64);
            }
            Ok(IdxPartial(idx))
        };
        let idx = if workers <= 1 {
            mask_morsel(0..rel.len())?.0
        } else {
            let ranges = pool::morsel_ranges(rel.len());
            match par_morsels(workers, &ranges, mask_morsel)? {
                Some(p) => p.0,
                None => Vec::new(),
            }
        };
        if idx.len() == rel.len() {
            return Ok(rel);
        }
        return Ok(rel.gather(&idx));
    }
    // Row fallback for predicates with arithmetic (per-row errors).
    // Morsels fail on their lowest erroring row, and the lowest-index
    // erroring morsel wins, so the surfaced error is the one the
    // sequential scan would have hit first.
    let schema = rel.schema().clone();
    let row_morsel = |range: Range<usize>| -> Result<IdxPartial> {
        if let Some(gov) = gov {
            gov.check("relational.filter")?;
        }
        let base = range.start;
        let mut idx: Vec<u32> = Vec::new();
        for (i, t) in rel.tuples()[range].iter().enumerate() {
            if pred.holds(&schema, t)? {
                idx.push((base + i) as u32);
            }
        }
        if let Some(gov) = gov {
            gov.charge_mem(4 * idx.len() as u64);
        }
        Ok(IdxPartial(idx))
    };
    let idx = if workers <= 1 {
        row_morsel(0..rel.len())?.0
    } else {
        let ranges = pool::morsel_ranges(rel.len());
        match par_morsels(workers, &ranges, row_morsel)? {
            Some(p) => p.0,
            None => Vec::new(),
        }
    };
    Ok(rel.gather(&idx))
}

/// π_cols kernel (bag projection with name resolution). Columns are
/// shared by `Arc` — projection copies no data.
pub(crate) fn project(rel: &Relation, cols: &[String]) -> Result<Relation> {
    let positions: Vec<usize> = cols
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let out_attrs: Vec<String> = positions
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    let schema = Schema::new(rel.schema().name().to_string(), out_attrs)?;
    let cols = positions
        .iter()
        .map(|&i| rel.columns()[i].clone())
        .collect();
    Relation::from_shared_columns(schema, cols, rel.len())
}

/// Bag-union kernel (arity-checked, keeps the left schema).
pub(crate) fn union(l: Relation, r: Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "union arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let mut out = l;
    out.append_rows(&r)?;
    Ok(out)
}

/// Bag-difference kernel `l − r`.
pub(crate) fn difference(l: Relation, r: &Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "difference arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let idx: Vec<u32> = {
        let mut exclude: FxHashSet<Vec<CellRef>> = FxHashSet::default();
        for j in 0..r.len() {
            exclude.insert(r.columns().iter().map(|c| c.cell(j)).collect());
        }
        (0..l.len())
            .filter(|&i| {
                let row: Vec<CellRef> = l.columns().iter().map(|c| c.cell(i)).collect();
                !exclude.contains(&row)
            })
            .map(|i| i as u32)
            .collect()
    };
    Ok(l.gather(&idx))
}

/// Duplicate-elimination kernel (first occurrence wins).
pub(crate) fn distinct(rel: Relation) -> Relation {
    let idx: Vec<u32> = {
        let mut seen: FxHashSet<Vec<CellRef>> = FxHashSet::default();
        (0..rel.len())
            .filter(|&i| seen.insert(rel.columns().iter().map(|c| c.cell(i)).collect()))
            .map(|i| i as u32)
            .collect()
    };
    if idx.len() == rel.len() {
        return rel;
    }
    rel.gather(&idx)
}

/// Stable sort kernel: sorts row indices on the key cells, then gathers
/// once — cells never move until the final gather.
pub(crate) fn sort(rel: Relation, by: &[String], desc: bool) -> Result<Relation> {
    let keys: Vec<usize> = by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let mut idx: Vec<u32> = (0..rel.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        let ord = keys
            .iter()
            .map(|&k| {
                rel.col(k)
                    .cell(a as usize)
                    .cmp(&rel.col(k).cell(b as usize))
            })
            .find(|o| !o.is_eq())
            .unwrap_or(Ordering::Equal);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(rel.gather(&idx))
}

/// Per-morsel grouping partial: key→gid map plus per-gid row lists,
/// gids in first-seen order within the morsel. Merging walks the other
/// partial's gids in order, so after an in-morsel-order merge the
/// global gid order is the sequential first-seen order and every row
/// list is concatenated in increasing row order.
struct GroupPartial<'a> {
    map: FxHashMap<Vec<CellRef<'a>>, usize>,
    keys: Vec<Vec<CellRef<'a>>>,
    rows: Vec<Vec<u32>>,
}

impl<'a> GroupPartial<'a> {
    fn new() -> Self {
        GroupPartial {
            map: FxHashMap::default(),
            keys: Vec::new(),
            rows: Vec::new(),
        }
    }

    fn bucket(&mut self, key: Vec<CellRef<'a>>, row: u32) {
        match self.map.get(&key) {
            Some(&gid) => self.rows[gid].push(row),
            None => {
                let gid = self.rows.len();
                self.map.insert(key.clone(), gid);
                self.keys.push(key);
                self.rows.push(vec![row]);
            }
        }
    }
}

impl<'a> Mergeable for GroupPartial<'a> {
    fn merge(&mut self, other: Self) {
        for (key, rws) in other.keys.into_iter().zip(other.rows) {
            match self.map.get(&key) {
                Some(&gid) => self.rows[gid].extend(rws),
                None => {
                    let gid = self.rows.len();
                    self.map.insert(key.clone(), gid);
                    self.keys.push(key);
                    self.rows.push(rws);
                }
            }
        }
    }
}

/// Grouping + aggregation kernel. Rows are bucketed into group ids on
/// borrowed key cells (first-seen group order), then each aggregate
/// folds its column's slice of every group directly.
pub fn aggregate(rel: &Relation, group_by: &[String], aggs: &[AggSpec]) -> Result<Relation> {
    aggregate_gov(rel, group_by, aggs, None)
}

/// [`aggregate`] with governed, morsel-parallel bucketing: each worker
/// buckets a contiguous morsel, partials merge in morsel order (which
/// preserves sequential first-seen group order and increasing row
/// order), then the fold over each group's rows runs once.
pub fn aggregate_gov(
    rel: &Relation,
    group_by: &[String],
    aggs: &[AggSpec],
    gov: Option<&QueryGovernor>,
) -> Result<Relation> {
    let group_pos: Vec<usize> = group_by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let agg_pos: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.col == "*" {
                Ok(None)
            } else {
                Expr::resolve_column(rel.schema(), &a.col).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut attrs: Vec<String> = group_pos
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    attrs.extend(aggs.iter().map(|a| a.alias.clone()));
    let schema = Schema::new(format!("{}_agg", rel.schema().name()), attrs)?;

    // Group ids on borrowed keys; ids are assigned in first-seen order.
    let bucket_morsel = |range: Range<usize>| -> Result<GroupPartial<'_>> {
        if let Some(gov) = gov {
            gov.check("relational.aggregate")?;
        }
        let mut part = GroupPartial::new();
        for i in range {
            let key: Vec<CellRef> = group_pos.iter().map(|&p| rel.col(p).cell(i)).collect();
            part.bucket(key, i as u32);
        }
        if let Some(gov) = gov {
            gov.charge_mem(part.rows.iter().map(|r| 4 * r.len() as u64).sum());
        }
        Ok(part)
    };
    let workers = par_workers(rel.len());
    let merged = if workers <= 1 {
        if rel.is_empty() {
            GroupPartial::new()
        } else {
            bucket_morsel(0..rel.len())?
        }
    } else {
        let ranges = pool::morsel_ranges(rel.len());
        par_morsels(workers, &ranges, bucket_morsel)?.unwrap_or_else(GroupPartial::new)
    };
    let mut group_rows = merged.rows;
    if group_by.is_empty() && group_rows.is_empty() {
        // Global aggregate over the empty input still yields one row.
        group_rows.push(Vec::new());
    }

    let mut out = Vec::with_capacity(group_rows.len());
    for rows in &group_rows {
        let mut vals: Vec<Value> = group_pos
            .iter()
            .map(|&p| rel.col(p).value(rows[0] as usize))
            .collect();
        for (spec, pos) in aggs.iter().zip(&agg_pos) {
            vals.push(eval_agg_col(spec.func, pos.map(|p| rel.col(p)), rows));
        }
        out.push(Tuple::new(vals));
    }
    Relation::new(schema, out)
}

/// Fold one aggregate over a column's slice of group rows.
fn eval_agg_col(func: AggFunc, col: Option<&Column>, rows: &[u32]) -> Value {
    match func {
        AggFunc::Count => match col {
            None => Value::Int(rows.len() as i64),
            Some(c) => Value::Int(rows.iter().filter(|&&i| !c.is_null(i as usize)).count() as i64),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let Some(c) = col else { return Value::Null };
            let mut sum = 0.0f64;
            let mut n = 0usize;
            let mut all_int = true;
            for &i in rows {
                match c.cell(i as usize) {
                    CellRef::Int(v) => {
                        sum += v as f64;
                        n += 1;
                    }
                    CellRef::Float(v) => {
                        sum += v;
                        n += 1;
                        all_int = false;
                    }
                    CellRef::Null => {}
                    // Non-numeric cells don't contribute to the sum but
                    // do demote an integer-typed result (they are not
                    // `Int | Null`).
                    _ => all_int = false,
                }
            }
            if n == 0 {
                return Value::Null;
            }
            if func == AggFunc::Avg {
                return Value::Float(sum / n as f64);
            }
            if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let Some(c) = col else { return Value::Null };
            // Ties keep the first row for Min and the last for Max —
            // the order a stable sort of the cells would produce.
            let mut best: Option<(CellRef<'_>, u32)> = None;
            for &i in rows {
                let cell = c.cell(i as usize);
                if cell.is_null() {
                    continue;
                }
                best = match best {
                    None => Some((cell, i)),
                    Some((b, bi)) => {
                        let replace = if func == AggFunc::Min {
                            cell.cmp(&b) == Ordering::Less
                        } else {
                            cell.cmp(&b) != Ordering::Less
                        };
                        if replace {
                            Some((cell, i))
                        } else {
                            Some((b, bi))
                        }
                    }
                };
            }
            match best {
                None => Value::Null,
                Some((_, i)) => c.value(i as usize),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut customer =
            Relation::empty(Schema::of("customer", &["cid", "name", "credit", "bal"]));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob", "fair", 500),
            ("cid02", "Bob", "good", 110),
            ("cid03", "Guy", "good", 50),
            ("cid04", "Ada", "fair", 100),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        let mut orders = Relation::empty(Schema::of("orders", &["cid", "pid"]));
        for (cid, pid) in [("cid01", "fd1"), ("cid02", "fd2"), ("cid02", "fd3")] {
            orders
                .push_values(vec![Value::str(cid), Value::str(pid)])
                .unwrap();
        }
        let mut db = Database::new();
        db.insert(customer);
        db.insert(orders);
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["cid"]);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().attrs(), &["cid".to_string()]);
    }

    #[test]
    fn natural_join_matches_on_common_attr() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders"));
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 3);
        // cid appears once.
        assert_eq!(
            r.schema()
                .attrs()
                .iter()
                .filter(|a| a.as_str() == "cid")
                .count(),
            1
        );
        assert!(r.schema().contains("pid"));
    }

    #[test]
    fn natural_join_skips_null_keys() {
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Null, Value::Int(1)]).unwrap();
        l.push_values(vec![Value::str("x"), Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Null, Value::Int(3)]).unwrap();
        r.push_values(vec![Value::str("x"), Value::Int(4)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn typed_int_join_skips_null_keys_and_matches_floats() {
        // Int fast path: NULL validity slots never match.
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        l.push_values(vec![Value::Null, Value::str("y")]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Int(1), Value::str("z")]).unwrap();
        r.push_values(vec![Value::Null, Value::str("w")]).unwrap();
        assert_eq!(natural_join(&l, &r).unwrap().len(), 1);
        // Cross-typed keys (Int vs Float) take the general cell path
        // and still match by numeric value.
        let mut f = Relation::empty(Schema::of("r", &["k", "b"]));
        f.push_values(vec![Value::Float(1.0), Value::str("f")])
            .unwrap();
        assert_eq!(natural_join(&l, &f).unwrap().len(), 1);
    }

    #[test]
    fn disjoint_schemas_fall_back_to_product() {
        let mut l = Relation::empty(Schema::of("l", &["a"]));
        l.push_values(vec![Value::Int(1)]).unwrap();
        l.push_values(vec![Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["b"]));
        r.push_values(vec![Value::Int(3)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().attrs(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn theta_join_with_equi_and_residual() {
        let db = db();
        // Self-join customers with the same name but different ids
        // (Q2-style pattern).
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Eq, Expr::col("T1.name"), Expr::col("T2.name")).and(Expr::cmp(
                CmpOp::Ne,
                Expr::col("T1.cid"),
                Expr::col("T2.cid"),
            )),
        );
        let r = execute(&plan, &db).unwrap();
        // Bob(cid01)×Bob(cid02) both orders.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_for_non_equi() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Lt, Expr::col("T1.bal"), Expr::col("T2.bal")),
        );
        let r = execute(&plan, &db).unwrap();
        // Pairs with strictly increasing balances: 50<100<110<500 → 6 pairs.
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn union_difference_distinct() {
        let db = db();
        let good = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["name"]);
        let fair = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "fair"))
            .project(&["name"]);
        let union = LogicalPlan::Union {
            left: Box::new(good.clone()),
            right: Box::new(fair.clone()),
        };
        assert_eq!(execute(&union, &db).unwrap().len(), 4);
        let distinct = LogicalPlan::Distinct {
            input: Box::new(union),
        };
        // Names: Bob, Guy, Bob, Ada → distinct {Bob, Guy, Ada}.
        assert_eq!(execute(&distinct, &db).unwrap().len(), 3);
        let diff = LogicalPlan::Difference {
            left: Box::new(good),
            right: Box::new(fair),
        };
        // good names {Bob, Guy} minus fair names {Bob, Ada} = {Guy}.
        assert_eq!(execute(&diff, &db).unwrap().len(), 1);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("customer")),
            group_by: vec!["credit".into()],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "bal", "total"),
                AggSpec::new(AggFunc::Max, "bal", "biggest"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        let fair_row = r
            .tuples()
            .iter()
            .find(|t| t.get(0) == &Value::str("fair"))
            .unwrap();
        assert_eq!(fair_row.get(1), &Value::Int(2));
        assert_eq!(fair_row.get(2), &Value::Int(600));
        assert_eq!(fair_row.get(3), &Value::Int(500));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(
                LogicalPlan::scan("customer").select(Expr::col_eq("credit", "excellent")),
            ),
            group_by: vec![],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Avg, "bal", "avg"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
        assert!(r.tuples()[0].get(1).is_null());
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::scan("customer")),
                by: vec!["bal".into()],
                desc: true,
            }),
            n: 2,
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(3), &Value::Int(500));
        assert_eq!(r.tuples()[1].get(3), &Value::Int(110));
    }

    #[test]
    fn qualify_then_unqualified_filter() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .qualify("T")
            .select(Expr::col_eq("credit", "good"));
        assert_eq!(execute(&plan, &db).unwrap().len(), 2);
    }

    #[test]
    fn product_rejects_duplicate_names() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("customer"));
        // Natural self-join on all attrs is fine (it's an intersection)...
        assert!(execute(&plan, &db).is_ok());
        // ...but an unqualified theta self-join must be rejected.
        let bad = LogicalPlan::scan("customer")
            .theta_join(LogicalPlan::scan("customer"), Expr::lit(true));
        assert!(execute(&bad, &db).is_err());
    }

    #[test]
    fn hash_key_rejects_null_and_borrows() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::str("x")]);
        assert!(hash_key(&t, &[0, 2]).is_some());
        assert!(hash_key(&t, &[0, 1]).is_none());
        assert!(hash_key(&t, &[]).is_some());
    }

    #[test]
    fn equi_positions_mines_cross_input_pairs() {
        let ls = Schema::of("l", &["T1.a", "T1.b"]);
        let rs = Schema::of("r", &["T2.a", "T2.c"]);
        let pred = Expr::cmp(CmpOp::Eq, Expr::col("T1.a"), Expr::col("T2.a"))
            .and(Expr::cmp(CmpOp::Eq, Expr::col("T2.c"), Expr::col("T1.b")))
            .and(Expr::cmp(CmpOp::Lt, Expr::col("T1.b"), Expr::lit(5i64)));
        let (lk, rk) = equi_positions(&pred, &ls, &rs);
        assert_eq!(lk, vec![0, 1]);
        assert_eq!(rk, vec![0, 1]);
    }

    #[test]
    fn vectorized_filter_matches_row_semantics() {
        let db = db();
        // Vectorizable: Cmp over Col/Lit with And/Or/Not/IsNull.
        let pred = Expr::cmp(CmpOp::Ge, Expr::col("bal"), Expr::lit(100i64))
            .and(Expr::Not(Box::new(Expr::col_eq("credit", "fair"))));
        let plan = LogicalPlan::scan("customer").select(pred.clone());
        let fast = execute(&plan, &db).unwrap();
        assert_eq!(fast.len(), 1); // only cid02
                                   // Equivalent row-path predicate (Bin forces the fallback).
        let slow_pred = Expr::cmp(
            CmpOp::Ge,
            Expr::Bin(
                crate::expr::BinOp::Add,
                Box::new(Expr::col("bal")),
                Box::new(Expr::lit(0i64)),
            ),
            Expr::lit(100i64),
        )
        .and(Expr::Not(Box::new(Expr::col_eq("credit", "fair"))));
        let slow = execute(&LogicalPlan::scan("customer").select(slow_pred), &db).unwrap();
        assert_eq!(fast.tuples(), slow.tuples());
    }

    #[test]
    fn short_circuit_hides_bad_right_branch() {
        let db = db();
        // Left of And is all-false, so the dangling column on the right
        // must never be resolved (row-path parity).
        let pred = Expr::col_eq("credit", "excellent").and(Expr::col_eq("no_such_col", "x"));
        let plan = LogicalPlan::scan("customer").select(pred);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 0);
        // With a satisfiable left branch the right branch IS resolved
        // and must error.
        let pred = Expr::col_eq("credit", "good").and(Expr::col_eq("no_such_col", "x"));
        assert!(execute(&LogicalPlan::scan("customer").select(pred), &db).is_err());
    }

    #[test]
    fn filter_on_empty_input_skips_evaluation() {
        let empty = Relation::empty(Schema::of("e", &["a"]));
        let mut db = Database::new();
        db.insert(empty);
        let pred = Expr::col_eq("no_such_col", "x");
        let r = execute(&LogicalPlan::scan("e").select(pred), &db).unwrap();
        assert!(r.is_empty());
    }
}
