//! The logical-plan interpreter and the shared operator kernels.
//!
//! Kernels are vectorized over the columnar storage
//! ([`crate::column`]): filters evaluate predicate masks over column
//! slices and gather the surviving rows wholesale, hash joins build and
//! probe on typed key columns (single-key `Int`/`Str` joins never box a
//! `Value` on the hot path) and materialize output via column gathers,
//! and aggregates fold column slices per group. The row-at-a-time path
//! survives as a fallback for predicates containing arithmetic
//! ([`Expr::Bin`]), which can raise per-row errors (type mismatch,
//! division by zero) that a mask evaluation could not order correctly.
//!
//! Joins are hash-based: natural joins key on the common attributes,
//! theta joins mine equi-conjuncts (`left.col = right.col`) from the
//! predicate and hash on those, falling back to a nested loop only for
//! genuinely non-equi predicates — the same discipline a production
//! engine applies. The kernels ([`hash_join_core`],
//! [`nested_loop_core`], [`aggregate`]) are shared with the physical
//! executor ([`crate::physical`]), which wraps them with per-operator
//! statistics.

use crate::catalog::Database;
use crate::column::{CellRef, Column};
use crate::expr::{AggFunc, CmpOp, Expr};
use crate::plan::{AggSpec, JoinKind, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use gsj_common::{FxHashMap, FxHashSet, GsjError, Result, Value};
use std::cmp::Ordering;

/// Execute a plan against a database with the interpreter.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan(name) => Ok(db.get(name)?.clone()),
        LogicalPlan::Values(rel) => Ok(rel.clone()),
        LogicalPlan::Select { input, pred } => filter(execute(input, db)?, pred),
        LogicalPlan::Project { input, cols } => project(&execute(input, db)?, cols),
        LogicalPlan::Qualify { input, alias } => {
            let rel = execute(input, db)?;
            Ok(rel.qualified(alias))
        }
        LogicalPlan::Join { left, right, kind } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            match kind {
                JoinKind::Natural => natural_join(&l, &r),
                JoinKind::Theta(pred) => theta_join(&l, &r, pred),
            }
        }
        LogicalPlan::Union { left, right } => union(execute(left, db)?, execute(right, db)?),
        LogicalPlan::Difference { left, right } => {
            difference(execute(left, db)?, &execute(right, db)?)
        }
        LogicalPlan::Distinct { input } => Ok(distinct(execute(input, db)?)),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(&execute(input, db)?, group_by, aggs),
        LogicalPlan::Sort { input, by, desc } => sort(execute(input, db)?, by, *desc),
        LogicalPlan::Limit { input, n } => Ok(execute(input, db)?.head(*n)),
    }
}

/// The join key of `t` at `keys`, as borrowed values; `None` when any key
/// cell is NULL (SQL semantics: NULL keys never match). Row-oriented
/// compatibility helper — the vectorized kernels key on column cells.
#[inline]
pub fn hash_key<'a>(t: &'a Tuple, keys: &[usize]) -> Option<Vec<&'a Value>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let v = t.get(k);
        if v.is_null() {
            return None;
        }
        out.push(v);
    }
    Some(out)
}

/// Build-side hash index: borrowed key → row indices. No key `Value` is
/// cloned; the map borrows from `tuples`. Row-oriented compatibility
/// helper — see [`hash_join_core`] for the columnar build/probe.
pub fn build_row_index<'a>(
    tuples: &'a [Tuple],
    keys: &[usize],
) -> FxHashMap<Vec<&'a Value>, Vec<usize>> {
    let mut table: FxHashMap<Vec<&'a Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in tuples.iter().enumerate() {
        if let Some(key) = hash_key(t, keys) {
            table.entry(key).or_default().push(i);
        }
    }
    table
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    match pred {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Mine hashable equi-conjuncts (`l.col = r.col` with the two sides
/// resolving on opposite inputs) out of a theta predicate. Returns
/// parallel position vectors into the left and right schemas.
pub fn equi_positions(pred: &Expr, ls: &Schema, rs: &Schema) -> (Vec<usize>, Vec<usize>) {
    let mut l_keys = Vec::new();
    let mut r_keys = Vec::new();
    for c in conjuncts(pred) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let (la, ra) = (
                    Expr::resolve_column(ls, ca).ok(),
                    Expr::resolve_column(rs, ca).ok(),
                );
                let (lb, rb) = (
                    Expr::resolve_column(ls, cb).ok(),
                    Expr::resolve_column(rs, cb).ok(),
                );
                match (la, ra, lb, rb) {
                    (Some(i), None, None, Some(j)) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    (None, Some(j), Some(i), None) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    _ => {}
                }
            }
        }
    }
    (l_keys, r_keys)
}

/// Build/probe cardinalities observed by one hash-join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Rows hashed into the build table.
    pub build_rows: usize,
    /// Rows streamed through the probe side.
    pub probe_rows: usize,
}

/// How a hash join combines its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashJoinMode {
    /// Natural join: output = left attrs ++ right-minus-common; the
    /// smaller input becomes the build side.
    Natural,
    /// Equi join mined from a theta predicate: output is the full
    /// concatenation, the left input is the build side, and the residual
    /// predicate is re-verified on every candidate pair.
    Equi,
}

/// Build a hash table on `build`'s key columns and stream `probe`
/// through it, emitting `(build_row, probe_row)` for every match in
/// probe-major order. NULL keys never match. Single-key joins where
/// both columns are typed `Int` (resp. `Str`) index the unboxed
/// payloads directly; everything else keys on borrowed [`CellRef`]s,
/// whose hash/eq mirror `Value` (so `Int 3` still matches `Float 3.0`
/// across differently-typed columns).
fn hash_probe<'a>(
    build: &'a Relation,
    probe: &'a Relation,
    build_keys: &[usize],
    probe_keys: &[usize],
    mut emit: impl FnMut(u32, u32),
) {
    if build_keys.len() == 1 {
        match (build.col(build_keys[0]), probe.col(probe_keys[0])) {
            (
                Column::Int {
                    data: bd,
                    validity: bv,
                },
                Column::Int {
                    data: pd,
                    validity: pv,
                },
            ) => {
                let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                for (i, &k) in bd.iter().enumerate() {
                    if bv.get(i) {
                        table.entry(k).or_default().push(i as u32);
                    }
                }
                for (j, &k) in pd.iter().enumerate() {
                    if pv.get(j) {
                        if let Some(rows) = table.get(&k) {
                            for &bi in rows {
                                emit(bi, j as u32);
                            }
                        }
                    }
                }
                return;
            }
            (
                Column::Str {
                    data: bd,
                    validity: bv,
                },
                Column::Str {
                    data: pd,
                    validity: pv,
                },
            ) => {
                let mut table: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
                for (i, k) in bd.iter().enumerate() {
                    if bv.get(i) {
                        table.entry(k).or_default().push(i as u32);
                    }
                }
                for (j, k) in pd.iter().enumerate() {
                    if pv.get(j) {
                        if let Some(rows) = table.get(k.as_ref()) {
                            for &bi in rows {
                                emit(bi, j as u32);
                            }
                        }
                    }
                }
                return;
            }
            _ => {}
        }
    }
    let mut table: FxHashMap<Vec<CellRef<'a>>, Vec<u32>> = FxHashMap::default();
    'build: for i in 0..build.len() {
        let mut key = Vec::with_capacity(build_keys.len());
        for &k in build_keys {
            let cell = build.col(k).cell(i);
            if cell.is_null() {
                continue 'build;
            }
            key.push(cell);
        }
        table.entry(key).or_default().push(i as u32);
    }
    'probe: for j in 0..probe.len() {
        let mut key = Vec::with_capacity(probe_keys.len());
        for &k in probe_keys {
            let cell = probe.col(k).cell(j);
            if cell.is_null() {
                continue 'probe;
            }
            key.push(cell);
        }
        if let Some(rows) = table.get(&key) {
            for &bi in rows {
                emit(bi, j as u32);
            }
        }
    }
}

/// The single hash-join kernel behind [`natural_join`], [`theta_join`],
/// and the physical `HashJoin` operator. Matching is index-based: the
/// probe emits `(build, probe)` row-index pairs and the output columns
/// are gathered wholesale — no per-row tuple assembly.
pub fn hash_join_core(
    l: &Relation,
    r: &Relation,
    l_keys: &[usize],
    r_keys: &[usize],
    mode: HashJoinMode,
    residual: Option<&Expr>,
    schema: Schema,
) -> Result<(Relation, JoinStats)> {
    gsj_faults::fault_point("relational.hash_join", gsj_faults::FaultClass::Critical)?;
    match mode {
        HashJoinMode::Natural => {
            let r_rest: Vec<usize> = (0..r.schema().arity())
                .filter(|i| !r_keys.contains(i))
                .collect();
            // Build on the smaller side.
            let build_left = l.len() <= r.len();
            let (build, probe, build_keys, probe_keys) = if build_left {
                (l, r, l_keys, r_keys)
            } else {
                (r, l, r_keys, l_keys)
            };
            let mut li: Vec<u32> = Vec::new();
            let mut ri: Vec<u32> = Vec::new();
            hash_probe(build, probe, build_keys, probe_keys, |bi, pi| {
                if build_left {
                    li.push(bi);
                    ri.push(pi);
                } else {
                    li.push(pi);
                    ri.push(bi);
                }
            });
            let stats = JoinStats {
                build_rows: build.len(),
                probe_rows: probe.len(),
            };
            let out = Relation::gather_concat(l, &li, r, &ri, Some(&r_rest), schema)?;
            Ok((out, stats))
        }
        HashJoinMode::Equi => {
            let mut li: Vec<u32> = Vec::new();
            let mut ri: Vec<u32> = Vec::new();
            hash_probe(l, r, l_keys, r_keys, |bi, pi| {
                li.push(bi);
                ri.push(pi);
            });
            let joined = Relation::gather_concat(l, &li, r, &ri, None, schema)?;
            let out = match residual {
                Some(pred) => filter_inner(joined, pred)?,
                None => joined,
            };
            let stats = JoinStats {
                build_rows: l.len(),
                probe_rows: r.len(),
            };
            Ok((out, stats))
        }
    }
}

/// The nested-loop kernel: every pair, filtered by `pred` over the
/// concatenated schema. Genuinely non-equi predicates only — stays
/// row-at-a-time because `pred` may raise per-row errors.
pub fn nested_loop_core(
    l: &Relation,
    r: &Relation,
    pred: &Expr,
    schema: Schema,
) -> Result<Relation> {
    let mut out = Vec::new();
    for lt in l.tuples() {
        for rt in r.tuples() {
            let joined = lt.concat(rt);
            if pred.holds(&schema, &joined)? {
                out.push(joined);
            }
        }
    }
    Relation::new(schema, out)
}

/// The concatenated-output schema of a theta-style join; errors when
/// attribute names collide.
pub(crate) fn concat_schema(l: &Relation, r: &Relation, sep: &str, what: &str) -> Result<Schema> {
    let mut attrs = l.schema().attrs().to_vec();
    attrs.extend(r.schema().attrs().iter().cloned());
    Schema::new(
        format!("{}{sep}{}", l.schema().name(), r.schema().name()),
        attrs,
    )
    .map_err(|e| {
        GsjError::Schema(format!(
            "{what} requires distinct attribute names (qualify inputs first): {e}"
        ))
    })
}

/// Natural-join key positions (left, right) and merged output schema.
pub(crate) type NaturalJoinParts = (Vec<usize>, Vec<usize>, Schema);

/// The merged-output schema of a natural join, plus the key positions.
pub(crate) fn natural_join_parts(l: &Relation, r: &Relation) -> Result<Option<NaturalJoinParts>> {
    let common = l.schema().common_attrs(r.schema());
    if common.is_empty() {
        return Ok(None);
    }
    let l_keys: Vec<usize> = common
        .iter()
        .map(|a| l.schema().require(a))
        .collect::<Result<_>>()?;
    let r_keys: Vec<usize> = common
        .iter()
        .map(|a| r.schema().require(a))
        .collect::<Result<_>>()?;
    let mut attrs: Vec<String> = l.schema().attrs().to_vec();
    attrs.extend(
        (0..r.schema().arity())
            .filter(|i| !r_keys.contains(i))
            .map(|i| r.schema().attrs()[i].clone()),
    );
    let schema = Schema::new(
        format!("{}_join_{}", l.schema().name(), r.schema().name()),
        attrs,
    )?;
    Ok(Some((l_keys, r_keys, schema)))
}

/// Natural hash join on all common attribute names. NULL keys never match
/// (SQL semantics).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    match natural_join_parts(l, r)? {
        None => product(l, r),
        Some((l_keys, r_keys, schema)) => {
            Ok(hash_join_core(l, r, &l_keys, &r_keys, HashJoinMode::Natural, None, schema)?.0)
        }
    }
}

/// Cartesian product; attribute names must stay distinct.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = concat_schema(l, r, "_x_", "product")?;
    let n = l.len() * r.len();
    let mut li: Vec<u32> = Vec::with_capacity(n);
    let mut ri: Vec<u32> = Vec::with_capacity(n);
    for i in 0..l.len() as u32 {
        for j in 0..r.len() as u32 {
            li.push(i);
            ri.push(j);
        }
    }
    Relation::gather_concat(l, &li, r, &ri, None, schema)
}

/// Theta join. Equi-conjuncts whose two column sides resolve on opposite
/// inputs become hash keys; the full predicate is still verified on each
/// candidate pair.
pub fn theta_join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let schema = concat_schema(l, r, "_tj_", "theta join")?;
    let (l_keys, r_keys) = equi_positions(pred, l.schema(), r.schema());
    if l_keys.is_empty() {
        nested_loop_core(l, r, pred, schema)
    } else {
        Ok(hash_join_core(
            l,
            r,
            &l_keys,
            &r_keys,
            HashJoinMode::Equi,
            Some(pred),
            schema,
        )?
        .0)
    }
}

/// True when `pred` can be evaluated as a column mask: comparisons and
/// NULL tests over direct column/literal operands, combined with
/// and/or/not. Arithmetic ([`Expr::Bin`]) is excluded — it can raise
/// per-row errors whose ordering the row path defines.
fn mask_vectorizable(pred: &Expr) -> bool {
    fn operand_ok(e: &Expr) -> bool {
        matches!(e, Expr::Col(_) | Expr::Lit(_))
    }
    match pred {
        Expr::Col(_) | Expr::Lit(_) => true,
        Expr::Cmp(_, a, b) => operand_ok(a) && operand_ok(b),
        Expr::And(a, b) | Expr::Or(a, b) => mask_vectorizable(a) && mask_vectorizable(b),
        Expr::Not(e) => mask_vectorizable(e),
        Expr::IsNull(e) => operand_ok(e),
        Expr::Bin(..) => false,
    }
}

/// A comparison operand bound once per batch: a column reference
/// resolved to its column, or a literal.
enum Operand<'a> {
    Col(&'a Column),
    Lit(&'a Value),
}

impl<'a> Operand<'a> {
    fn bind(e: &'a Expr, rel: &'a Relation) -> Result<Operand<'a>> {
        match e {
            Expr::Col(name) => {
                let i = Expr::resolve_column(rel.schema(), name)?;
                Ok(Operand::Col(rel.col(i)))
            }
            Expr::Lit(v) => Ok(Operand::Lit(v)),
            _ => unreachable!("mask_vectorizable admits only Col/Lit operands"),
        }
    }

    #[inline]
    fn cell(&self, row: usize) -> CellRef<'a> {
        match self {
            Operand::Col(c) => c.cell(row),
            Operand::Lit(v) => CellRef::from_value(v),
        }
    }
}

/// Evaluate a vectorizable predicate as a boolean mask over all rows.
///
/// Short-circuit parity with the row path: `And` does not touch (or
/// even name-resolve) its right branch when the left mask has no true
/// bit, and `Or` skips the right branch when the left mask is all true
/// — exactly the cases where the row evaluator would never have
/// evaluated the right branch for any row.
fn eval_mask(pred: &Expr, rel: &Relation) -> Result<Vec<bool>> {
    let n = rel.len();
    match pred {
        Expr::Lit(v) => Ok(vec![v.as_bool().unwrap_or(false); n]),
        Expr::Col(name) => {
            let i = Expr::resolve_column(rel.schema(), name)?;
            let c = rel.col(i);
            Ok((0..n)
                .map(|r| matches!(c.cell(r), CellRef::Bool(true)))
                .collect())
        }
        Expr::Cmp(op, a, b) => {
            let (oa, ob) = (Operand::bind(a, rel)?, Operand::bind(b, rel)?);
            let op = *op;
            Ok((0..n)
                .map(|r| {
                    let (x, y) = (oa.cell(r), ob.cell(r));
                    if x.is_null() || y.is_null() {
                        // SQL: NULL comparisons are unknown; a filter
                        // treats unknown as not satisfied.
                        return false;
                    }
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                })
                .collect())
        }
        Expr::And(a, b) => {
            let mut m = eval_mask(a, rel)?;
            if m.iter().any(|&x| x) {
                for (x, y) in m.iter_mut().zip(eval_mask(b, rel)?) {
                    *x = *x && y;
                }
            }
            Ok(m)
        }
        Expr::Or(a, b) => {
            let mut m = eval_mask(a, rel)?;
            if !m.iter().all(|&x| x) {
                for (x, y) in m.iter_mut().zip(eval_mask(b, rel)?) {
                    *x = *x || y;
                }
            }
            Ok(m)
        }
        Expr::Not(e) => {
            let mut m = eval_mask(e, rel)?;
            for x in m.iter_mut() {
                *x = !*x;
            }
            Ok(m)
        }
        Expr::IsNull(e) => {
            let o = Operand::bind(e, rel)?;
            Ok((0..n).map(|r| o.cell(r).is_null()).collect())
        }
        Expr::Bin(..) => unreachable!("Bin is never mask-vectorizable"),
    }
}

/// σ_pred kernel.
pub(crate) fn filter(rel: Relation, pred: &Expr) -> Result<Relation> {
    gsj_faults::fault_point("relational.filter", gsj_faults::FaultClass::Critical)?;
    filter_inner(rel, pred)
}

fn filter_inner(rel: Relation, pred: &Expr) -> Result<Relation> {
    // The row path never evaluates predicates over zero rows; keep that
    // (a dangling column name in a pred must not error on empty input).
    if rel.is_empty() {
        return Ok(rel);
    }
    if mask_vectorizable(pred) {
        let mask = eval_mask(pred, &rel)?;
        if mask.iter().all(|&b| b) {
            return Ok(rel);
        }
        let idx: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        return Ok(rel.gather(&idx));
    }
    // Row fallback for predicates with arithmetic (per-row errors).
    let mut idx: Vec<u32> = Vec::new();
    let schema = rel.schema().clone();
    for (i, t) in rel.tuples().iter().enumerate() {
        if pred.holds(&schema, t)? {
            idx.push(i as u32);
        }
    }
    Ok(rel.gather(&idx))
}

/// π_cols kernel (bag projection with name resolution). Columns are
/// shared by `Arc` — projection copies no data.
pub(crate) fn project(rel: &Relation, cols: &[String]) -> Result<Relation> {
    let positions: Vec<usize> = cols
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let out_attrs: Vec<String> = positions
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    let schema = Schema::new(rel.schema().name().to_string(), out_attrs)?;
    let cols = positions
        .iter()
        .map(|&i| rel.columns()[i].clone())
        .collect();
    Relation::from_shared_columns(schema, cols, rel.len())
}

/// Bag-union kernel (arity-checked, keeps the left schema).
pub(crate) fn union(l: Relation, r: Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "union arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let mut out = l;
    out.append_rows(&r)?;
    Ok(out)
}

/// Bag-difference kernel `l − r`.
pub(crate) fn difference(l: Relation, r: &Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "difference arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let idx: Vec<u32> = {
        let mut exclude: FxHashSet<Vec<CellRef>> = FxHashSet::default();
        for j in 0..r.len() {
            exclude.insert(r.columns().iter().map(|c| c.cell(j)).collect());
        }
        (0..l.len())
            .filter(|&i| {
                let row: Vec<CellRef> = l.columns().iter().map(|c| c.cell(i)).collect();
                !exclude.contains(&row)
            })
            .map(|i| i as u32)
            .collect()
    };
    Ok(l.gather(&idx))
}

/// Duplicate-elimination kernel (first occurrence wins).
pub(crate) fn distinct(rel: Relation) -> Relation {
    let idx: Vec<u32> = {
        let mut seen: FxHashSet<Vec<CellRef>> = FxHashSet::default();
        (0..rel.len())
            .filter(|&i| seen.insert(rel.columns().iter().map(|c| c.cell(i)).collect()))
            .map(|i| i as u32)
            .collect()
    };
    if idx.len() == rel.len() {
        return rel;
    }
    rel.gather(&idx)
}

/// Stable sort kernel: sorts row indices on the key cells, then gathers
/// once — cells never move until the final gather.
pub(crate) fn sort(rel: Relation, by: &[String], desc: bool) -> Result<Relation> {
    let keys: Vec<usize> = by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let mut idx: Vec<u32> = (0..rel.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        let ord = keys
            .iter()
            .map(|&k| {
                rel.col(k)
                    .cell(a as usize)
                    .cmp(&rel.col(k).cell(b as usize))
            })
            .find(|o| !o.is_eq())
            .unwrap_or(Ordering::Equal);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(rel.gather(&idx))
}

/// Grouping + aggregation kernel. Rows are bucketed into group ids on
/// borrowed key cells (first-seen group order), then each aggregate
/// folds its column's slice of every group directly.
pub fn aggregate(rel: &Relation, group_by: &[String], aggs: &[AggSpec]) -> Result<Relation> {
    let group_pos: Vec<usize> = group_by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let agg_pos: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.col == "*" {
                Ok(None)
            } else {
                Expr::resolve_column(rel.schema(), &a.col).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut attrs: Vec<String> = group_pos
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    attrs.extend(aggs.iter().map(|a| a.alias.clone()));
    let schema = Schema::new(format!("{}_agg", rel.schema().name()), attrs)?;

    // Group ids on borrowed keys; ids are assigned in first-seen order.
    let mut groups: FxHashMap<Vec<CellRef>, usize> = FxHashMap::default();
    let mut group_rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..rel.len() {
        let key: Vec<CellRef> = group_pos.iter().map(|&p| rel.col(p).cell(i)).collect();
        let gid = *groups.entry(key).or_insert_with(|| {
            group_rows.push(Vec::new());
            group_rows.len() - 1
        });
        group_rows[gid].push(i as u32);
    }
    if group_by.is_empty() && group_rows.is_empty() {
        // Global aggregate over the empty input still yields one row.
        group_rows.push(Vec::new());
    }

    let mut out = Vec::with_capacity(group_rows.len());
    for rows in &group_rows {
        let mut vals: Vec<Value> = group_pos
            .iter()
            .map(|&p| rel.col(p).value(rows[0] as usize))
            .collect();
        for (spec, pos) in aggs.iter().zip(&agg_pos) {
            vals.push(eval_agg_col(spec.func, pos.map(|p| rel.col(p)), rows));
        }
        out.push(Tuple::new(vals));
    }
    Relation::new(schema, out)
}

/// Fold one aggregate over a column's slice of group rows.
fn eval_agg_col(func: AggFunc, col: Option<&Column>, rows: &[u32]) -> Value {
    match func {
        AggFunc::Count => match col {
            None => Value::Int(rows.len() as i64),
            Some(c) => Value::Int(rows.iter().filter(|&&i| !c.is_null(i as usize)).count() as i64),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let Some(c) = col else { return Value::Null };
            let mut sum = 0.0f64;
            let mut n = 0usize;
            let mut all_int = true;
            for &i in rows {
                match c.cell(i as usize) {
                    CellRef::Int(v) => {
                        sum += v as f64;
                        n += 1;
                    }
                    CellRef::Float(v) => {
                        sum += v;
                        n += 1;
                        all_int = false;
                    }
                    CellRef::Null => {}
                    // Non-numeric cells don't contribute to the sum but
                    // do demote an integer-typed result (they are not
                    // `Int | Null`).
                    _ => all_int = false,
                }
            }
            if n == 0 {
                return Value::Null;
            }
            if func == AggFunc::Avg {
                return Value::Float(sum / n as f64);
            }
            if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let Some(c) = col else { return Value::Null };
            // Ties keep the first row for Min and the last for Max —
            // the order a stable sort of the cells would produce.
            let mut best: Option<(CellRef<'_>, u32)> = None;
            for &i in rows {
                let cell = c.cell(i as usize);
                if cell.is_null() {
                    continue;
                }
                best = match best {
                    None => Some((cell, i)),
                    Some((b, bi)) => {
                        let replace = if func == AggFunc::Min {
                            cell.cmp(&b) == Ordering::Less
                        } else {
                            cell.cmp(&b) != Ordering::Less
                        };
                        if replace {
                            Some((cell, i))
                        } else {
                            Some((b, bi))
                        }
                    }
                };
            }
            match best {
                None => Value::Null,
                Some((_, i)) => c.value(i as usize),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut customer =
            Relation::empty(Schema::of("customer", &["cid", "name", "credit", "bal"]));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob", "fair", 500),
            ("cid02", "Bob", "good", 110),
            ("cid03", "Guy", "good", 50),
            ("cid04", "Ada", "fair", 100),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        let mut orders = Relation::empty(Schema::of("orders", &["cid", "pid"]));
        for (cid, pid) in [("cid01", "fd1"), ("cid02", "fd2"), ("cid02", "fd3")] {
            orders
                .push_values(vec![Value::str(cid), Value::str(pid)])
                .unwrap();
        }
        let mut db = Database::new();
        db.insert(customer);
        db.insert(orders);
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["cid"]);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().attrs(), &["cid".to_string()]);
    }

    #[test]
    fn natural_join_matches_on_common_attr() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders"));
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 3);
        // cid appears once.
        assert_eq!(
            r.schema()
                .attrs()
                .iter()
                .filter(|a| a.as_str() == "cid")
                .count(),
            1
        );
        assert!(r.schema().contains("pid"));
    }

    #[test]
    fn natural_join_skips_null_keys() {
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Null, Value::Int(1)]).unwrap();
        l.push_values(vec![Value::str("x"), Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Null, Value::Int(3)]).unwrap();
        r.push_values(vec![Value::str("x"), Value::Int(4)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn typed_int_join_skips_null_keys_and_matches_floats() {
        // Int fast path: NULL validity slots never match.
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        l.push_values(vec![Value::Null, Value::str("y")]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Int(1), Value::str("z")]).unwrap();
        r.push_values(vec![Value::Null, Value::str("w")]).unwrap();
        assert_eq!(natural_join(&l, &r).unwrap().len(), 1);
        // Cross-typed keys (Int vs Float) take the general cell path
        // and still match by numeric value.
        let mut f = Relation::empty(Schema::of("r", &["k", "b"]));
        f.push_values(vec![Value::Float(1.0), Value::str("f")])
            .unwrap();
        assert_eq!(natural_join(&l, &f).unwrap().len(), 1);
    }

    #[test]
    fn disjoint_schemas_fall_back_to_product() {
        let mut l = Relation::empty(Schema::of("l", &["a"]));
        l.push_values(vec![Value::Int(1)]).unwrap();
        l.push_values(vec![Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["b"]));
        r.push_values(vec![Value::Int(3)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().attrs(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn theta_join_with_equi_and_residual() {
        let db = db();
        // Self-join customers with the same name but different ids
        // (Q2-style pattern).
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Eq, Expr::col("T1.name"), Expr::col("T2.name")).and(Expr::cmp(
                CmpOp::Ne,
                Expr::col("T1.cid"),
                Expr::col("T2.cid"),
            )),
        );
        let r = execute(&plan, &db).unwrap();
        // Bob(cid01)×Bob(cid02) both orders.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_for_non_equi() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Lt, Expr::col("T1.bal"), Expr::col("T2.bal")),
        );
        let r = execute(&plan, &db).unwrap();
        // Pairs with strictly increasing balances: 50<100<110<500 → 6 pairs.
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn union_difference_distinct() {
        let db = db();
        let good = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["name"]);
        let fair = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "fair"))
            .project(&["name"]);
        let union = LogicalPlan::Union {
            left: Box::new(good.clone()),
            right: Box::new(fair.clone()),
        };
        assert_eq!(execute(&union, &db).unwrap().len(), 4);
        let distinct = LogicalPlan::Distinct {
            input: Box::new(union),
        };
        // Names: Bob, Guy, Bob, Ada → distinct {Bob, Guy, Ada}.
        assert_eq!(execute(&distinct, &db).unwrap().len(), 3);
        let diff = LogicalPlan::Difference {
            left: Box::new(good),
            right: Box::new(fair),
        };
        // good names {Bob, Guy} minus fair names {Bob, Ada} = {Guy}.
        assert_eq!(execute(&diff, &db).unwrap().len(), 1);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("customer")),
            group_by: vec!["credit".into()],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "bal", "total"),
                AggSpec::new(AggFunc::Max, "bal", "biggest"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        let fair_row = r
            .tuples()
            .iter()
            .find(|t| t.get(0) == &Value::str("fair"))
            .unwrap();
        assert_eq!(fair_row.get(1), &Value::Int(2));
        assert_eq!(fair_row.get(2), &Value::Int(600));
        assert_eq!(fair_row.get(3), &Value::Int(500));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(
                LogicalPlan::scan("customer").select(Expr::col_eq("credit", "excellent")),
            ),
            group_by: vec![],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Avg, "bal", "avg"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
        assert!(r.tuples()[0].get(1).is_null());
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::scan("customer")),
                by: vec!["bal".into()],
                desc: true,
            }),
            n: 2,
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(3), &Value::Int(500));
        assert_eq!(r.tuples()[1].get(3), &Value::Int(110));
    }

    #[test]
    fn qualify_then_unqualified_filter() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .qualify("T")
            .select(Expr::col_eq("credit", "good"));
        assert_eq!(execute(&plan, &db).unwrap().len(), 2);
    }

    #[test]
    fn product_rejects_duplicate_names() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("customer"));
        // Natural self-join on all attrs is fine (it's an intersection)...
        assert!(execute(&plan, &db).is_ok());
        // ...but an unqualified theta self-join must be rejected.
        let bad = LogicalPlan::scan("customer")
            .theta_join(LogicalPlan::scan("customer"), Expr::lit(true));
        assert!(execute(&bad, &db).is_err());
    }

    #[test]
    fn hash_key_rejects_null_and_borrows() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::str("x")]);
        assert!(hash_key(&t, &[0, 2]).is_some());
        assert!(hash_key(&t, &[0, 1]).is_none());
        assert!(hash_key(&t, &[]).is_some());
    }

    #[test]
    fn equi_positions_mines_cross_input_pairs() {
        let ls = Schema::of("l", &["T1.a", "T1.b"]);
        let rs = Schema::of("r", &["T2.a", "T2.c"]);
        let pred = Expr::cmp(CmpOp::Eq, Expr::col("T1.a"), Expr::col("T2.a"))
            .and(Expr::cmp(CmpOp::Eq, Expr::col("T2.c"), Expr::col("T1.b")))
            .and(Expr::cmp(CmpOp::Lt, Expr::col("T1.b"), Expr::lit(5i64)));
        let (lk, rk) = equi_positions(&pred, &ls, &rs);
        assert_eq!(lk, vec![0, 1]);
        assert_eq!(rk, vec![0, 1]);
    }

    #[test]
    fn vectorized_filter_matches_row_semantics() {
        let db = db();
        // Vectorizable: Cmp over Col/Lit with And/Or/Not/IsNull.
        let pred = Expr::cmp(CmpOp::Ge, Expr::col("bal"), Expr::lit(100i64))
            .and(Expr::Not(Box::new(Expr::col_eq("credit", "fair"))));
        let plan = LogicalPlan::scan("customer").select(pred.clone());
        let fast = execute(&plan, &db).unwrap();
        assert_eq!(fast.len(), 1); // only cid02
                                   // Equivalent row-path predicate (Bin forces the fallback).
        let slow_pred = Expr::cmp(
            CmpOp::Ge,
            Expr::Bin(
                crate::expr::BinOp::Add,
                Box::new(Expr::col("bal")),
                Box::new(Expr::lit(0i64)),
            ),
            Expr::lit(100i64),
        )
        .and(Expr::Not(Box::new(Expr::col_eq("credit", "fair"))));
        let slow = execute(&LogicalPlan::scan("customer").select(slow_pred), &db).unwrap();
        assert_eq!(fast.tuples(), slow.tuples());
    }

    #[test]
    fn short_circuit_hides_bad_right_branch() {
        let db = db();
        // Left of And is all-false, so the dangling column on the right
        // must never be resolved (row-path parity).
        let pred = Expr::col_eq("credit", "excellent").and(Expr::col_eq("no_such_col", "x"));
        let plan = LogicalPlan::scan("customer").select(pred);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 0);
        // With a satisfiable left branch the right branch IS resolved
        // and must error.
        let pred = Expr::col_eq("credit", "good").and(Expr::col_eq("no_such_col", "x"));
        assert!(execute(&LogicalPlan::scan("customer").select(pred), &db).is_err());
    }

    #[test]
    fn filter_on_empty_input_skips_evaluation() {
        let empty = Relation::empty(Schema::of("e", &["a"]));
        let mut db = Database::new();
        db.insert(empty);
        let pred = Expr::col_eq("no_such_col", "x");
        let r = execute(&LogicalPlan::scan("e").select(pred), &db).unwrap();
        assert!(r.is_empty());
    }
}
