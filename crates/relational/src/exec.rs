//! The plan executor.
//!
//! Joins are hash-based: natural joins key on the common attributes, theta
//! joins mine equi-conjuncts (`left.col = right.col`) from the predicate
//! and hash on those, falling back to a nested loop only for genuinely
//! non-equi predicates — the same discipline a production engine applies.

use crate::catalog::Database;
use crate::expr::{AggFunc, CmpOp, Expr};
use crate::plan::{AggSpec, JoinKind, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use gsj_common::{FxHashMap, GsjError, Result, Value};

/// Execute a plan against a database.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan(name) => Ok(db.get(name)?.clone()),
        LogicalPlan::Values(rel) => Ok(rel.clone()),
        LogicalPlan::Select { input, pred } => {
            let rel = execute(input, db)?;
            let (schema, tuples) = rel.into_parts();
            let mut kept = Vec::new();
            for t in tuples {
                if pred.holds(&schema, &t)? {
                    kept.push(t);
                }
            }
            Relation::new(schema, kept)
        }
        LogicalPlan::Project { input, cols } => {
            let rel = execute(input, db)?;
            let positions: Vec<usize> = cols
                .iter()
                .map(|c| Expr::resolve_column(rel.schema(), c))
                .collect::<Result<_>>()?;
            let out_attrs: Vec<String> = positions
                .iter()
                .map(|&i| rel.schema().attrs()[i].clone())
                .collect();
            let schema = Schema::new(rel.schema().name().to_string(), out_attrs)?;
            let tuples = rel.tuples().iter().map(|t| t.project(&positions)).collect();
            Relation::new(schema, tuples)
        }
        LogicalPlan::Qualify { input, alias } => {
            let rel = execute(input, db)?;
            Ok(rel.qualified(alias))
        }
        LogicalPlan::Join { left, right, kind } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            match kind {
                JoinKind::Natural => natural_join(&l, &r),
                JoinKind::Theta(pred) => theta_join(&l, &r, pred),
            }
        }
        LogicalPlan::Union { left, right } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            if l.schema().arity() != r.schema().arity() {
                return Err(GsjError::Schema(format!(
                    "union arity mismatch: {} vs {}",
                    l.schema().arity(),
                    r.schema().arity()
                )));
            }
            let (schema, mut tuples) = l.into_parts();
            tuples.extend(r.into_parts().1);
            Relation::new(schema, tuples)
        }
        LogicalPlan::Difference { left, right } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            if l.schema().arity() != r.schema().arity() {
                return Err(GsjError::Schema(format!(
                    "difference arity mismatch: {} vs {}",
                    l.schema().arity(),
                    r.schema().arity()
                )));
            }
            let exclude: std::collections::HashSet<&Tuple> = r.tuples().iter().collect();
            let kept: Vec<Tuple> = l
                .tuples()
                .iter()
                .filter(|t| !exclude.contains(t))
                .cloned()
                .collect();
            Relation::new(l.schema().clone(), kept)
        }
        LogicalPlan::Distinct { input } => {
            let rel = execute(input, db)?;
            let (schema, tuples) = rel.into_parts();
            let mut seen: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
            let mut kept = Vec::new();
            for t in tuples {
                if seen.insert(t.clone()) {
                    kept.push(t);
                }
            }
            Relation::new(schema, kept)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(&execute(input, db)?, group_by, aggs),
        LogicalPlan::Sort { input, by, desc } => {
            let rel = execute(input, db)?;
            let keys: Vec<usize> = by
                .iter()
                .map(|c| Expr::resolve_column(rel.schema(), c))
                .collect::<Result<_>>()?;
            let (schema, mut tuples) = rel.into_parts();
            tuples.sort_by(|a, b| {
                let ord = keys
                    .iter()
                    .map(|&i| a.get(i).cmp(b.get(i)))
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            Relation::new(schema, tuples)
        }
        LogicalPlan::Limit { input, n } => {
            let rel = execute(input, db)?;
            let (schema, mut tuples) = rel.into_parts();
            tuples.truncate(*n);
            Relation::new(schema, tuples)
        }
    }
}

/// Natural hash join on all common attribute names. NULL keys never match
/// (SQL semantics).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    let common = l.schema().common_attrs(r.schema());
    if common.is_empty() {
        return product(l, r);
    }
    let l_keys: Vec<usize> = common
        .iter()
        .map(|a| l.schema().require(a))
        .collect::<Result<_>>()?;
    let r_keys: Vec<usize> = common
        .iter()
        .map(|a| r.schema().require(a))
        .collect::<Result<_>>()?;
    let r_rest: Vec<usize> = (0..r.schema().arity())
        .filter(|i| !r_keys.contains(i))
        .collect();

    let mut attrs: Vec<String> = l.schema().attrs().to_vec();
    attrs.extend(r_rest.iter().map(|&i| r.schema().attrs()[i].clone()));
    let schema = Schema::new(
        format!("{}_join_{}", l.schema().name(), r.schema().name()),
        attrs,
    )?;

    // Build on the smaller side.
    let build_left = l.len() <= r.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (l, r, &l_keys, &r_keys)
    } else {
        (r, l, &r_keys, &l_keys)
    };
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in build.tuples().iter().enumerate() {
        let key: Vec<Value> = build_keys.iter().map(|&k| t.get(k).clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    for probe_t in probe.tuples() {
        let key: Vec<Value> = probe_keys.iter().map(|&k| probe_t.get(k).clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let build_t = &build.tuples()[bi];
                let (lt, rt) = if build_left {
                    (build_t, probe_t)
                } else {
                    (probe_t, build_t)
                };
                let mut vals: Vec<Value> = lt.values().to_vec();
                vals.extend(r_rest.iter().map(|&i| rt.get(i).clone()));
                out.push(Tuple::new(vals));
            }
        }
    }
    Relation::new(schema, out)
}

/// Cartesian product; attribute names must stay distinct.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let mut attrs = l.schema().attrs().to_vec();
    attrs.extend(r.schema().attrs().iter().cloned());
    let schema = Schema::new(
        format!("{}_x_{}", l.schema().name(), r.schema().name()),
        attrs,
    )
    .map_err(|e| {
        GsjError::Schema(format!(
            "product requires distinct attribute names (qualify inputs first): {e}"
        ))
    })?;
    let mut out = Vec::with_capacity(l.len() * r.len());
    for lt in l.tuples() {
        for rt in r.tuples() {
            out.push(lt.concat(rt));
        }
    }
    Relation::new(schema, out)
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    match pred {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Theta join. Equi-conjuncts whose two column sides resolve on opposite
/// inputs become hash keys; the full predicate is still verified on each
/// candidate pair.
pub fn theta_join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let mut attrs = l.schema().attrs().to_vec();
    attrs.extend(r.schema().attrs().iter().cloned());
    let schema = Schema::new(
        format!("{}_tj_{}", l.schema().name(), r.schema().name()),
        attrs,
    )
    .map_err(|e| {
        GsjError::Schema(format!(
            "theta join requires distinct attribute names (qualify inputs first): {e}"
        ))
    })?;

    // Mine hashable equi pairs.
    let mut l_keys = Vec::new();
    let mut r_keys = Vec::new();
    for c in conjuncts(pred) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let (la, ra) = (
                    Expr::resolve_column(l.schema(), ca).ok(),
                    Expr::resolve_column(r.schema(), ca).ok(),
                );
                let (lb, rb) = (
                    Expr::resolve_column(l.schema(), cb).ok(),
                    Expr::resolve_column(r.schema(), cb).ok(),
                );
                match (la, ra, lb, rb) {
                    (Some(i), None, None, Some(j)) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    (None, Some(j), Some(i), None) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    _ => {}
                }
            }
        }
    }

    let mut out = Vec::new();
    if l_keys.is_empty() {
        // Nested loop.
        for lt in l.tuples() {
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                if pred.holds(&schema, &joined)? {
                    out.push(joined);
                }
            }
        }
    } else {
        let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, t) in l.tuples().iter().enumerate() {
            let key: Vec<Value> = l_keys.iter().map(|&k| t.get(k).clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        for rt in r.tuples() {
            let key: Vec<Value> = r_keys.iter().map(|&k| rt.get(k).clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &li in matches {
                    let joined = l.tuples()[li].concat(rt);
                    if pred.holds(&schema, &joined)? {
                        out.push(joined);
                    }
                }
            }
        }
    }
    Relation::new(schema, out)
}

fn aggregate(rel: &Relation, group_by: &[String], aggs: &[AggSpec]) -> Result<Relation> {
    let group_pos: Vec<usize> = group_by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let agg_pos: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.col == "*" {
                Ok(None)
            } else {
                Expr::resolve_column(rel.schema(), &a.col).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut attrs: Vec<String> = group_pos
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    attrs.extend(aggs.iter().map(|a| a.alias.clone()));
    let schema = Schema::new(format!("{}_agg", rel.schema().name()), attrs)?;

    // Group.
    let mut groups: FxHashMap<Vec<Value>, Vec<&Tuple>> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in rel.tuples() {
        let key: Vec<Value> = group_pos.iter().map(|&i| t.get(i).clone()).collect();
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(t);
    }
    if group_by.is_empty() && groups.is_empty() {
        // Global aggregate over the empty input still yields one row.
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let rows = &groups[&key];
        let mut vals = key.clone();
        for (spec, pos) in aggs.iter().zip(&agg_pos) {
            vals.push(eval_agg(spec.func, *pos, rows));
        }
        out.push(Tuple::new(vals));
    }
    Relation::new(schema, out)
}

fn eval_agg(func: AggFunc, pos: Option<usize>, rows: &[&Tuple]) -> Value {
    match func {
        AggFunc::Count => match pos {
            None => Value::Int(rows.len() as i64),
            Some(i) => Value::Int(rows.iter().filter(|t| !t.get(i).is_null()).count() as i64),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let i = match pos {
                Some(i) => i,
                None => return Value::Null,
            };
            let nums: Vec<f64> = rows.iter().filter_map(|t| t.get(i).as_f64()).collect();
            if nums.is_empty() {
                return Value::Null;
            }
            let sum: f64 = nums.iter().sum();
            if func == AggFunc::Avg {
                return Value::Float(sum / nums.len() as f64);
            }
            let all_int = rows
                .iter()
                .all(|t| matches!(t.get(i), Value::Int(_) | Value::Null));
            if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let i = match pos {
                Some(i) => i,
                None => return Value::Null,
            };
            let mut vals: Vec<&Value> =
                rows.iter().map(|t| t.get(i)).filter(|v| !v.is_null()).collect();
            if vals.is_empty() {
                return Value::Null;
            }
            vals.sort();
            if func == AggFunc::Min {
                vals[0].clone()
            } else {
                vals[vals.len() - 1].clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut customer = Relation::empty(Schema::of(
            "customer",
            &["cid", "name", "credit", "bal"],
        ));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob", "fair", 500),
            ("cid02", "Bob", "good", 110),
            ("cid03", "Guy", "good", 50),
            ("cid04", "Ada", "fair", 100),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        let mut orders = Relation::empty(Schema::of("orders", &["cid", "pid"]));
        for (cid, pid) in [("cid01", "fd1"), ("cid02", "fd2"), ("cid02", "fd3")] {
            orders
                .push_values(vec![Value::str(cid), Value::str(pid)])
                .unwrap();
        }
        let mut db = Database::new();
        db.insert(customer);
        db.insert(orders);
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["cid"]);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().attrs(), &["cid".to_string()]);
    }

    #[test]
    fn natural_join_matches_on_common_attr() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders"));
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 3);
        // cid appears once.
        assert_eq!(
            r.schema()
                .attrs()
                .iter()
                .filter(|a| a.as_str() == "cid")
                .count(),
            1
        );
        assert!(r.schema().contains("pid"));
    }

    #[test]
    fn natural_join_skips_null_keys() {
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Null, Value::Int(1)]).unwrap();
        l.push_values(vec![Value::str("x"), Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Null, Value::Int(3)]).unwrap();
        r.push_values(vec![Value::str("x"), Value::Int(4)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn disjoint_schemas_fall_back_to_product() {
        let mut l = Relation::empty(Schema::of("l", &["a"]));
        l.push_values(vec![Value::Int(1)]).unwrap();
        l.push_values(vec![Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["b"]));
        r.push_values(vec![Value::Int(3)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().attrs(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn theta_join_with_equi_and_residual() {
        let db = db();
        // Self-join customers with the same name but different ids
        // (Q2-style pattern).
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Eq, Expr::col("T1.name"), Expr::col("T2.name")).and(Expr::cmp(
                CmpOp::Ne,
                Expr::col("T1.cid"),
                Expr::col("T2.cid"),
            )),
        );
        let r = execute(&plan, &db).unwrap();
        // Bob(cid01)×Bob(cid02) both orders.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_for_non_equi() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Lt, Expr::col("T1.bal"), Expr::col("T2.bal")),
        );
        let r = execute(&plan, &db).unwrap();
        // Pairs with strictly increasing balances: 50<100<110<500 → 6 pairs.
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn union_difference_distinct() {
        let db = db();
        let good = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["name"]);
        let fair = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "fair"))
            .project(&["name"]);
        let union = LogicalPlan::Union {
            left: Box::new(good.clone()),
            right: Box::new(fair.clone()),
        };
        assert_eq!(execute(&union, &db).unwrap().len(), 4);
        let distinct = LogicalPlan::Distinct {
            input: Box::new(union),
        };
        // Names: Bob, Guy, Bob, Ada → distinct {Bob, Guy, Ada}.
        assert_eq!(execute(&distinct, &db).unwrap().len(), 3);
        let diff = LogicalPlan::Difference {
            left: Box::new(good),
            right: Box::new(fair),
        };
        // good names {Bob, Guy} minus fair names {Bob, Ada} = {Guy}.
        assert_eq!(execute(&diff, &db).unwrap().len(), 1);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("customer")),
            group_by: vec!["credit".into()],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "bal", "total"),
                AggSpec::new(AggFunc::Max, "bal", "biggest"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        let fair_row = r
            .tuples()
            .iter()
            .find(|t| t.get(0) == &Value::str("fair"))
            .unwrap();
        assert_eq!(fair_row.get(1), &Value::Int(2));
        assert_eq!(fair_row.get(2), &Value::Int(600));
        assert_eq!(fair_row.get(3), &Value::Int(500));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(
                LogicalPlan::scan("customer").select(Expr::col_eq("credit", "excellent")),
            ),
            group_by: vec![],
            aggs: vec![AggSpec::count_star("n"), AggSpec::new(AggFunc::Avg, "bal", "avg")],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
        assert!(r.tuples()[0].get(1).is_null());
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::scan("customer")),
                by: vec!["bal".into()],
                desc: true,
            }),
            n: 2,
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(3), &Value::Int(500));
        assert_eq!(r.tuples()[1].get(3), &Value::Int(110));
    }

    #[test]
    fn qualify_then_unqualified_filter() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .qualify("T")
            .select(Expr::col_eq("credit", "good"));
        assert_eq!(execute(&plan, &db).unwrap().len(), 2);
    }

    #[test]
    fn product_rejects_duplicate_names() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("customer"));
        // Natural self-join on all attrs is fine (it's an intersection)...
        assert!(execute(&plan, &db).is_ok());
        // ...but an unqualified theta self-join must be rejected.
        let bad = LogicalPlan::scan("customer").theta_join(
            LogicalPlan::scan("customer"),
            Expr::lit(true),
        );
        assert!(execute(&bad, &db).is_err());
    }
}
