//! The logical-plan interpreter and the shared operator kernels.
//!
//! Joins are hash-based: natural joins key on the common attributes, theta
//! joins mine equi-conjuncts (`left.col = right.col`) from the predicate
//! and hash on those, falling back to a nested loop only for genuinely
//! non-equi predicates — the same discipline a production engine applies.
//!
//! The row-level kernels ([`hash_join_core`], [`nested_loop_core`],
//! [`aggregate`]) live here and are shared with the physical
//! executor ([`crate::physical`]), which wraps them with per-operator
//! statistics. Join keys are extracted once, by [`hash_key`], as vectors
//! of *borrowed* values — the build table maps borrowed keys to row
//! indices instead of cloning every key `Value` eagerly.

use crate::catalog::Database;
use crate::expr::{AggFunc, CmpOp, Expr};
use crate::plan::{AggSpec, JoinKind, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use gsj_common::{FxHashMap, GsjError, Result, Value};

/// Execute a plan against a database with the row-at-a-time interpreter.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan(name) => Ok(db.get(name)?.clone()),
        LogicalPlan::Values(rel) => Ok(rel.clone()),
        LogicalPlan::Select { input, pred } => filter(execute(input, db)?, pred),
        LogicalPlan::Project { input, cols } => project(&execute(input, db)?, cols),
        LogicalPlan::Qualify { input, alias } => {
            let rel = execute(input, db)?;
            Ok(rel.qualified(alias))
        }
        LogicalPlan::Join { left, right, kind } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            match kind {
                JoinKind::Natural => natural_join(&l, &r),
                JoinKind::Theta(pred) => theta_join(&l, &r, pred),
            }
        }
        LogicalPlan::Union { left, right } => union(execute(left, db)?, execute(right, db)?),
        LogicalPlan::Difference { left, right } => {
            difference(execute(left, db)?, &execute(right, db)?)
        }
        LogicalPlan::Distinct { input } => Ok(distinct(execute(input, db)?)),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(&execute(input, db)?, group_by, aggs),
        LogicalPlan::Sort { input, by, desc } => sort(execute(input, db)?, by, *desc),
        LogicalPlan::Limit { input, n } => {
            let rel = execute(input, db)?;
            let (schema, mut tuples) = rel.into_parts();
            tuples.truncate(*n);
            Relation::new(schema, tuples)
        }
    }
}

/// The join key of `t` at `keys`, as borrowed values; `None` when any key
/// cell is NULL (SQL semantics: NULL keys never match).
#[inline]
pub fn hash_key<'a>(t: &'a Tuple, keys: &[usize]) -> Option<Vec<&'a Value>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let v = t.get(k);
        if v.is_null() {
            return None;
        }
        out.push(v);
    }
    Some(out)
}

/// Build-side hash index: borrowed key → row indices. No key `Value` is
/// cloned; the map borrows from `tuples`.
pub fn build_row_index<'a>(
    tuples: &'a [Tuple],
    keys: &[usize],
) -> FxHashMap<Vec<&'a Value>, Vec<usize>> {
    let mut table: FxHashMap<Vec<&'a Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in tuples.iter().enumerate() {
        if let Some(key) = hash_key(t, keys) {
            table.entry(key).or_default().push(i);
        }
    }
    table
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    match pred {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

/// Mine hashable equi-conjuncts (`l.col = r.col` with the two sides
/// resolving on opposite inputs) out of a theta predicate. Returns
/// parallel position vectors into the left and right schemas.
pub fn equi_positions(pred: &Expr, ls: &Schema, rs: &Schema) -> (Vec<usize>, Vec<usize>) {
    let mut l_keys = Vec::new();
    let mut r_keys = Vec::new();
    for c in conjuncts(pred) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let (la, ra) = (
                    Expr::resolve_column(ls, ca).ok(),
                    Expr::resolve_column(rs, ca).ok(),
                );
                let (lb, rb) = (
                    Expr::resolve_column(ls, cb).ok(),
                    Expr::resolve_column(rs, cb).ok(),
                );
                match (la, ra, lb, rb) {
                    (Some(i), None, None, Some(j)) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    (None, Some(j), Some(i), None) => {
                        l_keys.push(i);
                        r_keys.push(j);
                    }
                    _ => {}
                }
            }
        }
    }
    (l_keys, r_keys)
}

/// Build/probe cardinalities observed by one hash-join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Rows hashed into the build table.
    pub build_rows: usize,
    /// Rows streamed through the probe side.
    pub probe_rows: usize,
}

/// How a hash join combines its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashJoinMode {
    /// Natural join: output = left attrs ++ right-minus-common; the
    /// smaller input becomes the build side.
    Natural,
    /// Equi join mined from a theta predicate: output is the full
    /// concatenation, the left input is the build side, and the residual
    /// predicate is re-verified on every candidate pair.
    Equi,
}

/// The single hash-join kernel behind [`natural_join`], [`theta_join`],
/// and the physical `HashJoin` operator.
pub fn hash_join_core(
    l: &Relation,
    r: &Relation,
    l_keys: &[usize],
    r_keys: &[usize],
    mode: HashJoinMode,
    residual: Option<&Expr>,
    schema: Schema,
) -> Result<(Relation, JoinStats)> {
    match mode {
        HashJoinMode::Natural => {
            let r_rest: Vec<usize> = (0..r.schema().arity())
                .filter(|i| !r_keys.contains(i))
                .collect();
            // Build on the smaller side.
            let build_left = l.len() <= r.len();
            let (build, probe, build_keys, probe_keys) = if build_left {
                (l, r, l_keys, r_keys)
            } else {
                (r, l, r_keys, l_keys)
            };
            let table = build_row_index(build.tuples(), build_keys);
            let mut out = Vec::new();
            for probe_t in probe.tuples() {
                let Some(key) = hash_key(probe_t, probe_keys) else {
                    continue;
                };
                if let Some(matches) = table.get(&key) {
                    for &bi in matches {
                        let build_t = &build.tuples()[bi];
                        let (lt, rt) = if build_left {
                            (build_t, probe_t)
                        } else {
                            (probe_t, build_t)
                        };
                        let mut vals: Vec<Value> = lt.values().to_vec();
                        vals.extend(r_rest.iter().map(|&i| rt.get(i).clone()));
                        out.push(Tuple::new(vals));
                    }
                }
            }
            let stats = JoinStats {
                build_rows: build.len(),
                probe_rows: probe.len(),
            };
            Ok((Relation::new(schema, out)?, stats))
        }
        HashJoinMode::Equi => {
            let table = build_row_index(l.tuples(), l_keys);
            let mut out = Vec::new();
            for rt in r.tuples() {
                let Some(key) = hash_key(rt, r_keys) else {
                    continue;
                };
                if let Some(matches) = table.get(&key) {
                    for &li in matches {
                        let joined = l.tuples()[li].concat(rt);
                        match residual {
                            Some(pred) if !pred.holds(&schema, &joined)? => {}
                            _ => out.push(joined),
                        }
                    }
                }
            }
            let stats = JoinStats {
                build_rows: l.len(),
                probe_rows: r.len(),
            };
            Ok((Relation::new(schema, out)?, stats))
        }
    }
}

/// The nested-loop kernel: every pair, filtered by `pred` over the
/// concatenated schema.
pub fn nested_loop_core(
    l: &Relation,
    r: &Relation,
    pred: &Expr,
    schema: Schema,
) -> Result<Relation> {
    let mut out = Vec::new();
    for lt in l.tuples() {
        for rt in r.tuples() {
            let joined = lt.concat(rt);
            if pred.holds(&schema, &joined)? {
                out.push(joined);
            }
        }
    }
    Relation::new(schema, out)
}

/// The concatenated-output schema of a theta-style join; errors when
/// attribute names collide.
pub(crate) fn concat_schema(l: &Relation, r: &Relation, sep: &str, what: &str) -> Result<Schema> {
    let mut attrs = l.schema().attrs().to_vec();
    attrs.extend(r.schema().attrs().iter().cloned());
    Schema::new(
        format!("{}{sep}{}", l.schema().name(), r.schema().name()),
        attrs,
    )
    .map_err(|e| {
        GsjError::Schema(format!(
            "{what} requires distinct attribute names (qualify inputs first): {e}"
        ))
    })
}

/// Natural-join key positions (left, right) and merged output schema.
pub(crate) type NaturalJoinParts = (Vec<usize>, Vec<usize>, Schema);

/// The merged-output schema of a natural join, plus the key positions.
pub(crate) fn natural_join_parts(l: &Relation, r: &Relation) -> Result<Option<NaturalJoinParts>> {
    let common = l.schema().common_attrs(r.schema());
    if common.is_empty() {
        return Ok(None);
    }
    let l_keys: Vec<usize> = common
        .iter()
        .map(|a| l.schema().require(a))
        .collect::<Result<_>>()?;
    let r_keys: Vec<usize> = common
        .iter()
        .map(|a| r.schema().require(a))
        .collect::<Result<_>>()?;
    let mut attrs: Vec<String> = l.schema().attrs().to_vec();
    attrs.extend(
        (0..r.schema().arity())
            .filter(|i| !r_keys.contains(i))
            .map(|i| r.schema().attrs()[i].clone()),
    );
    let schema = Schema::new(
        format!("{}_join_{}", l.schema().name(), r.schema().name()),
        attrs,
    )?;
    Ok(Some((l_keys, r_keys, schema)))
}

/// Natural hash join on all common attribute names. NULL keys never match
/// (SQL semantics).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation> {
    match natural_join_parts(l, r)? {
        None => product(l, r),
        Some((l_keys, r_keys, schema)) => {
            Ok(hash_join_core(l, r, &l_keys, &r_keys, HashJoinMode::Natural, None, schema)?.0)
        }
    }
}

/// Cartesian product; attribute names must stay distinct.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = concat_schema(l, r, "_x_", "product")?;
    let mut out = Vec::with_capacity(l.len() * r.len());
    for lt in l.tuples() {
        for rt in r.tuples() {
            out.push(lt.concat(rt));
        }
    }
    Relation::new(schema, out)
}

/// Theta join. Equi-conjuncts whose two column sides resolve on opposite
/// inputs become hash keys; the full predicate is still verified on each
/// candidate pair.
pub fn theta_join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let schema = concat_schema(l, r, "_tj_", "theta join")?;
    let (l_keys, r_keys) = equi_positions(pred, l.schema(), r.schema());
    if l_keys.is_empty() {
        nested_loop_core(l, r, pred, schema)
    } else {
        Ok(hash_join_core(
            l,
            r,
            &l_keys,
            &r_keys,
            HashJoinMode::Equi,
            Some(pred),
            schema,
        )?
        .0)
    }
}

/// σ_pred kernel.
pub(crate) fn filter(rel: Relation, pred: &Expr) -> Result<Relation> {
    let (schema, tuples) = rel.into_parts();
    let mut kept = Vec::new();
    for t in tuples {
        if pred.holds(&schema, &t)? {
            kept.push(t);
        }
    }
    Relation::new(schema, kept)
}

/// π_cols kernel (bag projection with name resolution).
pub(crate) fn project(rel: &Relation, cols: &[String]) -> Result<Relation> {
    let positions: Vec<usize> = cols
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let out_attrs: Vec<String> = positions
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    let schema = Schema::new(rel.schema().name().to_string(), out_attrs)?;
    let tuples = rel.tuples().iter().map(|t| t.project(&positions)).collect();
    Relation::new(schema, tuples)
}

/// Bag-union kernel (arity-checked, keeps the left schema).
pub(crate) fn union(l: Relation, r: Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "union arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let (schema, mut tuples) = l.into_parts();
    tuples.extend(r.into_parts().1);
    Relation::new(schema, tuples)
}

/// Bag-difference kernel `l − r`.
pub(crate) fn difference(l: Relation, r: &Relation) -> Result<Relation> {
    if l.schema().arity() != r.schema().arity() {
        return Err(GsjError::Schema(format!(
            "difference arity mismatch: {} vs {}",
            l.schema().arity(),
            r.schema().arity()
        )));
    }
    let exclude: std::collections::HashSet<&Tuple> = r.tuples().iter().collect();
    let kept: Vec<Tuple> = l
        .tuples()
        .iter()
        .filter(|t| !exclude.contains(t))
        .cloned()
        .collect();
    Relation::new(l.schema().clone(), kept)
}

/// Duplicate-elimination kernel (first occurrence wins).
pub(crate) fn distinct(rel: Relation) -> Relation {
    let (schema, tuples) = rel.into_parts();
    let mut seen: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
    let mut kept = Vec::new();
    for t in tuples {
        if seen.insert(t.clone()) {
            kept.push(t);
        }
    }
    // INVARIANT(allowlist): every kept tuple came out of `rel`, so its
    // arity matches the unchanged schema; `Relation::new` cannot fail.
    Relation::new(schema, kept).expect("distinct preserves arity")
}

/// Stable sort kernel.
pub(crate) fn sort(rel: Relation, by: &[String], desc: bool) -> Result<Relation> {
    let keys: Vec<usize> = by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let (schema, mut tuples) = rel.into_parts();
    tuples.sort_by(|a, b| {
        let ord = keys
            .iter()
            .map(|&i| a.get(i).cmp(b.get(i)))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    Relation::new(schema, tuples)
}

/// Grouping + aggregation kernel. Group keys are borrowed during
/// hashing and cloned only once per *emitted* row.
pub fn aggregate(rel: &Relation, group_by: &[String], aggs: &[AggSpec]) -> Result<Relation> {
    let group_pos: Vec<usize> = group_by
        .iter()
        .map(|c| Expr::resolve_column(rel.schema(), c))
        .collect::<Result<_>>()?;
    let agg_pos: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.col == "*" {
                Ok(None)
            } else {
                Expr::resolve_column(rel.schema(), &a.col).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut attrs: Vec<String> = group_pos
        .iter()
        .map(|&i| rel.schema().attrs()[i].clone())
        .collect();
    attrs.extend(aggs.iter().map(|a| a.alias.clone()));
    let schema = Schema::new(format!("{}_agg", rel.schema().name()), attrs)?;

    // Group on borrowed keys; `order` keeps first-seen group order.
    let mut groups: FxHashMap<Vec<&Value>, Vec<&Tuple>> = FxHashMap::default();
    let mut order: Vec<Vec<&Value>> = Vec::new();
    for t in rel.tuples() {
        let key: Vec<&Value> = group_pos.iter().map(|&i| t.get(i)).collect();
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(t);
    }
    if group_by.is_empty() && groups.is_empty() {
        // Global aggregate over the empty input still yields one row.
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let rows = &groups[&key];
        let mut vals: Vec<Value> = key.iter().map(|&v| v.clone()).collect();
        for (spec, pos) in aggs.iter().zip(&agg_pos) {
            vals.push(eval_agg(spec.func, *pos, rows));
        }
        out.push(Tuple::new(vals));
    }
    Relation::new(schema, out)
}

fn eval_agg(func: AggFunc, pos: Option<usize>, rows: &[&Tuple]) -> Value {
    match func {
        AggFunc::Count => match pos {
            None => Value::Int(rows.len() as i64),
            Some(i) => Value::Int(rows.iter().filter(|t| !t.get(i).is_null()).count() as i64),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let i = match pos {
                Some(i) => i,
                None => return Value::Null,
            };
            let nums: Vec<f64> = rows.iter().filter_map(|t| t.get(i).as_f64()).collect();
            if nums.is_empty() {
                return Value::Null;
            }
            let sum: f64 = nums.iter().sum();
            if func == AggFunc::Avg {
                return Value::Float(sum / nums.len() as f64);
            }
            let all_int = rows
                .iter()
                .all(|t| matches!(t.get(i), Value::Int(_) | Value::Null));
            if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let i = match pos {
                Some(i) => i,
                None => return Value::Null,
            };
            let mut vals: Vec<&Value> = rows
                .iter()
                .map(|t| t.get(i))
                .filter(|v| !v.is_null())
                .collect();
            if vals.is_empty() {
                return Value::Null;
            }
            vals.sort();
            if func == AggFunc::Min {
                vals[0].clone()
            } else {
                vals[vals.len() - 1].clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut customer =
            Relation::empty(Schema::of("customer", &["cid", "name", "credit", "bal"]));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob", "fair", 500),
            ("cid02", "Bob", "good", 110),
            ("cid03", "Guy", "good", 50),
            ("cid04", "Ada", "fair", 100),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        let mut orders = Relation::empty(Schema::of("orders", &["cid", "pid"]));
        for (cid, pid) in [("cid01", "fd1"), ("cid02", "fd2"), ("cid02", "fd3")] {
            orders
                .push_values(vec![Value::str(cid), Value::str(pid)])
                .unwrap();
        }
        let mut db = Database::new();
        db.insert(customer);
        db.insert(orders);
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["cid"]);
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().attrs(), &["cid".to_string()]);
    }

    #[test]
    fn natural_join_matches_on_common_attr() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders"));
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 3);
        // cid appears once.
        assert_eq!(
            r.schema()
                .attrs()
                .iter()
                .filter(|a| a.as_str() == "cid")
                .count(),
            1
        );
        assert!(r.schema().contains("pid"));
    }

    #[test]
    fn natural_join_skips_null_keys() {
        let mut l = Relation::empty(Schema::of("l", &["k", "a"]));
        l.push_values(vec![Value::Null, Value::Int(1)]).unwrap();
        l.push_values(vec![Value::str("x"), Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["k", "b"]));
        r.push_values(vec![Value::Null, Value::Int(3)]).unwrap();
        r.push_values(vec![Value::str("x"), Value::Int(4)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn disjoint_schemas_fall_back_to_product() {
        let mut l = Relation::empty(Schema::of("l", &["a"]));
        l.push_values(vec![Value::Int(1)]).unwrap();
        l.push_values(vec![Value::Int(2)]).unwrap();
        let mut r = Relation::empty(Schema::of("r", &["b"]));
        r.push_values(vec![Value::Int(3)]).unwrap();
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().attrs(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn theta_join_with_equi_and_residual() {
        let db = db();
        // Self-join customers with the same name but different ids
        // (Q2-style pattern).
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Eq, Expr::col("T1.name"), Expr::col("T2.name")).and(Expr::cmp(
                CmpOp::Ne,
                Expr::col("T1.cid"),
                Expr::col("T2.cid"),
            )),
        );
        let r = execute(&plan, &db).unwrap();
        // Bob(cid01)×Bob(cid02) both orders.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_for_non_equi() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Lt, Expr::col("T1.bal"), Expr::col("T2.bal")),
        );
        let r = execute(&plan, &db).unwrap();
        // Pairs with strictly increasing balances: 50<100<110<500 → 6 pairs.
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn union_difference_distinct() {
        let db = db();
        let good = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["name"]);
        let fair = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "fair"))
            .project(&["name"]);
        let union = LogicalPlan::Union {
            left: Box::new(good.clone()),
            right: Box::new(fair.clone()),
        };
        assert_eq!(execute(&union, &db).unwrap().len(), 4);
        let distinct = LogicalPlan::Distinct {
            input: Box::new(union),
        };
        // Names: Bob, Guy, Bob, Ada → distinct {Bob, Guy, Ada}.
        assert_eq!(execute(&distinct, &db).unwrap().len(), 3);
        let diff = LogicalPlan::Difference {
            left: Box::new(good),
            right: Box::new(fair),
        };
        // good names {Bob, Guy} minus fair names {Bob, Ada} = {Guy}.
        assert_eq!(execute(&diff, &db).unwrap().len(), 1);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("customer")),
            group_by: vec!["credit".into()],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "bal", "total"),
                AggSpec::new(AggFunc::Max, "bal", "biggest"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        let fair_row = r
            .tuples()
            .iter()
            .find(|t| t.get(0) == &Value::str("fair"))
            .unwrap();
        assert_eq!(fair_row.get(1), &Value::Int(2));
        assert_eq!(fair_row.get(2), &Value::Int(600));
        assert_eq!(fair_row.get(3), &Value::Int(500));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(
                LogicalPlan::scan("customer").select(Expr::col_eq("credit", "excellent")),
            ),
            group_by: vec![],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Avg, "bal", "avg"),
            ],
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
        assert!(r.tuples()[0].get(1).is_null());
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::scan("customer")),
                by: vec!["bal".into()],
                desc: true,
            }),
            n: 2,
        };
        let r = execute(&plan, &db).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(3), &Value::Int(500));
        assert_eq!(r.tuples()[1].get(3), &Value::Int(110));
    }

    #[test]
    fn qualify_then_unqualified_filter() {
        let db = db();
        let plan = LogicalPlan::scan("customer")
            .qualify("T")
            .select(Expr::col_eq("credit", "good"));
        assert_eq!(execute(&plan, &db).unwrap().len(), 2);
    }

    #[test]
    fn product_rejects_duplicate_names() {
        let db = db();
        let plan = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("customer"));
        // Natural self-join on all attrs is fine (it's an intersection)...
        assert!(execute(&plan, &db).is_ok());
        // ...but an unqualified theta self-join must be rejected.
        let bad = LogicalPlan::scan("customer")
            .theta_join(LogicalPlan::scan("customer"), Expr::lit(true));
        assert!(execute(&bad, &db).is_err());
    }

    #[test]
    fn hash_key_rejects_null_and_borrows() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::str("x")]);
        assert!(hash_key(&t, &[0, 2]).is_some());
        assert!(hash_key(&t, &[0, 1]).is_none());
        assert!(hash_key(&t, &[]).is_some());
    }

    #[test]
    fn equi_positions_mines_cross_input_pairs() {
        let ls = Schema::of("l", &["T1.a", "T1.b"]);
        let rs = Schema::of("r", &["T2.a", "T2.c"]);
        let pred = Expr::cmp(CmpOp::Eq, Expr::col("T1.a"), Expr::col("T2.a"))
            .and(Expr::cmp(CmpOp::Eq, Expr::col("T2.c"), Expr::col("T1.b")))
            .and(Expr::cmp(CmpOp::Lt, Expr::col("T1.b"), Expr::lit(5i64)));
        let (lk, rk) = equi_positions(&pred, &ls, &rs);
        assert_eq!(lk, vec![0, 1]);
        assert_eq!(rk, vec![0, 1]);
    }
}
