//! The physical operator layer.
//!
//! [`lower`] turns a [`LogicalPlan`] into a [`PhysicalPlan`] operator
//! tree, making the execution strategy explicit: theta joins with
//! minable equi-conjuncts become [`PhysicalPlan::HashJoin`] nodes,
//! everything else a [`PhysicalPlan::NestedLoopJoin`]. [`execute_physical`]
//! runs the tree through the same vectorized columnar kernels as the
//! logical interpreter (see [`crate::exec`]) while threading an [`ExecContext`]
//! that records per-operator counters — rows in/out, build/probe sizes,
//! and wall time — for `EXPLAIN ANALYZE`-style reporting.
//!
//! The instrumented single-operator helpers ([`join_rel`], [`filter_rel`],
//! [`aggregate_rel`], …) let callers that fold over already-materialized
//! relations (the gSQL engine) collect the same statistics without
//! building a tree first.

use crate::catalog::Database;
use crate::exec::{
    self, concat_schema, equi_positions, hash_join_governed, natural_join_parts,
    nested_loop_governed, HashJoinMode,
};
use crate::expr::Expr;
use crate::plan::{AggSpec, JoinKind, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use gsj_common::{GsjError, QueryGovernor, Result};
use std::time::Instant;

/// Materialized size of a relation, for [`QueryGovernor::charge_mem`]:
/// the real columnar payload bytes (typed vectors + validity bitmaps +
/// string payloads), not a per-row estimate. Budgets are advisory
/// ceilings, not an allocator — but the charge now tracks what the
/// columns actually hold.
pub fn approx_rel_bytes(rel: &Relation) -> u64 {
    rel.approx_bytes()
}

/// Counters recorded for one physical operator execution.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator label, e.g. `HashJoin(customer ⋈ orders)`.
    pub label: String,
    /// Total input rows (both sides for joins).
    pub rows_in: usize,
    /// Output rows.
    pub rows_out: usize,
    /// Rows hashed into the build table (hash joins only).
    pub build_rows: Option<usize>,
    /// Rows streamed through the probe side (hash joins only).
    pub probe_rows: Option<usize>,
    /// Wall time spent in the operator itself (children excluded where
    /// the tree executor runs them separately).
    pub nanos: u128,
    /// Index (into [`ExecContext::ops`]) of the enclosing operator, if
    /// any — set by the context from its open-operator stack, giving
    /// the flat vec an embedded tree structure.
    pub parent: Option<usize>,
    /// Start of the operator's own work as an offset from the gsj-obs
    /// trace epoch, so operator stats can be bridged into a span tree.
    pub start_ns: u64,
}

impl OpStats {
    /// Placeholder slot reserved by [`ExecContext::enter`] until
    /// [`ExecContext::exit`] fills in the real stats.
    fn pending() -> Self {
        OpStats {
            label: String::new(),
            rows_in: 0,
            rows_out: 0,
            build_rows: None,
            probe_rows: None,
            nanos: 0,
            parent: None,
            start_ns: 0,
        }
    }
}

/// Token for an operator slot opened with [`ExecContext::enter`].
#[must_use = "pass the token back to ExecContext::exit"]
pub struct OpToken(usize);

/// Per-operator execution statistics. Operators appear in *pre-order*:
/// [`enter`](ExecContext::enter) reserves a slot before the children
/// run, children link to it via [`OpStats::parent`], and
/// [`exit`](ExecContext::exit) fills the slot when the operator
/// finishes. Leaf recordings ([`record`](ExecContext::record)) append
/// with the innermost open operator as parent.
#[derive(Debug, Clone, Default)]
pub struct ExecContext {
    ops: Vec<OpStats>,
    /// Indices of currently open (entered, not yet exited) operators.
    stack: Vec<usize>,
    /// Governance handle for this execution: deadline / budgets /
    /// cancellation, checked at every operator boundary. Defaults to
    /// [`QueryGovernor::unlimited`].
    gov: QueryGovernor,
}

impl ExecContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty context governed by `gov`: every operator boundary run
    /// through this context checks the governor before executing and
    /// charges its output against the governor's budgets after.
    pub fn with_governor(gov: QueryGovernor) -> Self {
        ExecContext {
            gov,
            ..Self::default()
        }
    }

    /// This execution's governance handle (cheap to clone; clones share
    /// cancellation and budget state).
    pub fn governor(&self) -> &QueryGovernor {
        &self.gov
    }

    /// The recorded operators (pre-order; parent indexes embedded).
    pub fn ops(&self) -> &[OpStats] {
        &self.ops
    }

    /// Reserve a slot for an operator whose children are about to run.
    /// Everything recorded before the matching [`exit`](Self::exit)
    /// links to this slot as its parent.
    pub fn enter(&mut self) -> OpToken {
        let idx = self.ops.len();
        let mut slot = OpStats::pending();
        slot.parent = self.stack.last().copied();
        self.ops.push(slot);
        self.stack.push(idx);
        OpToken(idx)
    }

    /// Fill the slot reserved by [`enter`](Self::enter) with the
    /// operator's final stats (the parent link is preserved).
    pub fn exit(&mut self, token: OpToken, mut stats: OpStats) {
        stats.parent = self.ops[token.0].parent;
        self.ops[token.0] = stats;
        if let Some(pos) = self.stack.iter().rposition(|&i| i == token.0) {
            self.stack.truncate(pos);
        }
    }

    /// Record one finished leaf operator under the innermost open one.
    pub fn record(&mut self, mut stats: OpStats) {
        stats.parent = self.stack.last().copied();
        self.ops.push(stats);
    }

    /// Nesting depth of op `i` (0 for roots), following parent links.
    pub fn depth(&self, i: usize) -> usize {
        let mut depth = 0;
        let mut cur = self.ops[i].parent;
        while let Some(p) = cur {
            depth += 1;
            cur = self.ops[p].parent;
        }
        depth
    }

    /// Total wall time across all recorded operators.
    pub fn total_nanos(&self) -> u128 {
        self.ops.iter().map(|o| o.nanos).sum()
    }

    /// Render the counters as an aligned text table (the body of
    /// `EXPLAIN ANALYZE`); nested operators indent under their parent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>9} {:>9} {:>9} {:>9} {:>12}\n",
            "operator", "rows_in", "rows_out", "build", "probe", "time"
        ));
        for (i, op) in self.ops.iter().enumerate() {
            let fmt_opt = |v: Option<usize>| match v {
                Some(n) => n.to_string(),
                None => "-".to_string(),
            };
            let label = format!("{}{}", "  ".repeat(self.depth(i)), op.label);
            out.push_str(&format!(
                "{:<44} {:>9} {:>9} {:>9} {:>9} {:>12}\n",
                label,
                op.rows_in,
                op.rows_out,
                fmt_opt(op.build_rows),
                fmt_opt(op.probe_rows),
                format_nanos(op.nanos),
            ));
        }
        out.push_str(&format!(
            "total operator time: {}",
            format_nanos(self.total_nanos())
        ));
        out
    }
}

fn format_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// A physical operator tree. Column references stay *by name* and are
/// bound against the child's actual schema at execution time, exactly
/// like the logical interpreter — lowering chooses algorithms, not
/// offsets.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Full scan of a base table.
    Scan(String),
    /// An inline relation.
    Values(Relation),
    /// σ_pred.
    Filter {
        input: Box<PhysicalPlan>,
        pred: Expr,
    },
    /// π_cols (bag projection).
    Project {
        input: Box<PhysicalPlan>,
        cols: Vec<String>,
    },
    /// Prefix every attribute with `alias.`.
    Qualify {
        input: Box<PhysicalPlan>,
        alias: String,
    },
    /// Hash join; `keys` decides natural-merge vs equi-concat semantics.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        keys: JoinKeys,
        /// Residual theta predicate re-verified per candidate pair
        /// (equi mode only).
        residual: Option<Expr>,
    },
    /// Nested-loop join over the concatenated schema.
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        pred: Expr,
        /// True when lowered from a natural join with no common
        /// attributes (a cartesian product) — affects the output schema
        /// name and the error message on attribute collisions.
        product: bool,
    },
    /// Bag union (keeps the left schema).
    Union {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Bag difference `left − right`.
    Difference {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Duplicate elimination (first occurrence wins).
    Distinct { input: Box<PhysicalPlan> },
    /// Group + aggregate.
    Aggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// Stable sort.
    Sort {
        input: Box<PhysicalPlan>,
        by: Vec<String>,
        desc: bool,
    },
    /// First `n` rows.
    Limit { input: Box<PhysicalPlan>, n: usize },
}

/// How a [`PhysicalPlan::HashJoin`] keys and combines its inputs.
#[derive(Debug, Clone)]
pub enum JoinKeys {
    /// Key on all common attribute names; merge them in the output.
    Natural,
    /// Key on the mined equi pairs (parallel column-name lists resolved
    /// against each side); concatenate both schemas in the output.
    Equi {
        left: Vec<String>,
        right: Vec<String>,
    },
}

impl PhysicalPlan {
    /// One-line description of this operator (no children).
    pub fn describe(&self) -> String {
        match self {
            PhysicalPlan::Scan(name) => format!("Scan({name})"),
            PhysicalPlan::Values(rel) => {
                format!("Values({}, {} rows)", rel.schema().name(), rel.len())
            }
            PhysicalPlan::Filter { .. } => "Filter".into(),
            PhysicalPlan::Project { cols, .. } => format!("Project({})", cols.join(", ")),
            PhysicalPlan::Qualify { alias, .. } => format!("Qualify({alias})"),
            PhysicalPlan::HashJoin { keys, .. } => match keys {
                JoinKeys::Natural => "HashJoin(natural)".into(),
                JoinKeys::Equi { left, right } => {
                    let pairs: Vec<String> = left
                        .iter()
                        .zip(right)
                        .map(|(l, r)| format!("{l}={r}"))
                        .collect();
                    format!("HashJoin({})", pairs.join(", "))
                }
            },
            PhysicalPlan::NestedLoopJoin { product, .. } => {
                if *product {
                    "NestedLoopJoin(product)".into()
                } else {
                    "NestedLoopJoin(theta)".into()
                }
            }
            PhysicalPlan::Union { .. } => "Union".into(),
            PhysicalPlan::Difference { .. } => "Difference".into(),
            PhysicalPlan::Distinct { .. } => "Distinct".into(),
            PhysicalPlan::Aggregate { group_by, aggs, .. } => format!(
                "Aggregate(group_by=[{}], aggs={})",
                group_by.join(", "),
                aggs.len()
            ),
            PhysicalPlan::Sort { by, desc, .. } => format!(
                "Sort({}{})",
                by.join(", "),
                if *desc { " desc" } else { "" }
            ),
            PhysicalPlan::Limit { n, .. } => format!("Limit({n})"),
        }
    }

    /// Multi-line indented rendering of the whole tree.
    pub fn render(&self) -> String {
        fn walk(p: &PhysicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&p.describe());
            out.push('\n');
            for child in p.children() {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }

    fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Scan(_) | PhysicalPlan::Values(_) => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Qualify { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::Union { left, right }
            | PhysicalPlan::Difference { left, right } => vec![left, right],
        }
    }
}

/// The output schema a plan will produce against `db`, computed without
/// touching any tuples. Mirrors the interpreter's schema derivations
/// operator by operator.
pub fn output_schema(plan: &LogicalPlan, db: &Database) -> Result<Schema> {
    match plan {
        LogicalPlan::Scan(name) => Ok(db.get(name)?.schema().clone()),
        LogicalPlan::Values(rel) => Ok(rel.schema().clone()),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. } => output_schema(input, db),
        LogicalPlan::Limit { input, .. } => output_schema(input, db),
        LogicalPlan::Project { input, cols } => {
            let s = output_schema(input, db)?;
            let positions: Vec<usize> = cols
                .iter()
                .map(|c| Expr::resolve_column(&s, c))
                .collect::<Result<_>>()?;
            let attrs: Vec<String> = positions.iter().map(|&i| s.attrs()[i].clone()).collect();
            Schema::new(s.name().to_string(), attrs)
        }
        LogicalPlan::Qualify { input, alias } => Ok(output_schema(input, db)?.qualify(alias)),
        LogicalPlan::Join { left, right, kind } => {
            let ls = output_schema(left, db)?;
            let rs = output_schema(right, db)?;
            join_schema(&ls, &rs, kind)
        }
        LogicalPlan::Union { left, .. } | LogicalPlan::Difference { left, .. } => {
            output_schema(left, db)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let s = output_schema(input, db)?;
            let mut attrs: Vec<String> = group_by
                .iter()
                .map(|c| Expr::resolve_column(&s, c).map(|i| s.attrs()[i].clone()))
                .collect::<Result<_>>()?;
            attrs.extend(aggs.iter().map(|a| a.alias.clone()));
            Schema::new(format!("{}_agg", s.name()), attrs)
        }
    }
}

fn join_schema(ls: &Schema, rs: &Schema, kind: &JoinKind) -> Result<Schema> {
    match kind {
        JoinKind::Natural => {
            let common = ls.common_attrs(rs);
            if common.is_empty() {
                let mut attrs = ls.attrs().to_vec();
                attrs.extend(rs.attrs().iter().cloned());
                return Schema::new(format!("{}_x_{}", ls.name(), rs.name()), attrs);
            }
            let r_keys: Vec<usize> = common
                .iter()
                .map(|a| rs.require(a))
                .collect::<Result<_>>()?;
            let mut attrs = ls.attrs().to_vec();
            attrs.extend(
                (0..rs.arity())
                    .filter(|i| !r_keys.contains(i))
                    .map(|i| rs.attrs()[i].clone()),
            );
            Schema::new(format!("{}_join_{}", ls.name(), rs.name()), attrs)
        }
        JoinKind::Theta(_) => {
            let mut attrs = ls.attrs().to_vec();
            attrs.extend(rs.attrs().iter().cloned());
            Schema::new(format!("{}_tj_{}", ls.name(), rs.name()), attrs)
        }
    }
}

/// Lower a logical plan to a physical operator tree. Join algorithms are
/// chosen here: theta predicates are mined for equi-conjuncts (hash
/// join) with the rest kept as a residual; natural joins with no common
/// attributes become products.
pub fn lower(plan: &LogicalPlan, db: &Database) -> Result<PhysicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan(name) => PhysicalPlan::Scan(name.clone()),
        LogicalPlan::Values(rel) => PhysicalPlan::Values(rel.clone()),
        LogicalPlan::Select { input, pred } => PhysicalPlan::Filter {
            input: Box::new(lower(input, db)?),
            pred: pred.clone(),
        },
        LogicalPlan::Project { input, cols } => PhysicalPlan::Project {
            input: Box::new(lower(input, db)?),
            cols: cols.clone(),
        },
        LogicalPlan::Qualify { input, alias } => PhysicalPlan::Qualify {
            input: Box::new(lower(input, db)?),
            alias: alias.clone(),
        },
        LogicalPlan::Join { left, right, kind } => {
            let ls = output_schema(left, db)?;
            let rs = output_schema(right, db)?;
            let l = Box::new(lower(left, db)?);
            let r = Box::new(lower(right, db)?);
            match kind {
                JoinKind::Natural => {
                    if ls.common_attrs(&rs).is_empty() {
                        PhysicalPlan::NestedLoopJoin {
                            left: l,
                            right: r,
                            pred: Expr::lit(true),
                            product: true,
                        }
                    } else {
                        PhysicalPlan::HashJoin {
                            left: l,
                            right: r,
                            keys: JoinKeys::Natural,
                            residual: None,
                        }
                    }
                }
                JoinKind::Theta(pred) => {
                    let (l_keys, r_keys) = equi_positions(pred, &ls, &rs);
                    if l_keys.is_empty() {
                        PhysicalPlan::NestedLoopJoin {
                            left: l,
                            right: r,
                            pred: pred.clone(),
                            product: false,
                        }
                    } else {
                        PhysicalPlan::HashJoin {
                            left: l,
                            right: r,
                            keys: JoinKeys::Equi {
                                left: l_keys.iter().map(|&i| ls.attrs()[i].clone()).collect(),
                                right: r_keys.iter().map(|&i| rs.attrs()[i].clone()).collect(),
                            },
                            residual: Some(pred.clone()),
                        }
                    }
                }
            }
        }
        LogicalPlan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(lower(left, db)?),
            right: Box::new(lower(right, db)?),
        },
        LogicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(lower(left, db)?),
            right: Box::new(lower(right, db)?),
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(lower(input, db)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::Aggregate {
            input: Box::new(lower(input, db)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Sort { input, by, desc } => PhysicalPlan::Sort {
            input: Box::new(lower(input, db)?),
            by: by.clone(),
            desc: *desc,
        },
        LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(lower(input, db)?),
            n: *n,
        },
    })
}

/// Execute a physical plan, recording per-operator counters into `ctx`.
/// Produces exactly the relation the logical interpreter would (same
/// schema, same tuple order). Each operator reserves its `ctx` slot
/// *before* running its children, so the recorded stats form a tree
/// (pre-order, [`OpStats::parent`] links) mirroring the plan.
pub fn execute_physical(
    plan: &PhysicalPlan,
    db: &Database,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    // Governance boundary: every operator (the recursion reaches each
    // one) checks cancellation / deadline / budgets before running and
    // charges its output afterwards, so a runaway plan is stopped at
    // operator granularity rather than discovered at the end.
    ctx.gov.check(stage_name(plan))?;
    let out = execute_node(plan, db, ctx)?;
    ctx.gov.charge_rows(out.len() as u64);
    ctx.gov.charge_mem(approx_rel_bytes(&out));
    Ok(out)
}

/// Static stage name for governance errors — `describe()` allocates,
/// and the check runs on every operator entry.
fn stage_name(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::Scan(_) => "Scan",
        PhysicalPlan::Values(_) => "Values",
        PhysicalPlan::Filter { .. } => "Filter",
        PhysicalPlan::Project { .. } => "Project",
        PhysicalPlan::Qualify { .. } => "Qualify",
        PhysicalPlan::HashJoin { .. } => "HashJoin",
        PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
        PhysicalPlan::Union { .. } => "Union",
        PhysicalPlan::Difference { .. } => "Difference",
        PhysicalPlan::Distinct { .. } => "Distinct",
        PhysicalPlan::Aggregate { .. } => "Aggregate",
        PhysicalPlan::Sort { .. } => "Sort",
        PhysicalPlan::Limit { .. } => "Limit",
    }
}

fn execute_node(plan: &PhysicalPlan, db: &Database, ctx: &mut ExecContext) -> Result<Relation> {
    let token = ctx.enter();
    match plan {
        PhysicalPlan::Scan(name) => {
            let t0 = Instant::now();
            let rel = db.get(name)?.clone();
            let n = rel.len();
            ctx.exit(token, op(plan.describe(), n, n, t0));
            Ok(rel)
        }
        PhysicalPlan::Values(rel) => {
            ctx.exit(
                token,
                op(plan.describe(), rel.len(), rel.len(), Instant::now()),
            );
            Ok(rel.clone())
        }
        PhysicalPlan::Filter { input, pred } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = rel.len();
            let gov = ctx.gov.clone();
            let out = exec::filter_gov(rel, pred, Some(&gov))?;
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Project { input, cols } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let out = exec::project(&rel, cols)?;
            ctx.exit(token, op(plan.describe(), rel.len(), out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Qualify { input, alias } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let n = rel.len();
            let out = rel.qualified(alias);
            ctx.exit(token, op(plan.describe(), n, n, t0));
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => {
            let l = execute_physical(left, db, ctx)?;
            let r = execute_physical(right, db, ctx)?;
            let t0 = Instant::now();
            let gov = ctx.gov.clone();
            let (out, stats) = match keys {
                JoinKeys::Natural => match natural_join_parts(&l, &r)? {
                    Some((l_keys, r_keys, schema)) => hash_join_governed(
                        &l,
                        &r,
                        &l_keys,
                        &r_keys,
                        HashJoinMode::Natural,
                        None,
                        schema,
                        Some(&gov),
                    )?,
                    None => {
                        return Err(GsjError::Schema(format!(
                            "hash join lowered as natural but {} and {} share no attributes",
                            l.schema().name(),
                            r.schema().name()
                        )))
                    }
                },
                JoinKeys::Equi {
                    left: lc,
                    right: rc,
                } => {
                    let schema = concat_schema(&l, &r, "_tj_", "theta join")?;
                    let l_keys: Vec<usize> = lc
                        .iter()
                        .map(|c| Expr::resolve_column(l.schema(), c))
                        .collect::<Result<_>>()?;
                    let r_keys: Vec<usize> = rc
                        .iter()
                        .map(|c| Expr::resolve_column(r.schema(), c))
                        .collect::<Result<_>>()?;
                    hash_join_governed(
                        &l,
                        &r,
                        &l_keys,
                        &r_keys,
                        HashJoinMode::Equi,
                        residual.as_ref(),
                        schema,
                        Some(&gov),
                    )?
                }
            };
            let mut stats_op = op(plan.describe(), l.len() + r.len(), out.len(), t0);
            stats_op.build_rows = Some(stats.build_rows);
            stats_op.probe_rows = Some(stats.probe_rows);
            ctx.exit(token, stats_op);
            Ok(out)
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            pred,
            product,
        } => {
            let l = execute_physical(left, db, ctx)?;
            let r = execute_physical(right, db, ctx)?;
            let t0 = Instant::now();
            let out = if *product {
                exec::product(&l, &r)?
            } else {
                let schema = concat_schema(&l, &r, "_tj_", "theta join")?;
                let gov = ctx.gov.clone();
                nested_loop_governed(&l, &r, pred, schema, Some(&gov))?
            };
            ctx.exit(token, op(plan.describe(), l.len() + r.len(), out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Union { left, right } => {
            let l = execute_physical(left, db, ctx)?;
            let r = execute_physical(right, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = l.len() + r.len();
            let out = exec::union(l, r)?;
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Difference { left, right } => {
            let l = execute_physical(left, db, ctx)?;
            let r = execute_physical(right, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = l.len() + r.len();
            let out = exec::difference(l, &r)?;
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Distinct { input } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = rel.len();
            let out = exec::distinct(rel);
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let gov = ctx.gov.clone();
            let out = exec::aggregate_gov(&rel, group_by, aggs, Some(&gov))?;
            ctx.exit(token, op(plan.describe(), rel.len(), out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Sort { input, by, desc } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = rel.len();
            let out = exec::sort(rel, by, *desc)?;
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
        PhysicalPlan::Limit { input, n } => {
            let rel = execute_physical(input, db, ctx)?;
            let t0 = Instant::now();
            let rows_in = rel.len();
            let out = rel.head(*n);
            ctx.exit(token, op(plan.describe(), rows_in, out.len(), t0));
            Ok(out)
        }
    }
}

/// Lower and execute in one step, returning the result together with the
/// per-operator statistics.
pub fn execute_with_stats(plan: &LogicalPlan, db: &Database) -> Result<(Relation, ExecContext)> {
    let physical = lower(plan, db)?;
    let mut ctx = ExecContext::new();
    let rel = execute_physical(&physical, db, &mut ctx)?;
    Ok((rel, ctx))
}

fn op(label: String, rows_in: usize, rows_out: usize, t0: Instant) -> OpStats {
    OpStats {
        label,
        rows_in,
        rows_out,
        build_rows: None,
        probe_rows: None,
        nanos: t0.elapsed().as_nanos(),
        parent: None,
        start_ns: gsj_obs::ns_since_epoch(t0),
    }
}

// ---------------------------------------------------------------------
// Instrumented single-operator helpers over materialized relations.
// ---------------------------------------------------------------------

/// Theta-join two materialized relations, picking hash vs nested loop by
/// mining equi-conjuncts, and record the operator under `label`.
pub fn join_rel(
    l: &Relation,
    r: &Relation,
    pred: &Expr,
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Join")?;
    let t0 = Instant::now();
    let schema = concat_schema(l, r, "_tj_", "theta join")?;
    let (l_keys, r_keys) = equi_positions(pred, l.schema(), r.schema());
    let label = label.into();
    let gov = ctx.gov.clone();
    let (out, join_stats, label) = if l_keys.is_empty() {
        (
            nested_loop_governed(l, r, pred, schema, Some(&gov))?,
            None,
            format!("NestedLoopJoin({label})"),
        )
    } else {
        let (out, stats) = hash_join_governed(
            l,
            r,
            &l_keys,
            &r_keys,
            HashJoinMode::Equi,
            Some(pred),
            schema,
            Some(&gov),
        )?;
        (out, Some(stats), format!("HashJoin({label})"))
    };
    let mut stats_op = op(label, l.len() + r.len(), out.len(), t0);
    if let Some(s) = join_stats {
        stats_op.build_rows = Some(s.build_rows);
        stats_op.probe_rows = Some(s.probe_rows);
    }
    ctx.record(stats_op);
    ctx.gov.charge_rows(out.len() as u64);
    ctx.gov.charge_mem(approx_rel_bytes(&out));
    Ok(out)
}

/// Filter a materialized relation, recording the operator under `label`.
pub fn filter_rel(
    rel: Relation,
    pred: &Expr,
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Filter")?;
    let t0 = Instant::now();
    let rows_in = rel.len();
    let gov = ctx.gov.clone();
    let out = exec::filter_gov(rel, pred, Some(&gov))?;
    ctx.record(op(label.into(), rows_in, out.len(), t0));
    ctx.gov.charge_rows(out.len() as u64);
    Ok(out)
}

/// Group/aggregate a materialized relation, recording the operator.
pub fn aggregate_rel(
    rel: &Relation,
    group_by: &[String],
    aggs: &[AggSpec],
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Aggregate")?;
    let t0 = Instant::now();
    let gov = ctx.gov.clone();
    let out = exec::aggregate_gov(rel, group_by, aggs, Some(&gov))?;
    ctx.record(op(label.into(), rel.len(), out.len(), t0));
    ctx.gov.charge_rows(out.len() as u64);
    Ok(out)
}

/// Project a materialized relation, recording the operator.
pub fn project_rel(
    rel: &Relation,
    cols: &[String],
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Project")?;
    let t0 = Instant::now();
    let out = exec::project(rel, cols)?;
    ctx.record(op(label.into(), rel.len(), out.len(), t0));
    ctx.gov.charge_rows(out.len() as u64);
    Ok(out)
}

/// Stable-sort a materialized relation, recording the operator.
pub fn sort_rel(
    rel: Relation,
    by: &[String],
    desc: bool,
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Sort")?;
    let t0 = Instant::now();
    let rows_in = rel.len();
    let out = exec::sort(rel, by, desc)?;
    ctx.record(op(label.into(), rows_in, out.len(), t0));
    Ok(out)
}

/// Truncate a materialized relation, recording the operator.
pub fn limit_rel(
    rel: Relation,
    n: usize,
    label: impl Into<String>,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.gov.check("Limit")?;
    let t0 = Instant::now();
    let rows_in = rel.len();
    let out = rel.head(n);
    ctx.record(op(label.into(), rows_in, out.len(), t0));
    Ok(out)
}

/// Record an externally-executed operator (e.g. a semantic join) with
/// explicit cardinalities and timing.
pub fn record_external(
    label: impl Into<String>,
    rows_in: usize,
    rows_out: usize,
    t0: Instant,
    ctx: &mut ExecContext,
) {
    ctx.record(op(label.into(), rows_in, rows_out, t0));
}

/// Build the [`OpStats`] of an externally-executed operator, for use with
/// [`ExecContext::enter`] / [`ExecContext::exit`] when the operator has
/// children (e.g. a semantic join evaluating its source sub-plan).
pub fn external_stats(
    label: impl Into<String>,
    rows_in: usize,
    rows_out: usize,
    t0: Instant,
) -> OpStats {
    op(label.into(), rows_in, rows_out, t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use gsj_common::Value;

    fn db() -> Database {
        let mut customer =
            Relation::empty(Schema::of("customer", &["cid", "name", "credit", "bal"]));
        for (cid, name, credit, bal) in [
            ("cid01", "Bob", "fair", 500),
            ("cid02", "Bob", "good", 110),
            ("cid03", "Guy", "good", 50),
            ("cid04", "Ada", "fair", 100),
        ] {
            customer
                .push_values(vec![
                    Value::str(cid),
                    Value::str(name),
                    Value::str(credit),
                    Value::Int(bal),
                ])
                .unwrap();
        }
        let mut orders = Relation::empty(Schema::of("orders", &["cid", "pid"]));
        for (cid, pid) in [("cid01", "fd1"), ("cid02", "fd2"), ("cid02", "fd3")] {
            orders
                .push_values(vec![Value::str(cid), Value::str(pid)])
                .unwrap();
        }
        let mut db = Database::new();
        db.insert(customer);
        db.insert(orders);
        db
    }

    fn assert_same(plan: &LogicalPlan, db: &Database) -> ExecContext {
        let expected = exec::execute(plan, db).unwrap();
        let (got, ctx) = execute_with_stats(plan, db).unwrap();
        assert_eq!(expected, got);
        ctx
    }

    #[test]
    fn lower_picks_hash_join_for_equi_theta() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Eq, Expr::col("T1.name"), Expr::col("T2.name")).and(Expr::cmp(
                CmpOp::Ne,
                Expr::col("T1.cid"),
                Expr::col("T2.cid"),
            )),
        );
        let phys = lower(&plan, &db).unwrap();
        assert!(phys.render().contains("HashJoin(T1.name=T2.name)"));
        let ctx = assert_same(&plan, &db);
        let join = ctx
            .ops()
            .iter()
            .find(|o| o.label.starts_with("HashJoin"))
            .unwrap();
        assert_eq!(join.build_rows, Some(4));
        assert_eq!(join.probe_rows, Some(4));
        assert_eq!(join.rows_out, 2);
    }

    #[test]
    fn lower_picks_nested_loop_for_non_equi() {
        let db = db();
        let plan = LogicalPlan::scan("customer").qualify("T1").theta_join(
            LogicalPlan::scan("customer").qualify("T2"),
            Expr::cmp(CmpOp::Lt, Expr::col("T1.bal"), Expr::col("T2.bal")),
        );
        let phys = lower(&plan, &db).unwrap();
        assert!(phys.render().contains("NestedLoopJoin(theta)"));
        assert_same(&plan, &db);
    }

    #[test]
    fn natural_join_and_product_lowering() {
        let db = db();
        let join = LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders"));
        assert!(lower(&join, &db)
            .unwrap()
            .render()
            .contains("HashJoin(natural)"));
        assert_same(&join, &db);

        let product = LogicalPlan::scan("customer")
            .project(&["name"])
            .qualify("A")
            .natural_join(LogicalPlan::scan("orders").project(&["pid"]).qualify("B"));
        assert!(lower(&product, &db)
            .unwrap()
            .render()
            .contains("NestedLoopJoin(product)"));
        assert_same(&product, &db);
    }

    #[test]
    fn full_pipeline_matches_interpreter() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Aggregate {
                    input: Box::new(
                        LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders")),
                    ),
                    group_by: vec!["name".into()],
                    aggs: vec![crate::plan::AggSpec::count_star("n")],
                }),
                by: vec!["n".into()],
                desc: true,
            }),
            n: 1,
        };
        let ctx = assert_same(&plan, &db);
        // Scans, join, aggregate, sort, limit all recorded.
        assert_eq!(ctx.ops().len(), 6);
        assert!(ctx.render().contains("Aggregate"));
    }

    #[test]
    fn stats_row_counts_are_consistent() {
        let db = db();
        let plan = LogicalPlan::scan("customer").select(Expr::col_eq("credit", "good"));
        let (rel, ctx) = execute_with_stats(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
        let filter = ctx.ops().iter().find(|o| o.label == "Filter").unwrap();
        assert_eq!(filter.rows_in, 4);
        assert_eq!(filter.rows_out, 2);
    }

    #[test]
    fn union_difference_distinct_match() {
        let db = db();
        let good = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "good"))
            .project(&["name"]);
        let fair = LogicalPlan::scan("customer")
            .select(Expr::col_eq("credit", "fair"))
            .project(&["name"]);
        let plan = LogicalPlan::Distinct {
            input: Box::new(LogicalPlan::Union {
                left: Box::new(good.clone()),
                right: Box::new(fair.clone()),
            }),
        };
        assert_same(&plan, &db);
        let diff = LogicalPlan::Difference {
            left: Box::new(good),
            right: Box::new(fair),
        };
        assert_same(&diff, &db);
    }

    #[test]
    fn ops_form_a_tree_with_parent_links() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(
                    LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders")),
                ),
                by: vec!["pid".into()],
                desc: false,
            }),
            n: 2,
        };
        let (_, ctx) = execute_with_stats(&plan, &db).unwrap();
        // Pre-order: Limit, Sort, HashJoin, Scan, Scan.
        let labels: Vec<&str> = ctx.ops().iter().map(|o| o.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "Limit(2)",
                "Sort(pid)",
                "HashJoin(natural)",
                "Scan(customer)",
                "Scan(orders)"
            ]
        );
        let parents: Vec<Option<usize>> = ctx.ops().iter().map(|o| o.parent).collect();
        assert_eq!(parents, vec![None, Some(0), Some(1), Some(2), Some(2)]);
        assert_eq!(ctx.depth(0), 0);
        assert_eq!(ctx.depth(4), 3);
        // Render indents children under their parent.
        let rendered = ctx.render();
        assert!(rendered.contains("\n  Sort(pid)"), "{rendered}");
        assert!(rendered.contains("\n      Scan(orders)"), "{rendered}");
    }

    #[test]
    fn record_links_leaf_to_open_operator() {
        let mut ctx = ExecContext::new();
        let tok = ctx.enter();
        record_external("inner", 1, 1, Instant::now(), &mut ctx);
        ctx.exit(tok, op("outer".into(), 2, 2, Instant::now()));
        assert_eq!(ctx.ops()[0].label, "outer");
        assert_eq!(ctx.ops()[1].label, "inner");
        assert_eq!(ctx.ops()[1].parent, Some(0));
        assert_eq!(ctx.ops()[0].parent, None);
    }

    #[test]
    fn governed_execution_observes_cancel() {
        let db = db();
        let plan = lower(
            &LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders")),
            &db,
        )
        .unwrap();
        let gov = QueryGovernor::unlimited();
        gov.cancel();
        let mut ctx = ExecContext::with_governor(gov);
        let err = execute_physical(&plan, &db, &mut ctx).unwrap_err();
        assert_eq!(err, GsjError::Cancelled);
    }

    #[test]
    fn governed_execution_trips_row_budget() {
        let db = db();
        // Scan(4 rows) already exceeds a budget of 3; the join above it
        // must observe the overrun at its boundary check.
        let plan = lower(
            &LogicalPlan::scan("customer").natural_join(LogicalPlan::scan("orders")),
            &db,
        )
        .unwrap();
        let gov = QueryGovernor::builder().row_budget(3).build();
        let mut ctx = ExecContext::with_governor(gov);
        let err = execute_physical(&plan, &db, &mut ctx).unwrap_err();
        assert!(
            matches!(err, GsjError::ResourceExhausted(ref m) if m.contains("row budget")),
            "{err}"
        );
    }

    #[test]
    fn governed_execution_trips_mem_budget() {
        let db = db();
        let plan = lower(&LogicalPlan::scan("customer"), &db).unwrap();
        // The first scan charges the real columnar bytes of the 4-row
        // customer table (well over 100 B of string payloads); a second
        // run over the same context must trip a 100 B budget.
        let gov = QueryGovernor::builder().mem_budget(100).build();
        let mut ctx = ExecContext::with_governor(gov.clone());
        assert!(execute_physical(&plan, &db, &mut ctx).is_ok());
        assert!(gov.mem_charged() > 100);
        let err = execute_physical(&plan, &db, &mut ctx).unwrap_err();
        assert!(matches!(err, GsjError::ResourceExhausted(_)), "{err}");
    }

    #[test]
    fn governed_helpers_check_and_charge() {
        let db = db();
        let customer = db.get("customer").unwrap().clone();
        let gov = QueryGovernor::builder().row_budget(1000).build();
        let mut ctx = ExecContext::with_governor(gov.clone());
        let out = filter_rel(
            customer,
            &Expr::col_eq("credit", "good"),
            "Filter",
            &mut ctx,
        )
        .unwrap();
        assert_eq!(gov.rows_charged(), out.len() as u64);
        gov.cancel();
        let err = sort_rel(out, &["name".to_string()], false, "Sort", &mut ctx).unwrap_err();
        assert_eq!(err, GsjError::Cancelled);
    }

    #[test]
    fn ungoverned_context_is_unrestricted() {
        let db = db();
        let plan = lower(&LogicalPlan::scan("customer"), &db).unwrap();
        let mut ctx = ExecContext::new();
        assert!(!ctx.governor().is_limited());
        assert!(execute_physical(&plan, &db, &mut ctx).is_ok());
    }

    #[test]
    fn instrumented_helpers_record_ops() {
        let db = db();
        let customer = db.get("customer").unwrap().qualified("T1");
        let orders = db.get("orders").unwrap().qualified("T2");
        let mut ctx = ExecContext::new();
        let joined = join_rel(
            &customer,
            &orders,
            &Expr::cmp(CmpOp::Eq, Expr::col("T1.cid"), Expr::col("T2.cid")),
            "EJoin-ish",
            &mut ctx,
        )
        .unwrap();
        assert_eq!(joined.len(), 3);
        assert_eq!(ctx.ops().len(), 1);
        assert!(ctx.ops()[0].label.starts_with("HashJoin("));
        assert_eq!(ctx.ops()[0].build_rows, Some(4));
        let rendered = ctx.render();
        assert!(rendered.contains("rows_out"));
        assert!(rendered.contains("EJoin-ish"));
    }
}
