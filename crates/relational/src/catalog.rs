//! The database catalog: named relations.

use crate::relation::Relation;
use gsj_common::{FxHashMap, GsjError, Result};

/// A relational database `D = (D1, ..., Dn)` keyed by relation name.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: FxHashMap<String, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a relation under its schema name.
    pub fn insert(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().name().to_string(), relation);
    }

    /// Register under an explicit name.
    pub fn insert_as(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| GsjError::NotFound(format!("relation `{name}`")))
    }

    /// True iff a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Names of all registered relations (unordered).
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Total tuple count across relations (Table II reporting).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn insert_get_remove() {
        let mut db = Database::new();
        db.insert(Relation::empty(Schema::of("customer", &["cid"])));
        assert!(db.contains("customer"));
        assert_eq!(db.get("customer").unwrap().schema().name(), "customer");
        assert!(db.get("absent").is_err());
        assert!(db.remove("customer").is_some());
        assert!(!db.contains("customer"));
    }

    #[test]
    fn insert_as_overrides_name() {
        let mut db = Database::new();
        db.insert_as("alias", Relation::empty(Schema::of("x", &["a"])));
        assert!(db.contains("alias"));
        assert!(!db.contains("x"));
    }
}
